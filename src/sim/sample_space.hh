/**
 * @file
 * Experiment designs over the configuration space and dataset
 * collection.
 *
 * "A set of training samples are collected by running the identical
 * application under various configurations" (paper section 2.2). This
 * module generates those configuration sets — full grids, uniform random
 * draws, and Latin hypercube designs — and runs each through the
 * simulator (or the analytic model) to build a data::Dataset with the
 * paper's column names.
 */

#ifndef WCNN_SIM_SAMPLE_SPACE_HH
#define WCNN_SIM_SAMPLE_SPACE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "sim/analytic_surface.hh"
#include "sim/three_tier.hh"

namespace wcnn {
namespace numeric {
class Rng;
} // namespace numeric

namespace sim {

/** Closed range of one configuration axis. */
struct ParameterRange
{
    /** Inclusive lower bound. */
    double lo = 0.0;
    /** Inclusive upper bound. */
    double hi = 0.0;
    /** Round sampled values to integers (thread counts). */
    bool integral = false;
};

/** Ranges of the four configuration axes. */
struct SampleSpace
{
    ParameterRange injectionRate{500.0, 620.0, false};
    ParameterRange defaultQueue{0.0, 20.0, true};
    ParameterRange mfgQueue{12.0, 24.0, true};
    ParameterRange webQueue{14.0, 20.0, true};

    /**
     * The region the paper's analysis explores: injection around 560,
     * default 0-20, mfg around 16, web 14-20.
     */
    static SampleSpace paperLike();
};

/**
 * Full-factorial grid with the given number of points per axis.
 *
 * @param space  Axis ranges.
 * @param points Points per axis (injection, default, mfg, web); each
 *               must be >= 1.
 * @return points[0]*points[1]*points[2]*points[3] configurations.
 */
std::vector<ThreeTierConfig>
gridDesign(const SampleSpace &space,
           const std::array<std::size_t, 4> &points);

/**
 * Uniform random design.
 *
 * @param space Axis ranges.
 * @param n     Number of configurations.
 * @param rng   Generator.
 */
std::vector<ThreeTierConfig> randomDesign(const SampleSpace &space,
                                          std::size_t n,
                                          numeric::Rng &rng);

/**
 * Latin hypercube design: each axis is divided into n strata and each
 * stratum is used exactly once, giving much better space coverage than
 * uniform random for small n.
 *
 * @param space Axis ranges.
 * @param n     Number of configurations.
 * @param rng   Generator.
 */
std::vector<ThreeTierConfig> latinHypercubeDesign(const SampleSpace &space,
                                                  std::size_t n,
                                                  numeric::Rng &rng);

/**
 * Two-level full-factorial design with center points — the Design of
 * Experiments style used by the linear-model prior work the paper
 * compares against (refs [2, 20, 21]): every corner of the
 * configuration hypercube (2^4 = 16 runs) plus replicated center
 * points to expose curvature.
 *
 * @param space         Axis ranges.
 * @param center_points Number of center-point runs appended.
 */
std::vector<ThreeTierConfig> factorialDesign(const SampleSpace &space,
                                             std::size_t center_points
                                             = 1);

/** Maps a configuration to its 5 indicators. */
using SampleFn = std::function<PerfSample(const ThreeTierConfig &)>;

/** Collection policy: worker threads, retries, and drop handling. */
struct CollectOptions
{
    /** Worker threads (core::parallelFor); 0 = hardware count. */
    std::size_t threads = 1;

    /**
     * Total attempts per sampler run. A transient wcnn::SimFault is
     * retried with the *same* seed — a successful retry is
     * indistinguishable from a run that never faulted, which is what
     * makes chaos runs with fully-retried faults bit-identical to
     * clean runs. Non-transient faults are never retried.
     */
    std::size_t maxAttempts = 3;

    /**
     * After retries are exhausted (or on a non-transient fault): true
     * drops the configuration (recorded in the CollectReport, its row
     * omitted from the dataset); false (default) propagates the fault.
     */
    bool quarantine = false;

    /**
     * Backoff base in seconds between attempts; attempt a waits
     * base * 2^a (capped; see core::failpoint::backoffSeconds). The
     * schedule is a pure function of the attempt number — never
     * randomized — so retried runs replay deterministically. <= 0
     * (default) skips waiting entirely, which is right for in-process
     * simulators; collection against a real testbed would set ~0.01.
     */
    double backoffBase = 0.0;
};

/** Per-configuration collection outcome. */
struct ConfigStatus
{
    enum class State
    {
        Ok,      ///< sampled (possibly after retries)
        Dropped, ///< quarantined; row omitted from the dataset
    };

    State state = State::Ok;

    /** Faulted attempts that were retried. */
    std::size_t retries = 0;

    /** what() of the final failure; empty unless Dropped. */
    std::string error;
};

/** Bookkeeping of one collection run. */
struct CollectReport
{
    /** One entry per input configuration, in configs order. */
    std::vector<ConfigStatus> configs;

    /** Total retried attempts across configurations. */
    std::size_t retries() const;

    /** Number of dropped configurations. */
    std::size_t dropped() const;
};

/**
 * Run every configuration through a sampler and assemble the dataset
 * with the paper's input/output column names.
 *
 * @param configs Configurations to evaluate.
 * @param fn      Sampler (simulateThreeTier, analyticThreeTier, ...).
 *                With threads > 1 it is invoked concurrently and must
 *                be thread-safe and a pure function of its
 *                configuration (no shared counters).
 * @param threads Worker threads (core::parallelFor); 0 selects the
 *                hardware count, 1 runs serially. Rows keep the
 *                configs order at every thread count.
 */
data::Dataset collectDataset(const std::vector<ThreeTierConfig> &configs,
                             const SampleFn &fn,
                             std::size_t threads = 1);

/**
 * As above with an explicit collection policy: transient
 * wcnn::SimFaults from the sampler are retried (same configuration,
 * bounded deterministic backoff) and optionally quarantined.
 *
 * @param configs Configurations to evaluate.
 * @param fn      Sampler; may throw wcnn::SimFault.
 * @param options Threads, retry budget, drop policy.
 * @param report  Optional per-configuration bookkeeping (retry and
 *                drop counts; dropped rows are omitted from the
 *                dataset but present in the report).
 * @throws wcnn::SimFault when retries are exhausted and
 *         options.quarantine is false.
 */
data::Dataset collectDataset(const std::vector<ThreeTierConfig> &configs,
                             const SampleFn &fn,
                             const CollectOptions &options,
                             CollectReport *report = nullptr);

/**
 * Convenience: collect with the discrete-event simulator. Each
 * configuration is run `replicates` times under distinct seeds and the
 * indicators averaged — the paper likewise reduces each configuration
 * to "the averages of collected counter values ... to reduce the effect
 * of sampling error" (section 4).
 *
 * Replicate seeds derive from (seed_base, config index, replicate):
 * configuration i, replicate r runs under seed_base + i*replicates + r
 * — the same assignment the historical serial counter produced — so
 * the dataset is bit-identical at every thread count.
 *
 * @param configs    Configurations to evaluate (seed field overwritten).
 * @param params     Demand model.
 * @param seed_base  First seed.
 * @param replicates Runs per configuration (>= 1).
 * @param threads    Worker threads; 0 selects the hardware count.
 */
data::Dataset collectSimulated(std::vector<ThreeTierConfig> configs,
                               const WorkloadParams &params,
                               std::uint64_t seed_base,
                               std::size_t replicates = 3,
                               std::size_t threads = 1);

/**
 * As above with an explicit collection policy. Each faulting
 * *replicate* is retried under its original seed (so a successful
 * retry reproduces the clean run bit-for-bit); a replicate whose
 * retries are exhausted drops — or propagates — the whole
 * configuration per options.quarantine.
 *
 * @param configs    Configurations to evaluate (seed field overwritten).
 * @param params     Demand model.
 * @param seed_base  First seed.
 * @param replicates Runs per configuration (>= 1).
 * @param options    Threads, retry budget, drop policy.
 * @param report     Optional per-configuration bookkeeping.
 * @throws wcnn::SimFault when retries are exhausted and
 *         options.quarantine is false.
 */
data::Dataset collectSimulated(std::vector<ThreeTierConfig> configs,
                               const WorkloadParams &params,
                               std::uint64_t seed_base,
                               std::size_t replicates,
                               const CollectOptions &options,
                               CollectReport *report = nullptr);

/**
 * Convenience: collect with the closed-form analytic model (fast,
 * deterministic; for tests and quick benches).
 *
 * @param configs Configurations to evaluate.
 * @param params  Demand model.
 * @param threads Worker threads; 0 selects the hardware count.
 */
data::Dataset collectAnalytic(const std::vector<ThreeTierConfig> &configs,
                              const WorkloadParams &params,
                              std::size_t threads = 1);

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_SAMPLE_SPACE_HH
