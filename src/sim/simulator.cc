#include "simulator.hh"

#include "core/contracts.hh"


namespace wcnn {
namespace sim {

EventId
Simulator::schedule(double delay, std::function<void()> fn)
{
    WCNN_REQUIRE(delay >= 0.0, "cannot schedule ", delay,
                 " into the past");
    return scheduleAt(clock + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(double when, std::function<void()> fn)
{
    WCNN_REQUIRE(when >= clock, "cannot schedule at ", when,
                 ", clock is already at ", clock);
    const EventId id = nextId++;
    calendar.push(Entry{when, id, std::move(fn)});
    return id;
}

void
Simulator::cancel(EventId id)
{
    if (id != 0 && id < nextId)
        cancelled.insert(id);
}

void
Simulator::run(double until)
{
    stopping = false;
    while (!calendar.empty() && !stopping) {
        if (calendar.top().when > until)
            break;
        // priority_queue::top is const; move out via const_cast is UB, so
        // copy the small entry instead (fn is the only heap part).
        Entry entry = calendar.top();
        calendar.pop();
        if (auto it = cancelled.find(entry.id); it != cancelled.end()) {
            cancelled.erase(it);
            continue;
        }
        clock = entry.when;
        ++nProcessed;
        entry.fn();
    }
    if (clock < until)
        clock = until;
}

} // namespace sim
} // namespace wcnn
