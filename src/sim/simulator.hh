/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The substrate replacing the paper's physical 3-tier testbed is a
 * discrete-event queueing-network simulator. This kernel provides the
 * virtual clock, a time-ordered event calendar with stable FIFO ordering
 * for simultaneous events, and O(log n) schedule/cancel.
 */

#ifndef WCNN_SIM_SIMULATOR_HH
#define WCNN_SIM_SIMULATOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace wcnn {
namespace sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Event-calendar simulator with a double-precision clock.
 *
 * Events scheduled for the same timestamp fire in scheduling order.
 * Cancellation is lazy: cancelled ids are skipped when popped.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulation time (seconds). */
    double now() const { return clock; }

    /**
     * Schedule a callback after a delay.
     *
     * @param delay Non-negative offset from now().
     * @param fn    Callback to invoke at now() + delay.
     * @return Handle usable with cancel().
     */
    EventId schedule(double delay, std::function<void()> fn);

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute time >= now().
     * @param fn   Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(double when, std::function<void()> fn);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown id
     * is a harmless no-op.
     *
     * @param id Handle from schedule()/scheduleAt().
     */
    void cancel(EventId id);

    /**
     * Run until the calendar empties or the clock passes the horizon.
     * Events at exactly the horizon still fire.
     *
     * @param until Simulation-time horizon (seconds).
     */
    void run(double until);

    /** Stop a run() in progress after the current event returns. */
    void stop() { stopping = true; }

    /** Events dispatched so far (excludes cancelled ones). */
    std::size_t eventsProcessed() const { return nProcessed; }

    /** Pending (non-cancelled) event count. */
    std::size_t pendingEvents() const
    {
        return calendar.size() - cancelled.size();
    }

  private:
    struct Entry
    {
        double when;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among simultaneous events
        }
    };

    double clock = 0.0;
    EventId nextId = 1;
    std::size_t nProcessed = 0;
    bool stopping = false;
    std::priority_queue<Entry, std::vector<Entry>, Later> calendar;
    std::unordered_set<EventId> cancelled;
};

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_SIMULATOR_HH
