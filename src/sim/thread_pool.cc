#include "thread_pool.hh"

#include "core/contracts.hh"


namespace wcnn {
namespace sim {

ThreadPool::ThreadPool(Simulator &sim, std::string name,
                       std::size_t threads, std::size_t backlog_cap)
    : sim(sim), poolName(std::move(name)),
      nThreads(threads == 0 ? 1 : threads), backlogCap(backlog_cap)
{
    WCNN_REQUIRE(backlog_cap > 0, "backlog cap must be positive");
}

bool
ThreadPool::submit(Work work)
{
    if (nBusy < nThreads) {
        dispatch(std::move(work), sim.now());
        return true;
    }
    if (backlog.size() >= backlogCap) {
        ++nDropped;
        return false;
    }
    backlog.push_back(Pending{std::move(work), sim.now()});
    return true;
}

void
ThreadPool::dispatch(Work work, double enqueue_time)
{
    WCNN_ENSURE(nBusy < nThreads, "dispatch with all ", nThreads,
                " threads busy in pool ", poolName);
    ++nBusy;
    waitStats.add(sim.now() - enqueue_time);
    // The item signals completion through this thunk; it may do so
    // synchronously or after arbitrarily many simulated events.
    work([this] { onItemDone(); });
}

void
ThreadPool::onItemDone()
{
    WCNN_ENSURE(nBusy > 0, "completion with no busy threads in pool ",
                poolName);
    --nBusy;
    ++nCompleted;
    if (!backlog.empty() && nBusy < nThreads) {
        Pending next = std::move(backlog.front());
        backlog.pop_front();
        dispatch(std::move(next.work), next.enqueueTime);
    }
}

} // namespace sim
} // namespace wcnn
