/**
 * @file
 * App-server execute queue (thread pool).
 *
 * The paper's configuration parameters are the thread counts assigned to
 * three execute queues inside the commercial Java application server:
 * the mfg queue (manufacturing domain), the web queue (web front end)
 * and the default queue ("the rest"). A pool holds a fixed number of
 * worker threads and a FIFO backlog; a work item occupies one thread
 * from dispatch until its asynchronous completion callback runs (threads
 * are held across DB calls and cross-queue hops, as in a real app
 * server).
 *
 * A configured size of 0 is floored to 1 worker — the real server's
 * queues always keep at least one execute thread; the paper's samples
 * include default-queue size 0.
 */

#ifndef WCNN_SIM_THREAD_POOL_HH
#define WCNN_SIM_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "numeric/stats.hh"
#include "sim/simulator.hh"

namespace wcnn {
namespace sim {

/**
 * Fixed-size worker pool with bounded FIFO backlog.
 */
class ThreadPool
{
  public:
    /**
     * A work item: invoked with a completion thunk that the item must
     * call exactly once when it is finished (possibly much later, after
     * asynchronous sub-steps).
     */
    using Work = std::function<void(std::function<void()> done)>;

    /**
     * @param sim         Owning simulator (used for timestamps only).
     * @param name        Queue name for diagnostics.
     * @param threads     Configured thread count; floored to 1.
     * @param backlog_cap Maximum queued items before submissions are
     *                    rejected (models the server's overload guard).
     */
    ThreadPool(Simulator &sim, std::string name, std::size_t threads,
               std::size_t backlog_cap);

    /**
     * Submit a work item.
     *
     * @param work Item body.
     * @retval true  Item dispatched or queued.
     * @retval false Backlog full; item rejected (counted as a drop).
     */
    bool submit(Work work);

    /** Effective worker count (configured floored to 1). */
    std::size_t threads() const { return nThreads; }

    /** Workers currently occupied. */
    std::size_t busy() const { return nBusy; }

    /** Items waiting in the backlog. */
    std::size_t queued() const { return backlog.size(); }

    /** Items rejected because the backlog was full. */
    std::size_t dropped() const { return nDropped; }

    /** Items whose completion callback has run. */
    std::size_t completed() const { return nCompleted; }

    /** Distribution of time spent waiting in the backlog (seconds). */
    const numeric::RunningStats &queueDelay() const { return waitStats; }

    /** Queue name. */
    const std::string &name() const { return poolName; }

  private:
    struct Pending
    {
        Work work;
        double enqueueTime;
    };

    /** Occupy a worker and start an item. */
    void dispatch(Work work, double enqueue_time);

    /** Completion callback: free the worker, pull from the backlog. */
    void onItemDone();

    Simulator &sim;
    std::string poolName;
    std::size_t nThreads;
    std::size_t backlogCap;

    std::size_t nBusy = 0;
    std::size_t nDropped = 0;
    std::size_t nCompleted = 0;
    std::deque<Pending> backlog;
    numeric::RunningStats waitStats;
};

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_THREAD_POOL_HH
