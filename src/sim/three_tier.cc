#include "three_tier.hh"

#include <cmath>

#include "core/contracts.hh"

#include "numeric/rng.hh"
#include "sim/app_server.hh"
#include "sim/arrival.hh"
#include "sim/cpu.hh"
#include "sim/database.hh"
#include "sim/closed_driver.hh"
#include "sim/driver.hh"
#include "sim/simulator.hh"
#include "sim/thread_pool.hh"

namespace wcnn {
namespace sim {

namespace {

/** Round a configured (possibly fractional) thread count. */
std::size_t
roundThreads(double v)
{
    WCNN_REQUIRE(v >= 0.0, "thread count must be non-negative, got ", v);
    return static_cast<std::size_t>(std::llround(v));
}

} // namespace

std::vector<double>
ThreeTierConfig::toVector() const
{
    return {injectionRate, defaultQueue, mfgQueue, webQueue};
}

std::vector<std::string>
ThreeTierConfig::parameterNames()
{
    return {"injection_rate", "default_queue", "mfg_queue", "web_queue"};
}

PerfSample
simulateThreeTier(const ThreeTierConfig &cfg,
                  const WorkloadParams &params, RunDiagnostics *diag)
{
    WCNN_REQUIRE(cfg.injectionRate > 0.0,
                 "injection rate must be positive, got ", cfg.injectionRate);
    WCNN_REQUIRE(cfg.warmup >= 0.0 && cfg.measure > 0.0,
                 "invalid run window: warmup ", cfg.warmup, ", measure ",
                 cfg.measure);

    Simulator sim;
    numeric::Rng master(cfg.seed);

    PsCpu cpu(sim, params.cores, params.threadOverhead,
              params.csOverhead);
    Database db(sim, params.dbConnections, params.dbLockFactor);

    ThreadPool mfg_pool(sim, "mfg", roundThreads(cfg.mfgQueue),
                        params.backlogCap);
    ThreadPool web_pool(sim, "web", roundThreads(cfg.webQueue),
                        params.backlogCap);
    ThreadPool default_pool(sim, "default",
                            roundThreads(cfg.defaultQueue),
                            params.defaultBacklogCap);
    cpu.setConfiguredThreads(mfg_pool.threads() + web_pool.threads() +
                             default_pool.threads());

    const double run_end = cfg.warmup + cfg.measure;
    Collector collector(cfg.warmup, run_end, params);
    AppServer server(sim, cpu, db, mfg_pool, web_pool, default_pool,
                     params, collector, master.split());

    std::uint64_t injected = 0;
    if (cfg.loadModel == LoadModel::Open) {
        if (cfg.arrival.kind == ArrivalKind::Poisson) {
            // The paper's homogeneous driver, kept on its original
            // code path so seeds replay bit-identically to pre-DSL
            // builds.
            Driver driver(sim, server, cfg.injectionRate, params,
                          master.split(), run_end);
            driver.start();
            sim.run(run_end);
            injected = driver.injected();
        } else {
            ProcessDriver driver(sim, server, cfg.arrival,
                                 cfg.injectionRate, params,
                                 master.split(), run_end);
            driver.start();
            sim.run(run_end);
            injected = driver.injected();
        }
    } else {
        ClosedLoopDriver driver(sim, server, cfg.population,
                                cfg.thinkTime, params, master.split(),
                                run_end);
        driver.start();
        sim.run(run_end);
        injected = driver.issued();
    }

    if (diag) {
        diag->injected = injected;
        diag->primaryRejects = server.primaryRejects();
        diag->auxRejects = server.auxRejects();
        diag->eventsProcessed = sim.eventsProcessed();
        diag->completions.clear();
        for (TxnClass cls : allTxnClasses)
            diag->completions.push_back(collector.completions(cls));
        diag->cpuDemand = cpu.demandAccepted();
    }
    return collector.summarize();
}

} // namespace sim
} // namespace wcnn
