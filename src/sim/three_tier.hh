/**
 * @file
 * Facade over the full 3-tier simulation: configuration in, the paper's
 * 4-input/5-output sample out.
 *
 * The four inputs are the paper's configuration parameters (section 4):
 * thread counts of the mfg, web and default queues, plus the injection
 * rate. The five outputs are the four per-class response times and the
 * effective throughput.
 */

#ifndef WCNN_SIM_THREE_TIER_HH
#define WCNN_SIM_THREE_TIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/arrival.hh"
#include "sim/collector.hh"
#include "sim/workload.hh"

namespace wcnn {
namespace sim {

/** Load-generation model. */
enum class LoadModel
{
    Open,   ///< Poisson arrivals at injectionRate (the paper's driver)
    Closed, ///< fixed user population with think times
};

/** One run's configuration. */
struct ThreeTierConfig
{
    /** Injected requests per second (Open load model). */
    double injectionRate = 560.0;

    /** Default execute queue thread count (floored to 1 internally). */
    double defaultQueue = 10.0;

    /** Manufacturing execute queue thread count. */
    double mfgQueue = 16.0;

    /** Web front-end execute queue thread count. */
    double webQueue = 18.0;

    /** RNG seed; equal seeds replay identical runs. */
    std::uint64_t seed = 1;

    /** Warm-up window discarded from measurement (seconds). */
    double warmup = 30.0;

    /** Measurement window length (seconds). */
    double measure = 120.0;

    /** Open (paper) or closed (think-time users) load generation. */
    LoadModel loadModel = LoadModel::Open;

    /** Closed model: emulated user population. */
    std::size_t population = 400;

    /** Closed model: mean think time per user (seconds). */
    double thinkTime = 0.5;

    /**
     * Arrival-process family (Open load model). The default Poisson
     * spec reproduces the paper's driver bit-for-bit; Mmpp/Diurnal
     * specs route through the ProcessDriver with the declared
     * envelope scaled so its mean equals injectionRate. Ignored when
     * loadModel is Closed.
     */
    ArrivalSpec arrival;

    /** Inputs in canonical column order. */
    std::vector<double> toVector() const;

    /** Canonical input (configuration) column names. */
    static std::vector<std::string> parameterNames();
};

/** Diagnostics beyond the 5 indicators, for tests and calibration. */
struct RunDiagnostics
{
    /** Requests the driver injected. */
    std::uint64_t injected = 0;
    /** Rejections at the mfg/web queues. */
    std::size_t primaryRejects = 0;
    /** Rejections of default-queue hops. */
    std::size_t auxRejects = 0;
    /** DES events dispatched. */
    std::size_t eventsProcessed = 0;
    /** Completed transactions per class (measurement window). */
    std::vector<std::size_t> completions;
    /** Total CPU demand accepted (CPU-seconds). */
    double cpuDemand = 0.0;
};

/**
 * Run one simulation.
 *
 * @param cfg    Configuration (inputs, seed, windows).
 * @param params Demand model; defaults to WorkloadParams::defaults().
 * @param diag   Optional diagnostics sink.
 * @return The 5 performance indicators.
 */
PerfSample simulateThreeTier(
    const ThreeTierConfig &cfg,
    const WorkloadParams &params = WorkloadParams::defaults(),
    RunDiagnostics *diag = nullptr);

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_THREE_TIER_HH
