#include "txn.hh"

namespace wcnn {
namespace sim {

const char *
txnClassName(TxnClass cls)
{
    switch (cls) {
      case TxnClass::Manufacturing:
        return "manufacturing";
      case TxnClass::DealerPurchase:
        return "dealer_purchase";
      case TxnClass::DealerManage:
        return "dealer_manage";
      case TxnClass::DealerBrowse:
        return "dealer_browse_autos";
    }
    return "unknown";
}

} // namespace sim
} // namespace wcnn
