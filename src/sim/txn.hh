/**
 * @file
 * Transaction taxonomy of the simulated 3-tier workload.
 *
 * The paper's workload models the transactions among a manufacturing
 * company, its dealers and suppliers, and reports four response-time
 * indicators: manufacturing, dealer purchase, dealer manage and dealer
 * browse-autos (section 4). We keep exactly those four transaction
 * classes.
 */

#ifndef WCNN_SIM_TXN_HH
#define WCNN_SIM_TXN_HH

#include <array>
#include <cstdint>
#include <string>

namespace wcnn {
namespace sim {

/** Transaction classes of the simulated workload. */
enum class TxnClass : std::uint8_t
{
    Manufacturing = 0, ///< WorkOrder flow on the mfg queue
    DealerPurchase,    ///< dealer purchase on the web queue (+ default hop)
    DealerManage,      ///< dealer manage on the web queue (+ default hop)
    DealerBrowse,      ///< dealer browse-autos on the web queue
};

/** Number of transaction classes. */
constexpr std::size_t numTxnClasses = 4;

/** All classes in enum order, for iteration. */
constexpr std::array<TxnClass, numTxnClasses> allTxnClasses = {
    TxnClass::Manufacturing,
    TxnClass::DealerPurchase,
    TxnClass::DealerManage,
    TxnClass::DealerBrowse,
};

/**
 * Human-readable class name matching the paper's indicator labels.
 *
 * @param cls Transaction class.
 */
const char *txnClassName(TxnClass cls);

/**
 * One injected request.
 */
struct Request
{
    /** Monotonic id assigned by the driver. */
    std::uint64_t id = 0;
    /** Transaction class. */
    TxnClass cls = TxnClass::Manufacturing;
    /** Injection time (seconds). */
    double arrivalTime = 0.0;
};

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_TXN_HH
