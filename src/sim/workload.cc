#include "workload.hh"

#include "core/contracts.hh"

namespace wcnn {
namespace sim {

const char *
serviceDistName(ServiceDist dist)
{
    switch (dist) {
    case ServiceDist::Lognormal:
        return "lognormal";
    case ServiceDist::Exponential:
        return "exponential";
    case ServiceDist::Deterministic:
        return "deterministic";
    }
    WCNN_UNREACHABLE("invalid ServiceDist");
}

WorkloadParams
WorkloadParams::defaults()
{
    WorkloadParams p;

    // Manufacturing (WorkOrder): DB heavy, runs on the dedicated mfg
    // queue. At injection 560/s this class arrives at 140/s; with ~100ms
    // of held-thread time the 16-thread mfg pool of the paper's example
    // slice sits near 90% utilization — the regime where its response
    // time reacts sharply to CPU inflation from the other pools.
    TxnProfile &mfg = p.profiles[static_cast<std::size_t>(
        TxnClass::Manufacturing)];
    // The mfg pool of the paper's example slice (16 threads at
    // injection 560) sits right at its saturation knee, so the CPU
    // stretch induced by the *web* queue's completion rate swings the
    // mfg response time across a wide range (Fig. 4's web-axis slope).
    mfg.mix = 0.25;
    mfg.cpuPre = 0.016;
    mfg.cpuPost = 0.008;
    mfg.dbDemand = 0.061;
    mfg.hasAuxHop = false;
    mfg.rtLimit = 1.2;

    // Dealer purchase: web queue, makes a synchronous default-queue hop
    // (order message dispatch) and a moderate DB call.
    TxnProfile &purchase = p.profiles[static_cast<std::size_t>(
        TxnClass::DealerPurchase)];
    purchase.mix = 0.25;
    purchase.cpuPre = 0.008;
    purchase.cpuPost = 0.004;
    purchase.dbDemand = 0.022;
    purchase.hasAuxHop = true;
    purchase.auxCpu = 0.0005;
    purchase.auxDb = 0.016;
    purchase.rtLimit = 1.5;

    // Dealer manage: web queue, lighter, also hops to the default queue.
    TxnProfile &manage = p.profiles[static_cast<std::size_t>(
        TxnClass::DealerManage)];
    manage.mix = 0.25;
    manage.cpuPre = 0.007;
    manage.cpuPost = 0.003;
    manage.dbDemand = 0.017;
    manage.hasAuxHop = true;
    manage.auxCpu = 0.0005;
    manage.auxDb = 0.012;
    manage.rtLimit = 1.5;

    // Dealer browse autos: web queue, read mostly, no hop.
    TxnProfile &browse = p.profiles[static_cast<std::size_t>(
        TxnClass::DealerBrowse)];
    browse.mix = 0.25;
    browse.cpuPre = 0.006;
    browse.cpuPost = 0.002;
    browse.dbDemand = 0.014;
    browse.hasAuxHop = false;
    browse.rtLimit = 1.5;

    return p;
}

} // namespace sim
} // namespace wcnn
