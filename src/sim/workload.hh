/**
 * @file
 * Demand model of the simulated 3-tier workload.
 *
 * The paper's workload models transactions among a manufacturing company,
 * its clients and suppliers on a commercial Java app server whose name is
 * withheld. These parameters define our synthetic equivalent: per-class
 * CPU/DB demands, the transaction mix, the response-time constraints the
 * workload "designates" (paper section 4), and the host parameters of
 * Table 1. Defaults are calibrated so that, around the paper's example
 * operating point (injection 560, mfg queue 16, default/web queues
 * swept), the system sits in the tuning-critical region: the mfg pool
 * near saturation, the web pool's knee inside the swept range, and the
 * default pool's knee in the low single digits.
 */

#ifndef WCNN_SIM_WORKLOAD_HH
#define WCNN_SIM_WORKLOAD_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/txn.hh"

namespace wcnn {
namespace sim {

/** Per-transaction-class demand profile. */
struct TxnProfile
{
    /** Relative arrival weight in the injected mix. */
    double mix = 0.25;

    /** Mean CPU demand before the DB call (seconds). */
    double cpuPre = 0.005;

    /** Mean CPU demand after the DB call (seconds). */
    double cpuPost = 0.003;

    /** Mean DB demand of the main query (seconds). */
    double dbDemand = 0.030;

    /**
     * Whether the transaction makes a synchronous hop to the default
     * queue (internal messaging/work dispatch held across the call).
     */
    bool hasAuxHop = false;

    /** Mean CPU demand of the default-queue hop (seconds). */
    double auxCpu = 0.0;

    /** Mean DB demand of the default-queue hop (seconds). */
    double auxDb = 0.0;

    /**
     * Response-time constraint (seconds): only transactions completing
     * within this bound count toward the effective throughput.
     */
    double rtLimit = 2.0;
};

/**
 * Service-time distribution family of all CPU/DB demands.
 *
 * The paper's synthetic workload draws lognormal demands; the
 * scenario library also exercises the surrogate under exponential
 * (memoryless, CV fixed at 1) and deterministic (CV 0) services,
 * which move the queueing behaviour between the M/M- and M/D-like
 * regimes without touching the demand means.
 */
enum class ServiceDist : std::uint8_t
{
    Lognormal,     ///< mean + serviceCov (the paper-like default)
    Exponential,   ///< memoryless; serviceCov is ignored (CV = 1)
    Deterministic, ///< exactly the mean; serviceCov is ignored (CV = 0)
};

/** Stable lowercase name of a service distribution ("lognormal", ...). */
const char *serviceDistName(ServiceDist dist);

/** Whole-system demand and host parameters. */
struct WorkloadParams
{
    /** Logical cores of the middle tier (Table 1: 4 x 2 x HT = 16). */
    std::size_t cores = 16;

    /** CPU efficiency tax per configured app-server thread. */
    double threadOverhead = 0.0002;

    /** CPU efficiency tax per runnable job beyond the core count. */
    double csOverhead = 0.002;

    /** Database connection-pool size. */
    std::size_t dbConnections = 48;

    /** Database lock-contention inflation per concurrent query. */
    double dbLockFactor = 0.030;

    /** Primary-pool backlog bound before submissions are rejected. */
    std::size_t backlogCap = 200;

    /**
     * Default-queue (work-item) buffer bound. Kept tighter than the
     * request queues: a jammed internal work queue should shed load
     * quickly rather than build seconds of latency.
     */
    std::size_t defaultBacklogCap = 100;

    /**
     * Fixed client/network round-trip added to every measured response
     * time (seconds). Keeps the indicator's dynamic range paper-like:
     * the driver measures end-to-end latency, not server residence.
     */
    double networkLatency = 0.35;

    /** Distribution family of all service demands. */
    ServiceDist serviceDist = ServiceDist::Lognormal;

    /** Coefficient of variation of all service demands (lognormal). */
    double serviceCov = 0.8;

    /**
     * Transactions between stop-the-world GC pauses. Allocation is
     * proportional to completed transactions, so the pause *rate* —
     * and with it everyone's response time — scales with the web
     * queue's completion rate. This is the dominant coupling between
     * the web queue size and the manufacturing response time (the
     * web-axis slope of the paper's Fig. 4). 0 disables GC.
     */
    std::size_t gcTxnInterval = 400;

    /** Mean stop-the-world pause length (seconds, lognormal). */
    double gcPauseMean = 0.080;

    /** Per-class demand profiles, indexed by TxnClass. */
    std::array<TxnProfile, numTxnClasses> profiles{};

    /** Paper-like defaults (see file comment). */
    static WorkloadParams defaults();

    /** Profile accessor by class. */
    const TxnProfile &
    profile(TxnClass cls) const
    {
        return profiles[static_cast<std::size_t>(cls)];
    }
};

} // namespace sim
} // namespace wcnn

#endif // WCNN_SIM_WORKLOAD_HH
