/**
 * @file
 * Unit and property tests for activation functions (paper Fig. 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hh"

using wcnn::nn::Activation;

TEST(ActivationTest, LogisticValuesAndRange)
{
    const Activation f = Activation::logistic(1.0);
    EXPECT_DOUBLE_EQ(f.value(0.0), 0.5);
    EXPECT_GT(f.value(10.0), 0.999);
    EXPECT_LT(f.value(-10.0), 0.001);
    for (double x = -20; x <= 20; x += 0.5) {
        EXPECT_GT(f.value(x), 0.0);
        EXPECT_LT(f.value(x), 1.0);
    }
}

TEST(ActivationTest, LogisticIsIncreasing)
{
    const Activation f = Activation::logistic(2.0);
    double prev = f.value(-10);
    for (double x = -9.5; x <= 10; x += 0.5) {
        EXPECT_GT(f.value(x), prev);
        prev = f.value(x);
    }
}

TEST(ActivationTest, SlopeSharpensTheBoundary)
{
    // Paper Fig. 2: as |a| grows the sigmoid approaches a hard limiter.
    const Activation soft = Activation::logistic(0.5);
    const Activation hard = Activation::logistic(10.0);
    EXPECT_LT(soft.value(1.0), hard.value(1.0));
    EXPECT_GT(soft.value(-1.0), hard.value(-1.0));
    EXPECT_GT(hard.value(1.0), 0.9999);
}

TEST(ActivationTest, TanhRangeAndSymmetry)
{
    const Activation f = Activation::tanh();
    EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
    EXPECT_NEAR(f.value(2.0), -f.value(-2.0), 1e-12);
    EXPECT_LT(f.value(100.0), 1.0 + 1e-12);
}

TEST(ActivationTest, ReluClampsNegative)
{
    const Activation f = Activation::relu();
    EXPECT_DOUBLE_EQ(f.value(-3.0), 0.0);
    EXPECT_DOUBLE_EQ(f.value(4.5), 4.5);
}

TEST(ActivationTest, IdentityPassesThrough)
{
    const Activation f = Activation::identity();
    EXPECT_DOUBLE_EQ(f.value(-7.25), -7.25);
    EXPECT_DOUBLE_EQ(f.derivative(-7.25, -7.25), 1.0);
}

TEST(ActivationTest, LogarithmicSymmetricAndUnbounded)
{
    const Activation f = Activation::logarithmic(1.0);
    EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
    EXPECT_NEAR(f.value(5.0), -f.value(-5.0), 1e-12);
    EXPECT_GT(f.value(1e6), 10.0); // unbounded, unlike the sigmoid
    // Monotone increasing.
    EXPECT_GT(f.value(2.0), f.value(1.0));
}

TEST(ActivationTest, NameRoundTrip)
{
    for (const Activation &f :
         {Activation::logistic(2.5), Activation::tanh(),
          Activation::relu(), Activation::identity(),
          Activation::logarithmic(0.5)}) {
        const Activation parsed = Activation::parse(f.name());
        EXPECT_EQ(parsed, f) << f.name();
    }
}

TEST(ActivationTest, ParseRejectsUnknown)
{
    EXPECT_THROW(Activation::parse("sigmoidish"),
                 std::invalid_argument);
}

/**
 * Property: the analytic derivative matches a central finite
 * difference, for every kind at several points.
 */
class ActivationDerivativeTest
    : public ::testing::TestWithParam<Activation>
{
};

TEST_P(ActivationDerivativeTest, MatchesFiniteDifference)
{
    const Activation f = GetParam();
    const double h = 1e-6;
    for (double x : {-3.0, -1.0, -0.3, 0.4, 1.0, 2.5}) {
        const double numeric =
            (f.value(x + h) - f.value(x - h)) / (2 * h);
        const double analytic = f.derivative(x, f.value(x));
        EXPECT_NEAR(analytic, numeric, 1e-5)
            << f.name() << " at x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ActivationDerivativeTest,
    ::testing::Values(Activation::logistic(1.0),
                      Activation::logistic(3.0), Activation::tanh(),
                      Activation::identity(),
                      Activation::logarithmic(1.0),
                      Activation::logarithmic(2.0)),
    [](const ::testing::TestParamInfo<Activation> &info) {
        std::string name = info.param.name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
