/**
 * @file
 * Tests for the closed-form queueing model: Erlang C correctness,
 * determinism, and trend agreement with the discrete-event simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "numeric/stats.hh"
#include "sim/analytic_surface.hh"
#include "sim/sample_space.hh"
#include "numeric/rng.hh"

using namespace wcnn::sim;

TEST(ErlangCTest, SingleServerEqualsUtilization)
{
    // For M/M/1 the probability of waiting equals rho.
    for (double rho : {0.1, 0.5, 0.9}) {
        EXPECT_NEAR(erlangC(1, rho), rho, 1e-12);
    }
}

TEST(ErlangCTest, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(erlangC(4, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(erlangC(4, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(erlangC(4, 10.0), 1.0);
}

TEST(ErlangCTest, KnownMultiServerValue)
{
    // M/M/2 with a = 1 (rho = 0.5): C = 1/3.
    EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangCTest, MonotoneInLoad)
{
    double prev = 0.0;
    for (double a = 0.5; a < 8.0; a += 0.5) {
        const double c = erlangC(8, a);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(ErlangCTest, MoreServersWaitLess)
{
    // Same utilization, more servers -> lower wait probability.
    EXPECT_LT(erlangC(16, 8.0), erlangC(2, 1.0));
}

TEST(AnalyticSurfaceTest, Deterministic)
{
    ThreeTierConfig cfg;
    const PerfSample a = analyticThreeTier(cfg);
    const PerfSample b = analyticThreeTier(cfg);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.manufacturingRt, b.manufacturingRt);
}

TEST(AnalyticSurfaceTest, SeedFieldIgnored)
{
    ThreeTierConfig a, b;
    a.seed = 1;
    b.seed = 999;
    EXPECT_DOUBLE_EQ(analyticThreeTier(a).throughput,
                     analyticThreeTier(b).throughput);
}

TEST(AnalyticSurfaceTest, IndicatorsArePositiveAndBounded)
{
    wcnn::numeric::Rng rng(3);
    const auto configs =
        randomDesign(SampleSpace::paperLike(), 50, rng);
    for (const auto &cfg : configs) {
        const PerfSample s = analyticThreeTier(cfg);
        for (double v : s.toVector()) {
            EXPECT_GT(v, 0.0);
            EXPECT_LT(v, 20.0 * cfg.injectionRate);
        }
        EXPECT_LE(s.throughput, cfg.injectionRate);
    }
}

TEST(AnalyticSurfaceTest, StarvedDefaultQueueHurtsPurchase)
{
    ThreeTierConfig starved;
    starved.defaultQueue = 0;
    ThreeTierConfig healthy;
    healthy.defaultQueue = 10;
    const PerfSample s = analyticThreeTier(starved);
    const PerfSample h = analyticThreeTier(healthy);
    EXPECT_GT(s.dealerPurchaseRt, 2.0 * h.dealerPurchaseRt);
    EXPECT_LT(s.throughput, h.throughput);
}

TEST(AnalyticSurfaceTest, ThroughputRisesWithWebPoolUnderContention)
{
    ThreeTierConfig narrow;
    narrow.webQueue = 14;
    ThreeTierConfig wide;
    wide.webQueue = 20;
    EXPECT_GE(analyticThreeTier(wide).throughput,
              analyticThreeTier(narrow).throughput);
}

TEST(AnalyticSurfaceTest, HigherInjectionNeverLowersResponseTimes)
{
    ThreeTierConfig lo, hi;
    lo.injectionRate = 500;
    hi.injectionRate = 620;
    const PerfSample a = analyticThreeTier(lo);
    const PerfSample b = analyticThreeTier(hi);
    EXPECT_GE(b.dealerBrowseRt, a.dealerBrowseRt - 1e-9);
    EXPECT_GE(b.manufacturingRt, a.manufacturingRt - 1e-9);
}

TEST(AnalyticSurfaceTest, TrendsCorrelateWithSimulator)
{
    // Rank-style agreement between the analytic model and the DES over
    // a spread of configurations, per indicator. The analytic model is
    // a companion, not a twin: we require strong positive correlation,
    // not equality.
    wcnn::numeric::Rng rng(11);
    auto configs = latinHypercubeDesign(SampleSpace::paperLike(), 12,
                                        rng);
    WorkloadParams params = WorkloadParams::defaults();
    std::vector<std::vector<double>> des(5), ana(5);
    for (auto &cfg : configs) {
        cfg.warmup = 10.0;
        cfg.measure = 40.0;
        cfg.seed = 1234;
        const auto d = simulateThreeTier(cfg, params).toVector();
        const auto a = analyticThreeTier(cfg, params).toVector();
        for (std::size_t j = 0; j < 5; ++j) {
            des[j].push_back(d[j]);
            ana[j].push_back(a[j]);
        }
    }
    // Dealer response times and throughput span wide ranges and must
    // agree strongly; manufacturing sits at a knife edge, so we only
    // require positive association there.
    EXPECT_GT(wcnn::numeric::correlation(des[1], ana[1]), 0.7);
    EXPECT_GT(wcnn::numeric::correlation(des[2], ana[2]), 0.7);
    EXPECT_GT(wcnn::numeric::correlation(des[4], ana[4]), 0.7);
    EXPECT_GT(wcnn::numeric::correlation(des[0], ana[0]), 0.0);
}
