/**
 * @file
 * Component tests for the application server's transaction flows,
 * driven by hand-injected requests on a real simulator.
 */

#include <gtest/gtest.h>

#include "sim/app_server.hh"
#include "sim/driver.hh"

using namespace wcnn::sim;
using wcnn::numeric::Rng;

namespace {

/** Deterministic workload: no service-time noise, no GC. */
WorkloadParams
quietParams()
{
    WorkloadParams p = WorkloadParams::defaults();
    p.serviceCov = 0.0;
    p.gcTxnInterval = 0;
    p.networkLatency = 0.0;
    p.threadOverhead = 0.0;
    p.csOverhead = 0.0;
    p.dbLockFactor = 0.0;
    return p;
}

struct Bench
{
    Simulator sim;
    WorkloadParams params = quietParams();
    PsCpu cpu{sim, 16, 0.0, 0.0};
    Database db{sim, 48, 0.0};
    ThreadPool mfg{sim, "mfg", 4, 50};
    ThreadPool web{sim, "web", 4, 50};
    ThreadPool def{sim, "default", 2, 50};
    Collector collector{0.0, 1000.0, params};
    AppServer server{sim,       cpu, db,        mfg,
                     web,       def, params,    collector,
                     Rng(77)};

    void
    inject(TxnClass cls, double when = 0.0)
    {
        static std::uint64_t next_id = 1;
        Request req{next_id++, cls, when};
        if (when == 0.0) {
            server.handle(req);
        } else {
            sim.scheduleAt(when, [this, req] { server.handle(req); });
        }
    }
};

} // namespace

TEST(AppServerTest, ManufacturingCompletesWithExpectedServiceTime)
{
    Bench b;
    b.inject(TxnClass::Manufacturing);
    b.sim.run(100.0);
    ASSERT_EQ(b.collector.completions(TxnClass::Manufacturing), 1u);
    const TxnProfile &prof = b.params.profile(TxnClass::Manufacturing);
    const double expected =
        prof.cpuPre + prof.dbDemand + prof.cpuPost;
    EXPECT_NEAR(b.collector.responseTime(TxnClass::Manufacturing).mean(),
                expected, 1e-9);
}

TEST(AppServerTest, BrowseUsesWebPoolOnly)
{
    Bench b;
    b.inject(TxnClass::DealerBrowse);
    b.sim.run(100.0);
    EXPECT_EQ(b.collector.completions(TxnClass::DealerBrowse), 1u);
    EXPECT_EQ(b.web.completed(), 1u);
    EXPECT_EQ(b.mfg.completed(), 0u);
    EXPECT_EQ(b.def.completed(), 0u);
}

TEST(AppServerTest, PurchaseDispatchesWorkItemToDefaultQueue)
{
    Bench b;
    b.inject(TxnClass::DealerPurchase);
    b.sim.run(100.0);
    EXPECT_EQ(b.collector.completions(TxnClass::DealerPurchase), 1u);
    EXPECT_EQ(b.web.completed(), 1u);
    EXPECT_EQ(b.def.completed(), 1u);
}

TEST(AppServerTest, PurchaseResponseIncludesSlowerBranch)
{
    // Make the work item far slower than the web tail: the measured
    // response time must cover the work item.
    Bench b;
    b.params.profiles[static_cast<std::size_t>(
        TxnClass::DealerPurchase)].auxDb = 2.0;
    b.inject(TxnClass::DealerPurchase);
    b.sim.run(100.0);
    ASSERT_EQ(b.collector.completions(TxnClass::DealerPurchase), 1u);
    EXPECT_GT(b.collector.responseTime(TxnClass::DealerPurchase).mean(),
              2.0);
}

TEST(AppServerTest, WebThreadReleasedBeforeWorkItemFinishes)
{
    // One web thread; the first purchase's slow work item must not
    // block a following browse transaction.
    Bench b2;
    Bench &b = b2;
    b.params.profiles[static_cast<std::size_t>(
        TxnClass::DealerPurchase)].auxDb = 5.0;
    b.inject(TxnClass::DealerPurchase, 0.001);
    b.inject(TxnClass::DealerBrowse, 0.002);
    b.sim.run(2.0); // work item (5s) not yet done
    EXPECT_EQ(b.collector.completions(TxnClass::DealerBrowse), 1u);
    EXPECT_EQ(b.collector.completions(TxnClass::DealerPurchase), 0u);
}

TEST(AppServerTest, PrimaryQueueOverflowDropsRequests)
{
    Bench b;
    // Tiny backlog: one worker + two queued, rest rejected.
    Simulator sim;
    WorkloadParams params = quietParams();
    PsCpu cpu(sim, 16, 0.0, 0.0);
    Database db(sim, 48, 0.0);
    ThreadPool mfg(sim, "mfg", 1, 2);
    ThreadPool web(sim, "web", 1, 2);
    ThreadPool def(sim, "default", 1, 2);
    Collector collector(0.0, 1000.0, params);
    AppServer server(sim, cpu, db, mfg, web, def, params, collector,
                     Rng(7));
    for (std::uint64_t i = 0; i < 6; ++i)
        server.handle(Request{i, TxnClass::DealerBrowse, 0.0});
    EXPECT_EQ(server.primaryRejects(), 3u);
    EXPECT_EQ(collector.drops(TxnClass::DealerBrowse), 3u);
    sim.run(1000.0);
    EXPECT_EQ(collector.completions(TxnClass::DealerBrowse), 3u);
}

TEST(AppServerTest, WorkItemRejectFailsTransaction)
{
    Simulator sim;
    WorkloadParams params = quietParams();
    // Make work items slow so the default pool jams.
    params.profiles[static_cast<std::size_t>(
        TxnClass::DealerPurchase)].auxDb = 10.0;
    PsCpu cpu(sim, 16, 0.0, 0.0);
    Database db(sim, 48, 0.0);
    ThreadPool mfg(sim, "mfg", 1, 100);
    ThreadPool web(sim, "web", 8, 100);
    ThreadPool def(sim, "default", 1, 1); // 1 worker + 1 queued
    Collector collector(0.0, 1000.0, params);
    AppServer server(sim, cpu, db, mfg, web, def, params, collector,
                     Rng(8));
    for (std::uint64_t i = 0; i < 4; ++i) {
        sim.scheduleAt(0.001 * static_cast<double>(i + 1),
                       [&server, i] {
                           server.handle(Request{
                               i, TxnClass::DealerPurchase,
                               0.001 * static_cast<double>(i + 1)});
                       });
    }
    sim.run(1000.0);
    // 2 work items fit (1 in service + 1 queued), later ones rejected.
    EXPECT_EQ(server.auxRejects(), 2u);
    EXPECT_EQ(collector.completions(TxnClass::DealerPurchase), 2u);
    EXPECT_EQ(collector.drops(TxnClass::DealerPurchase), 2u);
    // All web threads were released regardless.
    EXPECT_EQ(web.busy(), 0u);
}

TEST(AppServerTest, GcPausesAccumulateWithProcessedRequests)
{
    Simulator sim;
    WorkloadParams params = quietParams();
    params.gcTxnInterval = 5;
    params.gcPauseMean = 0.05;
    PsCpu cpu(sim, 16, 0.0, 0.0);
    Database db(sim, 48, 0.0);
    ThreadPool mfg(sim, "mfg", 4, 100);
    ThreadPool web(sim, "web", 4, 100);
    ThreadPool def(sim, "default", 2, 100);
    Collector collector(0.0, 1000.0, params);
    AppServer server(sim, cpu, db, mfg, web, def, params, collector,
                     Rng(9));
    for (std::uint64_t i = 0; i < 25; ++i) {
        const double when = 0.05 * static_cast<double>(i + 1);
        sim.scheduleAt(when, [&server, i, when] {
            server.handle(
                Request{i, TxnClass::DealerBrowse, when});
        });
    }
    sim.run(1000.0);
    // 25 processed requests at interval 5 -> 5 pauses.
    EXPECT_GT(cpu.pausedTime(), 0.0);
    EXPECT_NEAR(cpu.pausedTime() / 5.0, 0.05, 0.05);
}
