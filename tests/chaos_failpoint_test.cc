/**
 * @file
 * Unit tests for the fault-injection registry (core/failpoint.hh):
 * trigger modes, spec parsing, env/argv arming, hit/fire bookkeeping,
 * and the determinism contract of the probability trigger. The
 * pipeline-level chaos sweeps live in chaos_pipeline_test.cc.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/error.hh"
#include "core/failpoint.hh"

namespace fp = wcnn::core::failpoint;

namespace {

/** Every test starts and ends with a clean registry. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override
    {
        fp::reset();
        unsetenv("WCNN_FAILPOINTS");
    }
};

/** Count fires of `site` over n macro evaluations in this TU. */
std::size_t
countFires(const char *site, std::size_t n)
{
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i)
        WCNN_FAILPOINT(site, ++fired);
    return fired;
}

} // namespace

/*
 * Most tests below evaluate WCNN_FAILPOINT in this TU, which requires
 * the macro to be compiled in *here* — under the no-contracts preset
 * WCNN_NO_FAILPOINTS is global and the sites are statically dead, so
 * those tests skip. Registry-API tests (spec parsing, reports,
 * backoff) run in every build.
 */
#if defined(WCNN_NO_FAILPOINTS)
#define REQUIRE_TU_FAILPOINTS()                                             \
    GTEST_SKIP() << "TU built with WCNN_NO_FAILPOINTS"
#else
#define REQUIRE_TU_FAILPOINTS() static_cast<void>(0)
#endif

TEST_F(FailpointTest, InactiveByDefault)
{
    EXPECT_FALSE(fp::active());
    EXPECT_EQ(countFires("unit.site", 100), 0u);
    // Unarmed sites are not tracked at all.
    EXPECT_EQ(fp::hits("unit.site"), 0u);
}

TEST_F(FailpointTest, CompiledInReflectsThisBuild)
{
    // compiledIn() reports the library's flag truthfully either way;
    // it must agree with what the presets advertise, so just make sure
    // it links and returns.
    EXPECT_TRUE(fp::compiledIn() || !fp::compiledIn());
}

TEST_F(FailpointTest, AlwaysFiresEveryHit)
{
    REQUIRE_TU_FAILPOINTS();
    fp::Trigger trigger;
    trigger.mode = fp::Trigger::Mode::Always;
    fp::arm("unit.site", trigger);
    EXPECT_TRUE(fp::active());
    EXPECT_EQ(countFires("unit.site", 7), 7u);
    EXPECT_EQ(fp::hits("unit.site"), 7u);
    EXPECT_EQ(fp::fires("unit.site"), 7u);
}

TEST_F(FailpointTest, NthFiresExactlyThatHit)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.site=nth:3");
    std::vector<bool> fired;
    for (int i = 0; i < 5; ++i) {
        bool f = false;
        WCNN_FAILPOINT("unit.site", f = true);
        fired.push_back(f);
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
    EXPECT_EQ(fp::fires("unit.site"), 1u);
}

TEST_F(FailpointTest, NthWithCountFiresABurst)
{
    REQUIRE_TU_FAILPOINTS();
    // nth:2:3 fires hits 2, 3, 4 — enough to exhaust a 3-attempt
    // retry loop that first succeeds on hit 1.
    fp::armFromSpec("unit.site=nth:2:3");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
        bool f = false;
        WCNN_FAILPOINT("unit.site", f = true);
        fired.push_back(f);
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false,
                                        false}));
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysFires)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.zero=prob:0;unit.one=prob:1");
    EXPECT_EQ(countFires("unit.zero", 200), 0u);
    EXPECT_EQ(countFires("unit.one", 200), 200u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeedAndHit)
{
    REQUIRE_TU_FAILPOINTS();
    // Same seed -> identical fire schedule on re-arm; the decision is
    // a pure function of (seed, site, hit index).
    const auto schedule = [](std::uint64_t seed) {
        fp::reset();
        fp::Trigger trigger;
        trigger.mode = fp::Trigger::Mode::Probability;
        trigger.probability = 0.3;
        trigger.seed = seed;
        fp::arm("unit.site", trigger);
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i) {
            bool f = false;
            WCNN_FAILPOINT("unit.site", f = true);
            out.push_back(f);
        }
        return out;
    };
    const auto a = schedule(42);
    const auto b = schedule(42);
    const auto c = schedule(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // 64 draws at p=0.3: distinct seeds diverge
}

TEST_F(FailpointTest, ProbabilityRateIsRoughlyHonored)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.site=prob:0.25:7");
    const std::size_t fired = countFires("unit.site", 2000);
    EXPECT_GT(fired, 350u);
    EXPECT_LT(fired, 650u);
}

TEST_F(FailpointTest, DistinctSitesCountIndependently)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.a=always,unit.b=nth:2");
    (void)countFires("unit.a", 3);
    (void)countFires("unit.b", 3);
    EXPECT_EQ(fp::fires("unit.a"), 3u);
    EXPECT_EQ(fp::fires("unit.b"), 1u);
    EXPECT_EQ(fp::hits("unit.b"), 3u);
}

TEST_F(FailpointTest, DisarmAndOffSpecRemoveOneSite)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.a=always;unit.b=always");
    fp::disarm("unit.a");
    EXPECT_TRUE(fp::active());
    EXPECT_EQ(countFires("unit.a", 5), 0u);
    EXPECT_EQ(countFires("unit.b", 5), 5u);
    fp::armFromSpec("unit.b=off");
    EXPECT_FALSE(fp::active());
}

TEST_F(FailpointTest, ResetClearsEverything)
{
    fp::armFromSpec("unit.a=always");
    (void)countFires("unit.a", 2);
    fp::reset();
    EXPECT_FALSE(fp::active());
    EXPECT_EQ(fp::hits("unit.a"), 0u);
    EXPECT_TRUE(fp::report().empty());
}

TEST_F(FailpointTest, ReArmResetsCounters)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.a=nth:1");
    (void)countFires("unit.a", 3);
    EXPECT_EQ(fp::fires("unit.a"), 1u);
    fp::armFromSpec("unit.a=nth:1");
    // Fresh counters: hit 1 fires again.
    EXPECT_EQ(countFires("unit.a", 1), 1u);
}

TEST_F(FailpointTest, ReportListsArmedSitesSorted)
{
    fp::armFromSpec("unit.b=nth:4:2; unit.a=prob:0.5:9");
    const auto rows = fp::report();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].site, "unit.a");
    EXPECT_EQ(rows[0].trigger.mode, fp::Trigger::Mode::Probability);
    EXPECT_DOUBLE_EQ(rows[0].trigger.probability, 0.5);
    EXPECT_EQ(rows[0].trigger.seed, 9u);
    EXPECT_EQ(rows[1].site, "unit.b");
    EXPECT_EQ(rows[1].trigger.nth, 4u);
    EXPECT_EQ(rows[1].trigger.count, 2u);
}

TEST_F(FailpointTest, MalformedSpecsThrowTypedError)
{
    const char *bad[] = {
        "unit.a",                // no '='
        "=always",               // empty site
        "unit.a=",               // empty trigger
        "unit.a=sometimes",      // unknown mode
        "unit.a=nth",            // missing argument
        "unit.a=nth:0",          // nth is 1-based
        "unit.a=nth:1:0",        // zero-length burst
        "unit.a=nth:x",          // not an integer
        "unit.a=prob",           // missing probability
        "unit.a=prob:1.5",       // out of range
        "unit.a=prob:0.5:1.5",   // fractional seed
        "unit.a=always:1",       // stray argument
    };
    for (const char *spec : bad) {
        try {
            fp::armFromSpec(spec);
            FAIL() << "accepted malformed spec: " << spec;
        } catch (const wcnn::Error &e) {
            EXPECT_EQ(e.kind(), "failpoint") << spec;
        }
    }
}

TEST_F(FailpointTest, ArmFromEnvReadsTheVariable)
{
    REQUIRE_TU_FAILPOINTS();
    EXPECT_FALSE(fp::armFromEnv());
    setenv("WCNN_FAILPOINTS", "unit.env=always", 1);
    EXPECT_TRUE(fp::armFromEnv());
    EXPECT_EQ(countFires("unit.env", 2), 2u);
}

TEST_F(FailpointTest, InstallFromArgsStripsTheFlag)
{
    REQUIRE_TU_FAILPOINTS();
    std::string a0 = "prog", a1 = "--failpoints",
                a2 = "unit.cli=nth:1", a3 = "run";
    char *argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), nullptr};
    int argc = 4;
    EXPECT_TRUE(fp::installFromArgs(argc, argv));
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "run");
    EXPECT_EQ(countFires("unit.cli", 1), 1u);
}

TEST_F(FailpointTest, InstallFromArgsAcceptsEqualsForm)
{
    std::string a0 = "prog", a1 = "--failpoints=unit.cli=always";
    char *argv[] = {a0.data(), a1.data(), nullptr};
    int argc = 2;
    EXPECT_TRUE(fp::installFromArgs(argc, argv));
    EXPECT_EQ(argc, 1);
    EXPECT_TRUE(fp::active());
}

TEST_F(FailpointTest, BackoffScheduleIsDeterministicBoundedAndOptional)
{
    // Pure function of (attempt, base): doubling up to the cap.
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(0, 0.001), 0.001);
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(1, 0.001), 0.002);
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(2, 0.001), 0.004);
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(50, 0.001), 0.064); // exp cap
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(8, 0.01), 0.1);     // 100ms cap
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(3, 0.0), 0.0);      // disabled
    EXPECT_DOUBLE_EQ(fp::backoffSeconds(3, -1.0), 0.0);
    // Disabled backoff must not sleep at all.
    fp::backoffWait(5, 0.0);
}

TEST_F(FailpointTest, MacroActionCanThrowTypedErrors)
{
    REQUIRE_TU_FAILPOINTS();
    fp::armFromSpec("unit.throw=nth:2");
    auto poke = [] {
        WCNN_FAILPOINT("unit.throw",
                       throw wcnn::SimFault("injected: unit.throw"));
    };
    EXPECT_NO_THROW(poke());
    try {
        poke();
        FAIL() << "second hit should have thrown";
    } catch (const wcnn::SimFault &e) {
        EXPECT_EQ(e.kind(), "sim");
        EXPECT_TRUE(e.transient());
        EXPECT_NE(std::string(e.what()).find("unit.throw"),
                  std::string::npos);
    }
}
