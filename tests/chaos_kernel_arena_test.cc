/**
 * @file
 * Concurrency hammering for the kernel arena and the fast serving
 * path, run under the `chaos` CTest label so the nightly ASan/TSan
 * sweeps pick it up:
 *
 *   - many threads hammer their own threadArena() simultaneously with
 *     interleaved alloc/Frame/reset cycles — any cross-thread sharing
 *     or lifetime bug is a sanitizer report;
 *   - concurrent fused predictAll calls under KernelPolicy::Fast must
 *     each produce the bit pattern of the single-threaded reference
 *     composition (the arena is per-thread scratch, so concurrency
 *     must be invisible in the results).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/kernels/arena.hh"
#include "numeric/kernels/policy.hh"
#include "numeric/matrix.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::ModelBundle;
namespace kernels = wcnn::numeric::kernels;

TEST(ChaosKernelArenaTest, ConcurrentThreadArenasStayIsolated)
{
    constexpr int threads = 8;
    constexpr int rounds = 200;
    std::atomic<int> failures{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([t, &failures] {
            Rng rng = Rng::stream(2026, static_cast<std::uint64_t>(t));
            kernels::Arena &arena = kernels::threadArena();
            for (int round = 0; round < rounds; ++round) {
                {
                    kernels::Arena::Frame frame(arena);
                    // A handful of randomly sized blocks, each
                    // stamped with a thread-unique pattern and
                    // verified after the other blocks were written —
                    // cross-thread or cross-block aliasing flips a
                    // stamp.
                    const int blocks =
                        static_cast<int>(rng.uniformInt(1, 6));
                    std::vector<std::pair<double *, std::size_t>> owned;
                    for (int bl = 0; bl < blocks; ++bl) {
                        const auto n = static_cast<std::size_t>(
                            rng.uniformInt(0, 700));
                        double *p = arena.alloc(n);
                        const double stamp =
                            t * 1e6 + round * 10.0 + bl;
                        for (std::size_t i = 0; i < n; ++i)
                            p[i] = stamp;
                        owned.emplace_back(p, n);
                    }
                    for (std::size_t bl = 0; bl < owned.size(); ++bl) {
                        const double stamp = t * 1e6 + round * 10.0 +
                                             static_cast<double>(bl);
                        auto &[p, n] = owned[bl];
                        for (std::size_t i = 0; i < n; ++i)
                            if (p[i] != stamp)
                                failures.fetch_add(1);
                    }
                }
                // Occasionally drop everything, exercising reset
                // interleaved with other threads' traffic.
                if (round % 50 == 49)
                    arena.reset();
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(ChaosKernelArenaTest, ConcurrentFusedPredictAllIsBitStable)
{
    Rng rng = Rng::stream(2027, 0);
    const Mlp net(4,
                  {LayerSpec{16, Activation::logistic(1.0)},
                   LayerSpec{5, Activation::identity()}},
                  InitRule::Xavier, rng);
    Vector x_mu(4), x_sigma(4), y_mu(5), y_sigma(5);
    for (std::size_t j = 0; j < 4; ++j) {
        x_mu[j] = rng.uniform(-1.0, 1.0);
        x_sigma[j] = rng.uniform(0.5, 2.0);
    }
    for (std::size_t j = 0; j < 5; ++j) {
        y_mu[j] = rng.uniform(-5.0, 5.0);
        y_sigma[j] = rng.uniform(0.5, 4.0);
    }
    const ModelBundle bundle = ModelBundle::fromParts(
        net, Standardizer::fromMoments(x_mu, x_sigma),
        Standardizer::fromMoments(y_mu, y_sigma), {}, {});

    Matrix xs(97, 4);
    for (double &e : xs.data())
        e = rng.uniform(-3.0, 3.0);

    // Golden: the reference composition, single-threaded.
    const Matrix expected = bundle.predictAll(xs);

    // One guard on the spawning thread — the policy cell is global,
    // so per-thread guards would race their save/restore pairs.
    kernels::PolicyGuard guard(kernels::KernelPolicy::Fast);

    constexpr int threads = 8;
    constexpr int repeats = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int rep = 0; rep < repeats; ++rep) {
                const Matrix got = bundle.predictAll(xs);
                for (std::size_t i = 0; i < got.size(); ++i) {
                    if (std::bit_cast<std::uint64_t>(got.data()[i]) !=
                        std::bit_cast<std::uint64_t>(
                            expected.data()[i]))
                        mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);
}
