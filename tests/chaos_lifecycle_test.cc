/**
 * @file
 * Fault-injection sweep over every lifecycle.* failpoint site.
 *
 * The contract under drill: an injected fault at any stage surfaces
 * as a *typed* LifecycleError, the in-flight transition is discarded,
 * the incumbent keeps serving, the host version only ever moves by a
 * completed deploy, and once the trigger disarms the loop converges
 * to the same decisions an undisturbed run makes. The live-serve
 * containment (a faulted sink drops the record, the client still gets
 * its Ack) is drilled at the ServeCore seam.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/failpoint.hh"
#include "lifecycle/controller.hh"
#include "lifecycle/error.hh"
#include "lifecycle/host.hh"
#include "lifecycle/replay.hh"
#include "lifecycle_test_util.hh"
#include "serve/engine.hh"
#include "serve/registry.hh"

namespace {

using namespace wcnn;
using namespace wcnn::lifecycle_test;
namespace fp = core::failpoint;
using lifecycle::LifecycleController;
using lifecycle::LifecycleError;
using lifecycle::Stage;

class ChaosLifecycle : public testing::Test
{
  protected:
    void SetUp() override
    {
        fp::reset();
        if (!fp::compiledIn())
            GTEST_SKIP() << "failpoints compiled out";
    }
    void TearDown() override { fp::reset(); }
};

/** All five sites, in stage order. */
const char *const kSites[] = {
    "lifecycle.observe", "lifecycle.detect", "lifecycle.retrain",
    "lifecycle.shadow",  "lifecycle.promote",
};

TEST_F(ChaosLifecycle, EverySiteSurfacesTypedAndLeavesIncumbent)
{
    const auto incumbent = makeIncumbent();
    const lifecycle::Journal journal = promotionJournal(*incumbent);

    for (const char *site : kSites) {
        SCOPED_TRACE(site);
        serve::BundleRegistry registry;
        registry.swap(incumbent);
        lifecycle::RegistryHost host(registry);
        LifecycleController controller(host, testOptions());

        fp::armFromSpec(std::string(site) + "=always");
        std::size_t faults = 0;
        for (const lifecycle::ObservationRecord &rec :
             journal.records) {
            try {
                controller.record(rec);
            } catch (const LifecycleError &e) {
                ++faults;
                EXPECT_EQ(e.kind(), std::string("lifecycle"));
                EXPECT_NE(std::string(e.what()).find(site),
                          std::string::npos);
            }
        }
        fp::reset();

        // With the site always armed nothing can ever be promoted:
        // the incumbent is untouched and no transition half-applied.
        EXPECT_GT(faults, 0u);
        EXPECT_EQ(registry.version(), 1u);
        EXPECT_EQ(registry.active().get(), incumbent.get());
        EXPECT_EQ(controller.stats().promotions, 0u);
        EXPECT_EQ(controller.stage(), Stage::Monitoring);
    }
}

TEST_F(ChaosLifecycle, MidPromotionFaultKeepsRegistryConsistent)
{
    // Arm the gate itself: the fault fires after the candidate won
    // the comparison but before the swap. The incumbent must keep
    // serving, the candidate must be discarded, and the loop must
    // promote cleanly on the next drift once disarmed.
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    fp::armFromSpec("lifecycle.promote=nth:1");
    std::size_t faults = 0;
    for (const lifecycle::ObservationRecord &rec :
         promotionJournal(*incumbent).records) {
        try {
            controller.record(rec);
        } catch (const LifecycleError &) {
            ++faults;
        }
    }
    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(fp::fires("lifecycle.promote"), 1u);
    EXPECT_EQ(registry.version(), 1u);
    EXPECT_EQ(registry.active().get(), incumbent.get());
    EXPECT_EQ(controller.historyDepth(), 0u);
    fp::reset();

    // Disarmed, the still-drifted stream drives a fresh retrain and
    // the promotion completes. Records are predicted live by whatever
    // model is active, so once the candidate lands the error drops
    // and the loop settles — exactly one promotion.
    numeric::Rng rng(55);
    for (int i = 0; i < 48; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        lifecycle::ObservationRecord rec;
        rec.seq = 1000 + static_cast<std::uint64_t>(i);
        rec.x = {a, b};
        rec.predicted = registry.active()->predict(rec.x);
        rec.observed = {driftedSurface(a, b)};
        controller.record(rec);
    }
    EXPECT_EQ(controller.stats().promotions, 1u);
    EXPECT_EQ(registry.version(), 2u);
    EXPECT_EQ(controller.historyDepth(), 1u);
}

TEST_F(ChaosLifecycle, RetrainFaultIsContainedToOneCandidate)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    // First drift's retrain faults; the second drift's retrain runs
    // clean and promotes: blast radius is exactly one candidate.
    fp::armFromSpec("lifecycle.retrain=nth:1");
    const auto journal = promotionJournal(*incumbent);
    std::size_t faults = 0;
    for (const lifecycle::ObservationRecord &rec : journal.records) {
        try {
            controller.record(rec);
        } catch (const LifecycleError &) {
            ++faults;
        }
    }
    numeric::Rng rng(56);
    for (int i = 0; i < 48; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        lifecycle::ObservationRecord rec;
        rec.seq = 1000 + static_cast<std::uint64_t>(i);
        rec.x = {a, b};
        rec.predicted = registry.active()->predict(rec.x);
        rec.observed = {driftedSurface(a, b)};
        controller.record(rec);
    }

    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(controller.stats().promotions, 1u);
    EXPECT_EQ(registry.version(), 2u);
}

TEST_F(ChaosLifecycle, ObserveFaultDropsRecordNotTheStream)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    // A seeded tenth of the intakes fault; the surviving records
    // still drive the loop to a promotion (the stream is long enough
    // to absorb the losses).
    fp::armFromSpec("lifecycle.observe=prob:0.1:7");
    const auto incumbent_journal = promotionJournal(*incumbent);
    numeric::Rng rng(57);
    lifecycle::Journal extra;
    extra.inputDim = 2;
    extra.outputDim = 1;
    appendSegment(extra, *incumbent, rng, 32, Truth::Drifted);

    std::size_t faults = 0;
    const auto feed = [&](const lifecycle::Journal &journal) {
        for (const lifecycle::ObservationRecord &rec :
             journal.records) {
            try {
                controller.record(rec);
            } catch (const LifecycleError &) {
                ++faults;
            }
        }
    };
    feed(incumbent_journal);
    feed(extra);
    fp::reset();

    EXPECT_GT(faults, 0u);
    EXPECT_EQ(controller.stats().records,
              incumbent_journal.records.size() +
                  extra.records.size() - faults);
    EXPECT_GE(controller.stats().promotions, 1u);
}

TEST_F(ChaosLifecycle, SinkFaultIsInvisibleToTheClientPath)
{
    // The live-serve containment seam: ServeCore::observe calls the
    // sink under its lock; a faulted sink drops the record and counts
    // it, while the observation itself still succeeds (the session
    // would send its Ack).
    const auto incumbent = makeIncumbent();
    serve::ServeCore core({});
    core.deploy(incumbent);

    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());
    core.setObservationSink([&controller](const numeric::Vector &x,
                                          const numeric::Vector &p,
                                          const numeric::Vector &o) {
        controller.record(x, p, o);
    });

    fp::armFromSpec("lifecycle.observe=nth:2");
    core.observe({0.25, 0.5}, {1.0});
    core.observe({0.5, 0.25}, {1.0}); // sink faults; must not escape
    core.observe({0.75, 0.5}, {1.0});
    fp::reset();

    const serve::ServeStats stats = core.statsSnapshot();
    EXPECT_EQ(stats.observations, 3u);
    EXPECT_EQ(stats.droppedObservations, 1u);
    EXPECT_EQ(controller.stats().records, 2u);
}

TEST_F(ChaosLifecycle, DisarmedRunIsBitIdenticalToUndisturbed)
{
    // Arm-then-disarm must leave no residue: a controller that
    // weathered a faulted prefix replays the *same* decision digest
    // on a fresh run of the same stream as one that never saw a
    // fault. (Faulted records are dropped from the stream, so we
    // compare two clean controllers, one constructed after a chaos
    // sweep ran in this process.)
    const auto incumbent = makeIncumbent();
    const lifecycle::Journal journal = promotionJournal(*incumbent);

    const auto digestOf = [&] {
        serve::BundleRegistry registry;
        registry.swap(incumbent);
        lifecycle::RegistryHost host(registry);
        LifecycleController controller(host, testOptions());
        for (const lifecycle::ObservationRecord &rec : journal.records)
            controller.record(rec);
        return controller.digest();
    };

    const std::string before = digestOf();

    fp::armFromSpec("lifecycle.detect=always");
    {
        serve::BundleRegistry registry;
        registry.swap(incumbent);
        lifecycle::RegistryHost host(registry);
        LifecycleController controller(host, testOptions());
        for (const lifecycle::ObservationRecord &rec : journal.records) {
            try {
                controller.record(rec);
            } catch (const LifecycleError &) {
            }
        }
        EXPECT_TRUE(controller.decisions().empty());
    }
    fp::reset();

    EXPECT_EQ(digestOf(), before);
}

} // namespace
