/**
 * @file
 * WCNN_FAILPOINT under -DWCNN_NO_FAILPOINTS (this TU alone is compiled
 * with the flag; see tests/CMakeLists.txt). The macro must become a
 * statically dead branch: the action is type-checked but never
 * evaluated and the registry never consulted, so release builds carry
 * zero cost and zero behavior change even with triggers armed. The
 * function API stays available (ODR-identical across mixed TUs).
 */

#ifndef WCNN_NO_FAILPOINTS
#error "this TU must be compiled with WCNN_NO_FAILPOINTS"
#endif

#include <gtest/gtest.h>

#include <string>

#include "core/error.hh"
#include "core/failpoint.hh"

namespace fp = wcnn::core::failpoint;

namespace {

class NoFailpointsTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }
};

} // namespace

TEST_F(NoFailpointsTest, ActionIsNeverEvaluatedEvenWhenArmed)
{
    fp::armFromSpec("nofp.site=always");
    ASSERT_TRUE(fp::active());
    int evaluated = 0;
    for (int i = 0; i < 10; ++i)
        WCNN_FAILPOINT("nofp.site", ++evaluated);
    EXPECT_EQ(evaluated, 0);
}

TEST_F(NoFailpointsTest, SiteIsNeverCountedAsAHit)
{
    fp::armFromSpec("nofp.site=always");
    WCNN_FAILPOINT("nofp.site", throw wcnn::SimFault("unreachable"));
    // The compiled-out macro must not consult the registry at all.
    EXPECT_EQ(fp::hits("nofp.site"), 0u);
    EXPECT_EQ(fp::fires("nofp.site"), 0u);
}

TEST_F(NoFailpointsTest, ThrowingActionsTypeCheckButNeverThrow)
{
    fp::armFromSpec("nofp.throw=always");
    EXPECT_NO_THROW(WCNN_FAILPOINT(
        "nofp.throw", throw wcnn::SimFault("injected: nofp.throw")));
}

TEST_F(NoFailpointsTest, RegistryApiRemainsUsable)
{
    // Tools arm flags unconditionally; the functions must keep working
    // in no-failpoint builds even though no site will ever consult
    // them from a WCNN_NO_FAILPOINTS TU.
    EXPECT_NO_THROW(fp::armFromSpec("nofp.a=nth:2:3;nofp.b=prob:0.5:9"));
    EXPECT_TRUE(fp::active());
    EXPECT_EQ(fp::report().size(), 2u);
    EXPECT_THROW(fp::armFromSpec("nofp.c=bogus"), wcnn::Error);
    fp::reset();
    EXPECT_FALSE(fp::active());
}
