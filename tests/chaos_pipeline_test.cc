/**
 * @file
 * Chaos harness: seeded failpoint schedules swept over every injection
 * site x every pipeline entry point. The three invariants of the
 * fault-injection contract:
 *
 *  (a) no crash, leak, or race under any schedule — every outcome is
 *      either a clean result or a typed wcnn::Error (the suite runs
 *      under the asan-ubsan and tsan presets in CI; see the `chaos`
 *      ctest label);
 *  (b) a run whose injected transient faults are all retried
 *      successfully is bit-identical to a clean run;
 *  (c) quarantine bookkeeping exactly matches the injected schedule
 *      (site fire counters == recorded retries + drops + failures).
 *
 * Schedule-exactness assertions run at threads=1, where hit numbers
 * are assigned deterministically; the no-crash sweep also runs at
 * higher thread counts. The probability sweep takes its seed from
 * WCNN_CHAOS_SEED (rotated nightly in CI) so successive runs explore
 * different schedules while any single run stays reproducible.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hh"
#include "core/failpoint.hh"
#include "data/csv.hh"
#include "model/cross_validation.hh"
#include "model/grid_search.hh"
#include "model/linear_model.hh"
#include "model/study.hh"
#include "nn/serialize.hh"
#include "nn/trainer.hh"
#include "numeric/rng.hh"
#include "sim/sample_space.hh"

namespace fp = wcnn::core::failpoint;

using wcnn::data::Dataset;
using wcnn::numeric::Rng;

namespace {

/** Every library injection site, with the pipeline stage it gates. */
const std::vector<std::string> kSites = {
    "csv.read",       "csv.write",      "model.read",
    "model.write",    "train.diverge",  "cv.fold",
    "grid.candidate", "collect.sample", "sim.replicate",
};

class ChaosPipelineTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        fp::reset();
        if (!fp::compiledIn())
            GTEST_SKIP() << "library built with WCNN_NO_FAILPOINTS";
    }
    void TearDown() override { fp::reset(); }
};

/** Seed for the probability sweep; CI rotates it nightly. */
std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("WCNN_CHAOS_SEED");
    if (env == nullptr || *env == '\0')
        return 20260807u;
    return std::strtoull(env, nullptr, 10);
}

/**
 * One pass through every pipeline entry point, small enough to run
 * dozens of times under sanitizers. Touches: collectDataset,
 * collectSimulated, csv write/read, grid search, cross validation,
 * trainer (inside both), and model serialize write/read. Returns a
 * digest of everything computed, for bit-identity comparisons.
 */
struct PipelineDigest
{
    std::string csvText;
    std::string modelText;
    std::vector<double> cvAverage;
    double gridBestError = 0.0;
    std::size_t datasetRows = 0;
};

PipelineDigest
runPipeline(std::size_t threads)
{
    PipelineDigest digest;

    // Collection: analytic sampler through both collectors.
    Rng rng(17);
    const auto space = wcnn::sim::SampleSpace::paperLike();
    const auto configs = wcnn::sim::randomDesign(space, 12, rng);
    const auto params = wcnn::sim::WorkloadParams::defaults();
    wcnn::sim::CollectOptions collect;
    collect.threads = threads;
    collect.quarantine = true;
    const Dataset ds = wcnn::sim::collectDataset(
        configs, [&params](const wcnn::sim::ThreeTierConfig &cfg) {
            return wcnn::sim::analyticThreeTier(cfg, params);
        },
        collect);
    const Dataset sim_ds = wcnn::sim::collectSimulated(
        {configs.begin(), configs.begin() + 2}, params, 33, 2, collect);
    digest.datasetRows = ds.size() + sim_ds.size();
    if (ds.size() < 8)
        throw wcnn::Error("chaos", "too many dropped configs to model");

    // CSV round trip.
    std::stringstream csv;
    wcnn::data::writeCsv(ds, csv);
    digest.csvText = csv.str();
    const Dataset reread = wcnn::data::readCsv(csv);

    // Tuning + cross validation (quarantine mode) on the samples.
    wcnn::model::NnModelOptions nn;
    nn.train.maxEpochs = 30;
    nn.seed = 3;
    wcnn::model::GridSearchOptions grid;
    grid.hiddenUnits = {3, 4};
    grid.targetLosses = {0.05};
    grid.threads = threads;
    grid.onFailure = wcnn::model::OnFailure::Quarantine;
    const auto tuned = wcnn::model::gridSearch(nn, reread, grid);
    digest.gridBestError = tuned.best().validationError;

    wcnn::model::CvOptions cv;
    cv.folds = 4;
    cv.keepPredictions = false;
    cv.threads = threads;
    cv.onFailure = wcnn::model::OnFailure::Quarantine;
    const auto cv_result = wcnn::model::crossValidate(
        [] { return std::make_unique<wcnn::model::LinearModel>(); },
        reread, cv);
    digest.cvAverage = cv_result.averageValidationError();

    // Model serialization round trip.
    Rng mlp_rng(5);
    wcnn::nn::Mlp net(2,
                      {{3, wcnn::nn::Activation::tanh()},
                       {1, wcnn::nn::Activation::identity()}},
                      wcnn::nn::InitRule::Xavier, mlp_rng);
    std::stringstream model;
    wcnn::nn::Serializer::write(net, model);
    digest.modelText = model.str();
    (void)wcnn::nn::Serializer::read(model);
    return digest;
}

void
expectSameDigest(const PipelineDigest &a, const PipelineDigest &b)
{
    EXPECT_EQ(a.csvText, b.csvText);
    EXPECT_EQ(a.modelText, b.modelText);
    EXPECT_EQ(a.cvAverage, b.cvAverage);
    EXPECT_EQ(a.gridBestError, b.gridBestError);
    EXPECT_EQ(a.datasetRows, b.datasetRows);
}

} // namespace

TEST_F(ChaosPipelineTest, EverySiteAlwaysFiringYieldsTypedErrorOrResult)
{
    // (a): with each site firing on every hit, each entry point either
    // completes (the stage quarantined its way around the fault) or
    // raises a typed wcnn::Error — never a crash, leak, or contract
    // abort. Sanitizer presets turn any leak/race into a failure.
    for (const auto &site : kSites) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            fp::reset();
            fp::armFromSpec(site + "=always");
            try {
                (void)runPipeline(threads);
            } catch (const wcnn::Error &e) {
                EXPECT_FALSE(std::string(e.what()).empty())
                    << site << " threads=" << threads;
            }
            EXPECT_GT(fp::hits(site), 0u)
                << "site " << site << " was never reached";
        }
    }
}

TEST_F(ChaosPipelineTest, SingleTransientFaultPerSiteIsSurvivable)
{
    // Every site, firing exactly once, at every pipeline entry point:
    // retryable stages recover, quarantining stages record and carry
    // on, I/O stages raise their typed error. Still no crash.
    for (const auto &site : kSites) {
        fp::reset();
        fp::armFromSpec(site + "=nth:1");
        try {
            (void)runPipeline(1);
        } catch (const wcnn::Error &e) {
            EXPECT_FALSE(std::string(e.what()).empty()) << site;
        }
    }
}

TEST_F(ChaosPipelineTest, ProbabilitySweepWithRotatingSeed)
{
    // Seeded random schedules across ALL sites at once. Each round is
    // reproducible from (WCNN_CHAOS_SEED, round); CI rotates the env
    // var nightly to walk the schedule space.
    const std::uint64_t seed = chaosSeed();
    for (std::uint64_t round = 0; round < 8; ++round) {
        fp::reset();
        std::string spec;
        for (const auto &site : kSites) {
            spec += site + "=prob:0.02:" +
                    std::to_string(seed + 1000 * round) + ";";
        }
        fp::armFromSpec(spec);
        try {
            (void)runPipeline(1);
        } catch (const wcnn::Error &e) {
            EXPECT_FALSE(std::string(e.what()).empty())
                << "seed " << seed << " round " << round;
        }
    }
}

TEST_F(ChaosPipelineTest, FullyRetriedScheduleIsBitIdenticalToCleanRun)
{
    // (b): faults that the collectors retry to success must leave no
    // trace in the results. One transient fault in each retryable
    // site, spaced so every retry succeeds (maxAttempts default 3).
    fp::reset();
    const PipelineDigest clean = runPipeline(1);

    fp::reset();
    fp::armFromSpec("collect.sample=nth:3;sim.replicate=nth:2");
    const PipelineDigest chaotic = runPipeline(1);
    EXPECT_EQ(fp::fires("collect.sample"), 1u);
    EXPECT_EQ(fp::fires("sim.replicate"), 1u);
    expectSameDigest(clean, chaotic);
}

TEST_F(ChaosPipelineTest, ArmedButNeverFiringScheduleIsBitIdentical)
{
    // The active() gate itself must not perturb results: a trigger
    // that never fires leaves the pipeline bit-identical to a run
    // with the registry empty.
    fp::reset();
    const PipelineDigest clean = runPipeline(1);

    fp::reset();
    fp::armFromSpec("collect.sample=nth:1000000;cv.fold=prob:0");
    const PipelineDigest armed = runPipeline(1);
    EXPECT_EQ(fp::fires("collect.sample"), 0u);
    expectSameDigest(clean, armed);
}

TEST_F(ChaosPipelineTest, QuarantineBookkeepingMatchesInjectedSchedule)
{
    // (c): at threads=1 hit numbers are deterministic, so the exact
    // set of failed items is predictable from the armed schedule.
    const Dataset ds = [] {
        Rng rng(21);
        Dataset out({"a", "b"}, {"y"});
        for (std::size_t i = 0; i < 24; ++i) {
            const double a = rng.uniform(1, 10);
            const double b = rng.uniform(1, 10);
            out.add({a, b}, {2 * a - b + rng.normal(0, 0.05)});
        }
        return out;
    }();

    // CV: folds 2 and 4 (hits 2 and 4) quarantine; 1 and 3 survive.
    fp::armFromSpec("cv.fold=nth:2;cv.fold2=off");
    wcnn::model::CvOptions cv;
    cv.folds = 4;
    cv.keepPredictions = false;
    cv.onFailure = wcnn::model::OnFailure::Quarantine;
    auto cv_result = wcnn::model::crossValidate(
        [] { return std::make_unique<wcnn::model::LinearModel>(); }, ds,
        cv);
    EXPECT_EQ(fp::fires("cv.fold"), 1u);
    EXPECT_EQ(cv_result.failedCount(), 1u);
    EXPECT_TRUE(cv_result.trials[1].failed);
    EXPECT_FALSE(cv_result.trials[0].failed);
    EXPECT_FALSE(cv_result.trials[2].failed);
    EXPECT_FALSE(cv_result.trials[3].failed);

    // Grid: candidates at hits 1 and 3 fail, 2 and 4 survive.
    fp::reset();
    fp::armFromSpec("grid.candidate=nth:1;grid.candidate2=off");
    wcnn::model::NnModelOptions nn;
    nn.train.maxEpochs = 25;
    nn.seed = 3;
    wcnn::model::GridSearchOptions grid;
    grid.hiddenUnits = {2, 3};
    grid.targetLosses = {0.05};
    grid.onFailure = wcnn::model::OnFailure::Quarantine;
    const auto tuned = wcnn::model::gridSearch(nn, ds, grid);
    EXPECT_EQ(fp::fires("grid.candidate"), 1u);
    EXPECT_EQ(tuned.failedCount(), 1u);
    EXPECT_TRUE(tuned.entries[0].failed);
    EXPECT_FALSE(tuned.entries[1].failed);
    EXPECT_EQ(tuned.bestIndex, 1u);

    // Every fire is accounted for: failures recorded == fires.
    EXPECT_EQ(tuned.failedCount() + cv_result.failedCount(), 2u);
}

TEST_F(ChaosPipelineTest, GoldenPathUnaffectedWhenDisarmed)
{
    // With the registry empty the pipeline is the pipeline: two runs
    // are bit-identical, and identical to a run after arm+reset.
    const PipelineDigest a = runPipeline(1);
    fp::armFromSpec("collect.sample=always");
    fp::reset();
    const PipelineDigest b = runPipeline(1);
    expectSameDigest(a, b);
}
