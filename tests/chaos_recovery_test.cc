/**
 * @file
 * Recovery semantics under injected faults: resumable training
 * divergence, collector retry/drop bookkeeping, and the
 * strict-vs-quarantine policies of cross-validation and grid search.
 * Scenarios that need library-side injection sites skip when the
 * library was built with WCNN_NO_FAILPOINTS (the no-contracts preset);
 * the natural-divergence resume path runs everywhere.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/error.hh"
#include "core/failpoint.hh"
#include "model/cross_validation.hh"
#include "model/grid_search.hh"
#include "model/linear_model.hh"
#include "model/study.hh"
#include "nn/trainer.hh"
#include "numeric/rng.hh"
#include "sim/sample_space.hh"

namespace fp = wcnn::core::failpoint;

using wcnn::data::Dataset;
using wcnn::model::crossValidate;
using wcnn::model::CvOptions;
using wcnn::model::FoldFailure;
using wcnn::model::formatTable;
using wcnn::model::GridSearchOptions;
using wcnn::model::gridSearch;
using wcnn::model::LinearModel;
using wcnn::model::OnFailure;
using wcnn::nn::TrainDivergence;
using wcnn::numeric::Rng;
using wcnn::sim::CollectOptions;
using wcnn::sim::CollectReport;
using wcnn::sim::ConfigStatus;

namespace {

class RecoveryTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }
};

// GTEST_SKIP() only returns from the enclosing function, so the guard
// must expand inside the test body itself — a helper would skip the
// helper and then keep executing the test.
#define REQUIRE_LIBRARY_FAILPOINTS()                                        \
    do {                                                                    \
        if (!fp::compiledIn())                                              \
            GTEST_SKIP() << "library built with WCNN_NO_FAILPOINTS";        \
    } while (0)

Dataset
noisyLinearDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds({"a", "b"}, {"y"});
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(1, 10);
        const double b = rng.uniform(1, 10);
        ds.add({a, b}, {2 * a + b + rng.normal(0, 0.05)});
    }
    return ds;
}

wcnn::model::ModelFactory
linearFactory()
{
    return [] { return std::make_unique<LinearModel>(); };
}

std::vector<wcnn::sim::ThreeTierConfig>
smallDesign(std::size_t n)
{
    Rng rng(5);
    return wcnn::sim::randomDesign(wcnn::sim::SampleSpace::paperLike(), n,
                                   rng);
}

/** Fast sampler for collectDataset tests (analytic, no noise). */
wcnn::sim::SampleFn
analyticSampler()
{
    const auto params = wcnn::sim::WorkloadParams::defaults();
    return [params](const wcnn::sim::ThreeTierConfig &cfg) {
        return wcnn::sim::analyticThreeTier(cfg, params);
    };
}

void
expectSameDataset(const Dataset &a, const Dataset &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].x, b[i].x) << "row " << i;
        EXPECT_EQ(a[i].y, b[i].y) << "row " << i;
    }
}

} // namespace

// --- Trainer divergence -------------------------------------------------

TEST_F(RecoveryTest, NaturalDivergenceIsResumableWithSmallerRate)
{
    Rng rng(1234);
    wcnn::nn::Mlp net(
        2,
        {{8, wcnn::nn::Activation::logistic(1.0)},
         {1, wcnn::nn::Activation::identity()}},
        wcnn::nn::InitRule::Xavier, rng);

    wcnn::numeric::Matrix x(16, 2);
    wcnn::numeric::Matrix y(16, 1);
    for (std::size_t i = 0; i < 16; ++i) {
        x(i, 0) = rng.uniform(-1.0, 1.0);
        x(i, 1) = rng.uniform(-1.0, 1.0);
        y(i, 0) = x(i, 0) + 0.5 * x(i, 1);
    }

    wcnn::nn::TrainOptions opts;
    opts.learningRate = 1e9; // deliberately divergent
    opts.momentum = 0.0;
    opts.maxEpochs = 50;
    opts.targetLoss = 0.0;

    try {
        wcnn::nn::Trainer(opts).train(net, x, y, rng);
        FAIL() << "expected TrainDivergence";
    } catch (const TrainDivergence &e) {
        // Resume from the carried weights at a sane rate: the run
        // completes and ends at a finite loss.
        wcnn::nn::Mlp resumed = e.lastGood();
        opts.learningRate = 0.05;
        const auto result =
            wcnn::nn::Trainer(opts).train(resumed, x, y, rng);
        EXPECT_EQ(result.epochs, 50u);
        EXPECT_TRUE(std::isfinite(result.finalTrainLoss));
    }
}

TEST_F(RecoveryTest, InjectedDivergenceCarriesEpochAndPartialHistory)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    Rng rng(9);
    wcnn::nn::Mlp net(1, {{4, wcnn::nn::Activation::tanh()}},
                      wcnn::nn::InitRule::Xavier, rng);
    wcnn::numeric::Matrix x(8, 1);
    wcnn::numeric::Matrix y(8, 4);
    for (std::size_t i = 0; i < 8; ++i) {
        x(i, 0) = rng.uniform(-1.0, 1.0);
        for (std::size_t j = 0; j < 4; ++j)
            y(i, j) = 0.1 * x(i, 0);
    }
    wcnn::nn::TrainOptions opts;
    opts.maxEpochs = 10;
    opts.targetLoss = 0.0;

    // One hit per epoch: the 3rd epoch (index 2) diverges.
    fp::armFromSpec("train.diverge=nth:3");
    try {
        wcnn::nn::Trainer(opts).train(net, x, y, rng);
        FAIL() << "expected TrainDivergence";
    } catch (const TrainDivergence &e) {
        EXPECT_EQ(e.epoch(), 2u);
        EXPECT_TRUE(std::isnan(e.loss()));
        EXPECT_EQ(e.partialResult().epochs, 2u);
        EXPECT_EQ(e.partialResult().trainLossHistory.size(), 2u);
        const wcnn::numeric::Vector probe{0.3};
        for (double v : e.lastGood().forward(probe))
            EXPECT_TRUE(std::isfinite(v));
    }
}

// --- Collectors ---------------------------------------------------------

TEST_F(RecoveryTest, RetriedTransientFaultReproducesCleanRunBitForBit)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const auto configs = smallDesign(6);

    const Dataset clean = wcnn::sim::collectDataset(
        configs, analyticSampler(), CollectOptions{});

    fp::armFromSpec("collect.sample=nth:2"); // one transient fault
    CollectReport report;
    const Dataset chaotic = wcnn::sim::collectDataset(
        configs, analyticSampler(), CollectOptions{}, &report);

    EXPECT_EQ(fp::fires("collect.sample"), 1u);
    EXPECT_EQ(report.retries(), 1u);
    EXPECT_EQ(report.dropped(), 0u);
    expectSameDataset(clean, chaotic);
}

TEST_F(RecoveryTest, ExhaustedRetriesDropTheConfigUnderQuarantine)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const auto configs = smallDesign(5);

    // Hits 2..4 fire: config 1's three attempts all fault.
    fp::armFromSpec("collect.sample=nth:2:3");
    CollectOptions options;
    options.maxAttempts = 3;
    options.quarantine = true;
    CollectReport report;
    const Dataset ds = wcnn::sim::collectDataset(
        configs, analyticSampler(), options, &report);

    EXPECT_EQ(ds.size(), configs.size() - 1);
    ASSERT_EQ(report.configs.size(), configs.size());
    EXPECT_EQ(report.configs[1].state, ConfigStatus::State::Dropped);
    EXPECT_EQ(report.configs[1].retries, 2u);
    EXPECT_NE(report.configs[1].error.find("collect.sample"),
              std::string::npos);
    EXPECT_EQ(report.dropped(), 1u);
    // Quarantine bookkeeping matches the injected schedule exactly:
    // every fire was either retried or ended in the one drop.
    EXPECT_EQ(fp::fires("collect.sample"), 3u);
    EXPECT_EQ(report.retries() + report.dropped(), 3u);
    // The surviving rows are the untouched configurations, in order.
    const Dataset clean = wcnn::sim::collectDataset(
        configs, analyticSampler(), CollectOptions{});
    EXPECT_EQ(ds[0].y, clean[0].y);
    EXPECT_EQ(ds[1].y, clean[2].y);
}

TEST_F(RecoveryTest, StrictCollectionPropagatesTheFault)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const auto configs = smallDesign(3);
    fp::armFromSpec("collect.sample=nth:1");
    CollectOptions options;
    options.maxAttempts = 1; // no retries, no quarantine
    EXPECT_THROW(wcnn::sim::collectDataset(configs, analyticSampler(),
                                           options),
                 wcnn::SimFault);
}

TEST_F(RecoveryTest, SimulatedReplicateRetryReusesTheSeed)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const auto configs = smallDesign(2);
    const auto params = wcnn::sim::WorkloadParams::defaults();

    const Dataset clean = wcnn::sim::collectSimulated(
        configs, params, 100, 2, CollectOptions{});

    // Replicate 2 of config 0 faults once; its retry reuses the same
    // seed, so the means are bit-identical to the clean run.
    fp::armFromSpec("sim.replicate=nth:2");
    CollectReport report;
    const Dataset chaotic = wcnn::sim::collectSimulated(
        configs, params, 100, 2, CollectOptions{}, &report);

    EXPECT_EQ(report.retries(), 1u);
    EXPECT_EQ(report.dropped(), 0u);
    expectSameDataset(clean, chaotic);
}

// --- Cross validation ---------------------------------------------------

TEST_F(RecoveryTest, QuarantinedFoldKeepsPartialResults)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const Dataset ds = noisyLinearDataset(25, 1);
    CvOptions opts;
    opts.folds = 5;
    opts.onFailure = OnFailure::Quarantine;

    fp::armFromSpec("cv.fold=nth:2");
    const auto result = crossValidate(linearFactory(), ds, opts);

    EXPECT_EQ(result.trials.size(), 5u);
    EXPECT_EQ(result.failedCount(), 1u);
    EXPECT_TRUE(result.trials[1].failed);
    EXPECT_NE(result.trials[1].error.find("cv.fold"), std::string::npos);
    // Averages are over the 4 surviving folds and stay finite.
    const auto avg = result.averageValidationError();
    ASSERT_EQ(avg.size(), 1u);
    EXPECT_TRUE(std::isfinite(avg[0]));
    // The rendered table marks the quarantined row.
    EXPECT_NE(formatTable(result).find("failed"), std::string::npos);
}

TEST_F(RecoveryTest, StrictModePropagatesTheFirstFoldFailure)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const Dataset ds = noisyLinearDataset(25, 1);
    CvOptions opts;
    opts.folds = 5; // onFailure defaults to Strict
    fp::armFromSpec("cv.fold=nth:2");
    EXPECT_THROW(crossValidate(linearFactory(), ds, opts), FoldFailure);
}

TEST_F(RecoveryTest, AllFoldsFailingThrowsEvenUnderQuarantine)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const Dataset ds = noisyLinearDataset(25, 1);
    CvOptions opts;
    opts.folds = 5;
    opts.onFailure = OnFailure::Quarantine;
    fp::armFromSpec("cv.fold=always");
    try {
        crossValidate(linearFactory(), ds, opts);
        FAIL() << "expected FoldFailure";
    } catch (const FoldFailure &e) {
        EXPECT_EQ(e.kind(), "fold");
        EXPECT_NE(std::string(e.what()).find("all 5 folds"),
                  std::string::npos);
    }
}

// --- Grid search --------------------------------------------------------

TEST_F(RecoveryTest, QuarantinedCandidateNeverWins)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const Dataset ds = noisyLinearDataset(30, 2);
    GridSearchOptions opts;
    opts.hiddenUnits = {2, 3};
    opts.targetLosses = {0.05};
    opts.onFailure = OnFailure::Quarantine;
    wcnn::model::NnModelOptions nn;
    nn.train.maxEpochs = 40;
    nn.seed = 3;

    fp::armFromSpec("grid.candidate=nth:1");
    const auto result = gridSearch(nn, ds, opts);

    ASSERT_EQ(result.entries.size(), 2u);
    EXPECT_TRUE(result.entries[0].failed);
    EXPECT_EQ(result.failedCount(), 1u);
    EXPECT_EQ(result.bestIndex, 1u);
    EXPECT_FALSE(result.best().failed);
}

TEST_F(RecoveryTest, AllCandidatesFailingThrowsEvenUnderQuarantine)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const Dataset ds = noisyLinearDataset(30, 2);
    GridSearchOptions opts;
    opts.hiddenUnits = {2, 3};
    opts.targetLosses = {0.05};
    opts.onFailure = OnFailure::Quarantine;
    wcnn::model::NnModelOptions nn;
    nn.train.maxEpochs = 40;

    fp::armFromSpec("grid.candidate=always");
    try {
        gridSearch(nn, ds, opts);
        FAIL() << "expected wcnn::Error";
    } catch (const wcnn::Error &e) {
        EXPECT_EQ(e.kind(), "grid");
    }
}

// --- Study --------------------------------------------------------------

TEST_F(RecoveryTest, NonStrictStudySurvivesScatteredFaults)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    wcnn::model::StudyOptions options;
    options.source = wcnn::model::StudyOptions::Source::Analytic;
    options.designSamples = 24;
    options.sliceAnchorsPerAxis = 2;
    options.strict = false;
    options.nn.train.maxEpochs = 60;
    options.tuning.hiddenUnits = {4};
    options.tuning.targetLosses = {0.05, 0.02};
    options.cv.folds = 4;

    // One tuning candidate and one CV fold fail; the study degrades
    // gracefully instead of aborting.
    fp::armFromSpec("grid.candidate=nth:1;cv.fold=nth:2");
    const auto result = wcnn::model::runStudy(options);

    EXPECT_EQ(result.tuning.failedCount(), 1u);
    EXPECT_EQ(result.cv.failedCount(), 1u);
    EXPECT_EQ(result.cv.trials.size(), 4u);
    EXPECT_TRUE(std::isfinite(result.cv.overallAccuracy()));
    EXPECT_GT(result.dataset.size(), 0u);
}
