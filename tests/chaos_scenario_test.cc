/**
 * @file
 * Fault injection against the scenario layer. The contract pinned
 * here is blast-radius containment: a fault injected at the
 * scenario.parse or scenario.resolve failpoint surfaces as the same
 * typed ScenarioError a genuinely malformed file produces, the
 * failing load costs exactly that one load, and after disarming the
 * same scenario loads cleanly — no poisoned caches, no partial
 * resolver state, no contract trips.
 *
 * Failpoint scenarios need library-side injection sites, so they skip
 * when the library was built with WCNN_NO_FAILPOINTS.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/failpoint.hh"
#include "scenario/library.hh"
#include "scenario/resolve.hh"

namespace fp = wcnn::core::failpoint;

using namespace wcnn;

namespace {

class ChaosScenarioTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }
};

#define REQUIRE_LIBRARY_FAILPOINTS()                                   \
    do {                                                               \
        if (!fp::compiledIn())                                         \
            GTEST_SKIP() << "library built with WCNN_NO_FAILPOINTS";   \
    } while (0)

constexpr const char *kMinimal = "scenario \"chaos\";";

} // namespace

TEST_F(ChaosScenarioTest, ParseFaultSurfacesAsATypedScenarioError)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    fp::armFromSpec("scenario.parse=always");
    try {
        (void)scenario::resolveText(kMinimal);
        FAIL() << "armed scenario.parse failpoint did not fire";
    } catch (const scenario::ScenarioError &e) {
        EXPECT_EQ(std::string(e.kind()), "scenario.parse");
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos);
    }
    EXPECT_EQ(fp::fires("scenario.parse"), 1u);
}

TEST_F(ChaosScenarioTest, ResolveFaultSurfacesAsATypedScenarioError)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    fp::armFromSpec("scenario.resolve=always");
    try {
        (void)scenario::resolveText(kMinimal);
        FAIL() << "armed scenario.resolve failpoint did not fire";
    } catch (const scenario::ScenarioError &e) {
        EXPECT_EQ(std::string(e.kind()), "scenario.resolve");
    }
    // The parse stage ran untouched; only resolution faulted.
    EXPECT_EQ(fp::hits("scenario.resolve"), 1u);
}

TEST_F(ChaosScenarioTest, NthTriggerCostsExactlyTheScheduledLoad)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    // Loads 1 and 3 succeed; only load 2 pays for the fault.
    fp::armFromSpec("scenario.parse=nth:2");
    EXPECT_NO_THROW((void)scenario::resolveText(kMinimal));
    EXPECT_THROW((void)scenario::resolveText(kMinimal),
                 scenario::ScenarioError);
    EXPECT_NO_THROW((void)scenario::resolveText(kMinimal));
    EXPECT_EQ(fp::hits("scenario.parse"), 3u);
    EXPECT_EQ(fp::fires("scenario.parse"), 1u);
}

TEST_F(ChaosScenarioTest, LibraryLoadsRecoverAfterDisarm)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    fp::armFromSpec("scenario.resolve=always");
    EXPECT_THROW((void)scenario::loadNamed("paper_3tier"),
                 scenario::ScenarioError);

    // Blast radius: the failed load left nothing behind; the same
    // scenario resolves to its full shape immediately after disarm.
    fp::reset();
    const scenario::ResolvedScenario rs =
        scenario::loadNamed("paper_3tier");
    EXPECT_EQ(rs.name, "paper_3tier");
    EXPECT_EQ(rs.base.injectionRate, 560.0);
}

TEST_F(ChaosScenarioTest, InjectedFaultsNarrowFromTheBaseError)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    // Drivers that only catch wcnn::Error (the CLI's `scenario
    // --check`) contain injected faults the same way they contain
    // genuinely malformed files.
    fp::armFromSpec("scenario.parse=always");
    EXPECT_THROW((void)scenario::resolveText(kMinimal), wcnn::Error);
}
