/**
 * @file
 * Fault injection against the inference server — BOTH engines. The
 * serving contract under chaos — pinned here — is blast-radius
 * containment: a fault at any WCNN_FAILPOINT site (serve.accept /
 * serve.read / serve.decode / serve.predict / serve.write) costs at
 * most the affected request or connection; the server keeps
 * accepting, later connections are served exactly, and stop() still
 * drains gracefully. A randomized multi-site sweep hammers the server
 * through all sites at once and then proves full recovery after the
 * faults are disarmed.
 *
 * Every scenario runs parametrized over {threaded, epoll}: the
 * containment contract is engine-independent, and for the epoll
 * engine it sharpens into "one poisoned connection never kills its
 * shard loop" — a shard multiplexes many connections onto one
 * thread, so a leaked exception there would take innocent
 * connections down with it. The shards=1 scenarios force every
 * connection onto the same loop to make that exact mistake fatal.
 *
 * Failpoint scenarios need library-side injection sites, so they
 * skip when the serve library was built with WCNN_NO_FAILPOINTS.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.hh"
#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"
#include "serve/engine.hh"
#include "serve/error.hh"
#include "serve/net/client.hh"

namespace fp = wcnn::core::failpoint;
namespace net = wcnn::serve::net;

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BundlePtr;
using wcnn::serve::EngineKind;
using wcnn::serve::makeServer;
using wcnn::serve::ModelBundle;
using wcnn::serve::ServeError;
using wcnn::serve::ServeOptions;
using wcnn::serve::ServerEngine;

namespace {

constexpr const char *kHost = "127.0.0.1";

class ChaosServeTest : public ::testing::TestWithParam<EngineKind>
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }

    std::unique_ptr<ServerEngine> makeEngine(ServeOptions opts = {})
    {
        return makeServer(GetParam(), std::move(opts));
    }
};

// GTEST_SKIP() only returns from the enclosing function, so the guard
// must expand inside the test body itself.
#define REQUIRE_LIBRARY_FAILPOINTS()                                   \
    do {                                                               \
        if (!fp::compiledIn())                                         \
            GTEST_SKIP() << "library built with WCNN_NO_FAILPOINTS";   \
    } while (0)

BundlePtr
makeBundle(std::uint64_t seed = 1)
{
    Rng rng(seed);
    Mlp mlp(3,
            {LayerSpec{6, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(mlp), Standardizer::identity(3),
        Standardizer::identity(2), {"a", "b", "c"}, {"u", "v"},
        "chaos"));
}

const Vector kX{1.0, -0.5, 2.0};

/** A fresh connection must answer exactly (post-fault recovery). */
void
expectServesExactly(ServerEngine &server, const BundlePtr &bundle)
{
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const Vector got = client.predict(kX);
    const Vector want = bundle->predict(kX);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
}

} // namespace

TEST_P(ChaosServeTest, PredictFaultAnswersTypedAndConnectionSurvives)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    auto server = makeEngine();
    server->deploy(bundle);
    server->start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server->port());
    fp::armFromSpec("serve.predict=nth:2");
    // Distinct inputs: a repeated input would be a cache hit and
    // never reach the batcher (and so never hit the failpoint).
    (void)client.predict({1.0, 0.0, 0.0}); // hit 1: clean
    EXPECT_THROW((void)client.predict({2.0, 0.0, 0.0}),
                 ServeError); // hit 2: fires
    // The error was typed, not a transport fault: the SAME connection
    // keeps working, and so does the batcher.
    const Vector probe{3.0, 0.0, 0.0};
    const Vector got = client.predict(probe);
    const Vector want = bundle->predict(probe);
    for (std::size_t j = 0; j < want.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
    EXPECT_EQ(fp::fires("serve.predict"), 1u);
    server->stop();
}

TEST_P(ChaosServeTest, ReadFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    auto server = makeEngine();
    server->deploy(bundle);
    server->start();

    fp::armFromSpec("serve.read=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server->port());
    // The injected read fault kills the connection at the first read
    // attempt; within two calls the client must see a transport
    // failure.
    bool faulted = false;
    for (int i = 0; i < 2 && !faulted; ++i) {
        try {
            (void)client.predict(kX);
        } catch (const ServeError &) {
            faulted = true;
        }
    }
    EXPECT_TRUE(faulted);
    EXPECT_EQ(fp::fires("serve.read"), 1u);

    fp::reset();
    expectServesExactly(*server, bundle); // the server survived
    server->stop();
}

TEST_P(ChaosServeTest, DecodeFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    auto server = makeEngine();
    server->deploy(bundle);
    server->start();

    fp::armFromSpec("serve.decode=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server->port());
    EXPECT_THROW((void)client.predict(kX), ServeError);

    fp::reset();
    expectServesExactly(*server, bundle);
    server->stop();
}

TEST_P(ChaosServeTest, WriteFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    auto server = makeEngine();
    server->deploy(bundle);
    server->start();

    fp::armFromSpec("serve.write=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server->port());
    // The answer is computed but its write faults: the client sees
    // the connection die, never a wrong result.
    EXPECT_THROW((void)client.predict(kX), ServeError);

    fp::reset();
    expectServesExactly(*server, bundle);
    server->stop();
}

TEST_P(ChaosServeTest, AcceptFaultDropsOneConnectionThenRecovers)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    auto server = makeEngine();
    server->deploy(bundle);
    server->start();

    fp::armFromSpec("serve.accept=nth:1");
    net::ServeClient dropped =
        net::ServeClient::connect(kHost, server->port());
    EXPECT_THROW((void)dropped.predict(kX), ServeError);
    EXPECT_EQ(fp::fires("serve.accept"), 1u);

    // nth:1 is exhausted: the very next connection is served.
    expectServesExactly(*server, bundle);
    server->stop();
}

/**
 * The epoll sharpening of blast-radius containment: with every
 * connection forced onto ONE shard loop, a peer that sends wire
 * garbage gets its typed protocol error and its close — while the
 * other connections multiplexed on the very same loop thread keep
 * being served exactly. (Threaded engine: trivially true, one thread
 * per connection — kept in the matrix as the reference behavior.)
 */
TEST_P(ChaosServeTest, PoisonedConnectionNeverKillsItsShardLoop)
{
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.shards = 1;
    auto server = makeEngine(opts);
    server->deploy(bundle);
    server->start();

    // Three bystanders sharing the poisoned connection's shard.
    std::vector<net::ServeClient> bystanders;
    for (int i = 0; i < 3; ++i)
        bystanders.push_back(
            net::ServeClient::connect(kHost, server->port()));

    net::ServeClient poisoned =
        net::ServeClient::connect(kHost, server->port());
    const char garbage[] = "\xde\xad\xbe\xef not a frame";
    poisoned.rawSend(garbage, sizeof(garbage) - 1);
    // The poisoned peer gets a typed protocol error, then the close.
    const net::Frame answer = poisoned.readFrame();
    EXPECT_EQ(answer.type, net::FrameType::Error);
    EXPECT_EQ(answer.errorKind, "serve.protocol");
    EXPECT_THROW((void)poisoned.readFrame(), ServeError);

    // Every bystander on the same shard still gets exact answers.
    for (net::ServeClient &client : bystanders) {
        const Vector got = client.predict(kX);
        const Vector want = bundle->predict(kX);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(got[j], want[j]);
    }
    EXPECT_GE(server->stats().errors, 1u);
    server->stop();
}

/** Same single-shard setup, but the poison is an injected decode
 *  fault instead of wire garbage. */
TEST_P(ChaosServeTest, DecodePoisonLeavesShardServingBystanders)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.shards = 1;
    auto server = makeEngine(opts);
    server->deploy(bundle);
    server->start();

    net::ServeClient bystander =
        net::ServeClient::connect(kHost, server->port());
    // Warm the bystander so its connection is fully established and
    // mode-detected before the fault arms.
    (void)bystander.predict(kX);

    fp::armFromSpec("serve.decode=nth:1");
    net::ServeClient poisoned =
        net::ServeClient::connect(kHost, server->port());
    EXPECT_THROW((void)poisoned.predict(kX), ServeError);
    EXPECT_EQ(fp::fires("serve.decode"), 1u);
    fp::reset();

    // The bystander's shard loop survived its neighbour's fault.
    const Vector probe{0.25, 0.5, -0.75};
    const Vector got = bystander.predict(probe);
    const Vector want = bundle->predict(probe);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
    server->stop();
}

TEST_P(ChaosServeTest, MultiSiteChaosSweepNeverKillsTheServer)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.cache.capacity = 128;
    auto server = makeEngine(opts);
    server->deploy(bundle);
    server->start();

    // Every site at once, seeded probabilistic triggers (replayable).
    fp::armFromSpec("serve.accept=prob:0.05:11;"
                    "serve.read=prob:0.03:12;"
                    "serve.decode=prob:0.03:13;"
                    "serve.predict=prob:0.08:14;"
                    "serve.write=prob:0.03:15");

    const std::size_t kClients = 3;
    const int kRequests = 60;
    std::vector<std::thread> threads;
    std::vector<int> answered(kClients, 0);
    std::vector<std::string> wrong(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            Rng rng = Rng::stream(31, c);
            std::unique_ptr<net::ServeClient> client;
            for (int i = 0; i < kRequests; ++i) {
                const Vector x{rng.uniform(-2, 2), rng.uniform(-2, 2),
                               rng.uniform(-2, 2)};
                try {
                    if (!client)
                        client = std::make_unique<net::ServeClient>(
                            net::ServeClient::connect(
                                kHost, server->port()));
                    const Vector got = client->predict(x);
                    const Vector want = bundle->predict(x);
                    if (got.size() != want.size()) {
                        wrong[c] = "size mismatch";
                        return;
                    }
                    for (std::size_t j = 0; j < want.size(); ++j)
                        if (got[j] != want[j]) {
                            wrong[c] = "bit mismatch";
                            return;
                        }
                    ++answered[c];
                } catch (const wcnn::Error &) {
                    // Injected fault: reconnect and continue. A wrong
                    // answer is a failure; a typed/transport error is
                    // the contract working.
                    client.reset();
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(wrong[c], "") << "client " << c;

    // Chaos must not have been a no-op, and some traffic got through.
    std::uint64_t total_fires = 0;
    for (const fp::SiteReport &site : fp::report())
        total_fires += site.fires;
    EXPECT_GT(total_fires, 0u);
    int total_answered = 0;
    for (std::size_t c = 0; c < kClients; ++c)
        total_answered += answered[c];
    EXPECT_GT(total_answered, 0);

    // Full recovery once disarmed, then a graceful drain.
    fp::reset();
    expectServesExactly(*server, bundle);
    server->stop();
    EXPECT_FALSE(server->running());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ChaosServeTest,
    ::testing::Values(EngineKind::Threaded, EngineKind::Epoll),
    [](const ::testing::TestParamInfo<EngineKind> &info) {
        return std::string(wcnn::serve::engineName(info.param));
    });
