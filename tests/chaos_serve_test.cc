/**
 * @file
 * Fault injection against the inference server. The serving contract
 * under chaos — pinned here — is blast-radius containment: a fault at
 * any WCNN_FAILPOINT site (serve.accept / serve.read / serve.decode /
 * serve.predict / serve.write) costs at most the affected request or
 * connection; the server keeps accepting, later connections are
 * served exactly, and stop() still drains gracefully. A randomized
 * multi-site sweep hammers the server through all sites at once and
 * then proves full recovery after the faults are disarmed.
 *
 * Scenarios need library-side injection sites, so everything skips
 * when the serve library was built with WCNN_NO_FAILPOINTS.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.hh"
#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"
#include "serve/error.hh"
#include "serve/net/client.hh"
#include "serve/server.hh"

namespace fp = wcnn::core::failpoint;
namespace net = wcnn::serve::net;

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BundlePtr;
using wcnn::serve::InferenceServer;
using wcnn::serve::ModelBundle;
using wcnn::serve::ServeError;

namespace {

constexpr const char *kHost = "127.0.0.1";

class ChaosServeTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }
};

// GTEST_SKIP() only returns from the enclosing function, so the guard
// must expand inside the test body itself.
#define REQUIRE_LIBRARY_FAILPOINTS()                                   \
    do {                                                               \
        if (!fp::compiledIn())                                         \
            GTEST_SKIP() << "library built with WCNN_NO_FAILPOINTS";   \
    } while (0)

BundlePtr
makeBundle(std::uint64_t seed = 1)
{
    Rng rng(seed);
    Mlp mlp(3,
            {LayerSpec{6, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(mlp), Standardizer::identity(3),
        Standardizer::identity(2), {"a", "b", "c"}, {"u", "v"},
        "chaos"));
}

const Vector kX{1.0, -0.5, 2.0};

/** A fresh connection must answer exactly (post-fault recovery). */
void
expectServesExactly(InferenceServer &server, const BundlePtr &bundle)
{
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const Vector got = client.predict(kX);
    const Vector want = bundle->predict(kX);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
}

} // namespace

TEST_F(ChaosServeTest, PredictFaultAnswersTypedAndConnectionSurvives)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    fp::armFromSpec("serve.predict=nth:2");
    // Distinct inputs: a repeated input would be a cache hit and
    // never reach the batcher (and so never hit the failpoint).
    (void)client.predict({1.0, 0.0, 0.0}); // hit 1: clean
    EXPECT_THROW((void)client.predict({2.0, 0.0, 0.0}),
                 ServeError); // hit 2: fires
    // The error was typed, not a transport fault: the SAME connection
    // keeps working, and so does the batcher.
    const Vector probe{3.0, 0.0, 0.0};
    const Vector got = client.predict(probe);
    const Vector want = bundle->predict(probe);
    for (std::size_t j = 0; j < want.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
    EXPECT_EQ(fp::fires("serve.predict"), 1u);
    server.stop();
}

TEST_F(ChaosServeTest, ReadFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    fp::armFromSpec("serve.read=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    // The injected read fault kills the connection at the first
    // refill; depending on arrival the first predict may still be
    // answered, but within two calls the client must see a transport
    // failure.
    bool faulted = false;
    for (int i = 0; i < 2 && !faulted; ++i) {
        try {
            (void)client.predict(kX);
        } catch (const ServeError &) {
            faulted = true;
        }
    }
    EXPECT_TRUE(faulted);
    EXPECT_EQ(fp::fires("serve.read"), 1u);

    fp::reset();
    expectServesExactly(server, bundle); // the server survived
    server.stop();
}

TEST_F(ChaosServeTest, DecodeFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    fp::armFromSpec("serve.decode=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_THROW((void)client.predict(kX), ServeError);

    fp::reset();
    expectServesExactly(server, bundle);
    server.stop();
}

TEST_F(ChaosServeTest, WriteFaultCostsOnlyThatConnection)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    fp::armFromSpec("serve.write=nth:1");
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    // The answer is computed but its write faults: the client sees
    // the connection die, never a wrong result.
    EXPECT_THROW((void)client.predict(kX), ServeError);

    fp::reset();
    expectServesExactly(server, bundle);
    server.stop();
}

TEST_F(ChaosServeTest, AcceptFaultDropsOneConnectionThenRecovers)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    fp::armFromSpec("serve.accept=nth:1");
    net::ServeClient dropped =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_THROW((void)dropped.predict(kX), ServeError);
    EXPECT_EQ(fp::fires("serve.accept"), 1u);

    // nth:1 is exhausted: the very next connection is served.
    expectServesExactly(server, bundle);
    server.stop();
}

TEST_F(ChaosServeTest, MultiSiteChaosSweepNeverKillsTheServer)
{
    REQUIRE_LIBRARY_FAILPOINTS();
    const BundlePtr bundle = makeBundle();
    wcnn::serve::ServeOptions opts;
    opts.cache.capacity = 128;
    InferenceServer server(opts);
    server.deploy(bundle);
    server.start();

    // Every site at once, seeded probabilistic triggers (replayable).
    fp::armFromSpec("serve.accept=prob:0.05:11;"
                    "serve.read=prob:0.03:12;"
                    "serve.decode=prob:0.03:13;"
                    "serve.predict=prob:0.08:14;"
                    "serve.write=prob:0.03:15");

    const std::size_t kClients = 3;
    const int kRequests = 60;
    std::vector<std::thread> threads;
    std::vector<int> answered(kClients, 0);
    std::vector<std::string> wrong(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            Rng rng = Rng::stream(31, c);
            std::unique_ptr<net::ServeClient> client;
            for (int i = 0; i < kRequests; ++i) {
                const Vector x{rng.uniform(-2, 2), rng.uniform(-2, 2),
                               rng.uniform(-2, 2)};
                try {
                    if (!client)
                        client = std::make_unique<net::ServeClient>(
                            net::ServeClient::connect(kHost,
                                                      server.port()));
                    const Vector got = client->predict(x);
                    const Vector want = bundle->predict(x);
                    if (got.size() != want.size()) {
                        wrong[c] = "size mismatch";
                        return;
                    }
                    for (std::size_t j = 0; j < want.size(); ++j)
                        if (got[j] != want[j]) {
                            wrong[c] = "bit mismatch";
                            return;
                        }
                    ++answered[c];
                } catch (const wcnn::Error &) {
                    // Injected fault: reconnect and continue. A wrong
                    // answer is a failure; a typed/transport error is
                    // the contract working.
                    client.reset();
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(wrong[c], "") << "client " << c;

    // Chaos must not have been a no-op, and some traffic got through.
    std::uint64_t total_fires = 0;
    for (const fp::SiteReport &site : fp::report())
        total_fires += site.fires;
    EXPECT_GT(total_fires, 0u);
    int total_answered = 0;
    for (std::size_t c = 0; c < kClients; ++c)
        total_answered += answered[c];
    EXPECT_GT(total_answered, 0);

    // Full recovery once disarmed, then a graceful drain.
    fp::reset();
    expectServesExactly(server, bundle);
    server.stop();
    EXPECT_FALSE(server.running());
}
