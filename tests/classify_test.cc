/**
 * @file
 * Tests for the parallel-slopes / valley / hill classifier on synthetic
 * surfaces with known shapes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "model/classify.hh"

using wcnn::model::classifySurface;
using wcnn::model::SurfaceClass;
using wcnn::model::SurfaceGrid;

namespace {

SurfaceGrid
makeGrid(std::size_t rows, std::size_t cols,
         const std::function<double(double, double)> &fn)
{
    SurfaceGrid grid;
    grid.axisAName = "a";
    grid.axisBName = "b";
    grid.indicatorName = "z";
    grid.z = wcnn::numeric::Matrix(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
        grid.aValues.push_back(static_cast<double>(i) /
                               static_cast<double>(rows - 1));
    }
    for (std::size_t j = 0; j < cols; ++j) {
        grid.bValues.push_back(static_cast<double>(j) /
                               static_cast<double>(cols - 1));
    }
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            grid.z(i, j) = fn(grid.aValues[i], grid.bValues[j]);
    return grid;
}

} // namespace

TEST(ClassifyTest, FlatSurfaceIsMixedWithZeroEvidence)
{
    const SurfaceGrid grid =
        makeGrid(7, 7, [](double, double) { return 3.0; });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Mixed);
    EXPECT_DOUBLE_EQ(analysis.variationA, 0.0);
    EXPECT_DOUBLE_EQ(analysis.variationB, 0.0);
}

TEST(ClassifyTest, OneFlatAxisGivesParallelSlopes)
{
    // z depends on b only (paper Fig. 4's "tuning a is futile").
    const SurfaceGrid grid = makeGrid(
        9, 9, [](double, double b) { return 1.0 + 4.0 * b; });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::ParallelSlopes)
        << analysis.describe();
    EXPECT_LT(analysis.variationA, 0.05);
    EXPECT_GT(analysis.variationB, 0.9);
}

TEST(ClassifyTest, NearlyFlatAxisStillParallelSlopes)
{
    const SurfaceGrid grid = makeGrid(9, 9, [](double a, double b) {
        return 1.0 + 4.0 * b + 0.1 * a;
    });
    EXPECT_EQ(classifySurface(grid).cls,
              SurfaceClass::ParallelSlopes);
}

TEST(ClassifyTest, GaussianBumpIsHill)
{
    // Interior maximum (paper Fig. 8).
    const SurfaceGrid grid = makeGrid(11, 11, [](double a, double b) {
        const double da = a - 0.5, db = b - 0.4;
        return 10.0 * std::exp(-8.0 * (da * da + db * db));
    });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Hill) << analysis.describe();
    EXPECT_GT(analysis.hillProminence, 0.5);
    EXPECT_EQ(analysis.maxA, 5u); // a = 0.5
}

TEST(ClassifyTest, InvertedBumpIsValley)
{
    // Interior minimum (paper Fig. 7).
    const SurfaceGrid grid = makeGrid(11, 11, [](double a, double b) {
        const double da = a - 0.6, db = b - 0.5;
        return 5.0 - 4.0 * std::exp(-6.0 * (da * da + db * db));
    });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Valley)
        << analysis.describe();
    EXPECT_GT(analysis.valleyProminence, 0.5);
}

TEST(ClassifyTest, DiagonalTroughIsValley)
{
    // The paper's joint-tuning valley: a trough along the diagonal.
    const SurfaceGrid grid = makeGrid(11, 11, [](double a, double b) {
        const double d = a - b;
        return 1.0 + 8.0 * d * d;
    });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Valley)
        << analysis.describe();
}

TEST(ClassifyTest, MonotoneRampOnBothAxesIsMixed)
{
    const SurfaceGrid grid = makeGrid(
        9, 9, [](double a, double b) { return a + b; });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Mixed)
        << analysis.describe();
    EXPECT_LT(analysis.hillProminence, 0.01);
    EXPECT_LT(analysis.valleyProminence, 0.01);
}

TEST(ClassifyTest, ValleyBeatsWeakerHill)
{
    // Both an interior min and max exist; the min is deeper.
    const SurfaceGrid grid = makeGrid(13, 13, [](double a, double b) {
        const double dv_a = a - 0.3, dv_b = b - 0.5;
        const double dh_a = a - 0.8, dh_b = b - 0.5;
        return 5.0 -
               4.0 * std::exp(-20.0 * (dv_a * dv_a + dv_b * dv_b)) +
               1.0 * std::exp(-20.0 * (dh_a * dh_a + dh_b * dh_b));
    });
    const auto analysis = classifySurface(grid);
    EXPECT_EQ(analysis.cls, SurfaceClass::Valley)
        << analysis.describe();
}

TEST(ClassifyTest, ThresholdsAreRespected)
{
    // A ridge bump that is shallow relative to a dominant ramp along
    // the other axis is out-voted by the ramp under a strict
    // threshold but registers as a hill when the threshold is
    // lowered.
    const SurfaceGrid grid = makeGrid(11, 11, [](double a, double b) {
        const double da = a - 0.5, db = b - 0.5;
        return 10.0 * b +
               0.4 * std::exp(-8.0 * (da * da + db * db));
    });
    wcnn::model::ClassifyOptions opts;
    opts.prominenceThreshold = 0.05; // bump ~3 % of the range
    // Above the threshold the bump is ignored and the ramp dominates:
    // one flat axis, one steep axis.
    const auto analysis = classifySurface(grid, opts);
    EXPECT_EQ(analysis.cls, SurfaceClass::ParallelSlopes)
        << analysis.describe();
    opts.prominenceThreshold = 0.002;
    EXPECT_EQ(classifySurface(grid, opts).cls, SurfaceClass::Hill)
        << classifySurface(grid, opts).describe();
}

TEST(ClassifyTest, NamesAreStable)
{
    EXPECT_STREQ(surfaceClassName(SurfaceClass::ParallelSlopes),
                 "parallel-slopes");
    EXPECT_STREQ(surfaceClassName(SurfaceClass::Valley), "valley");
    EXPECT_STREQ(surfaceClassName(SurfaceClass::Hill), "hill");
    EXPECT_STREQ(surfaceClassName(SurfaceClass::Mixed), "mixed");
}

TEST(ClassifyTest, DescribeMentionsClassAndEvidence)
{
    const SurfaceGrid grid = makeGrid(
        9, 9, [](double, double b) { return b; });
    const auto analysis = classifySurface(grid);
    const std::string text = analysis.describe();
    EXPECT_NE(text.find("parallel-slopes"), std::string::npos);
    EXPECT_NE(text.find("variation"), std::string::npos);
}
