/**
 * @file
 * Tests for the closed-loop (think-time) load driver.
 */

#include <gtest/gtest.h>

#include "sim/closed_driver.hh"
#include "sim/three_tier.hh"

using namespace wcnn::sim;
using wcnn::numeric::Rng;

namespace {

struct Harness
{
    Simulator sim;
    WorkloadParams params = WorkloadParams::defaults();
    PsCpu cpu{sim, 16, 0.0, 0.0};
    Database db{sim, 48, 0.0};
    ThreadPool mfg{sim, "mfg", 32, 1000};
    ThreadPool web{sim, "web", 32, 1000};
    ThreadPool def{sim, "default", 16, 1000};
    Collector collector{0.0, 1e9, params};
    AppServer server{sim, cpu, db,     mfg,       web,
                     def, params, collector, Rng(5)};
};

} // namespace

TEST(ClosedDriverTest, PopulationBoundsConcurrency)
{
    Harness h;
    ClosedLoopDriver driver(h.sim, h.server, 20, 0.1, h.params,
                            Rng(1), 1e9);
    driver.start();
    h.sim.run(20.0);
    // Never more outstanding requests than users.
    EXPECT_LE(driver.usersWaiting(), 20u);
    EXPECT_GT(driver.issued(), 100u);
}

TEST(ClosedDriverTest, ThroughputFollowsLittlesLaw)
{
    // N users, think Z, response R: throughput ~= N / (Z + R).
    Harness h;
    const std::size_t n = 50;
    const double think = 0.5;
    ClosedLoopDriver driver(h.sim, h.server, n, think, h.params,
                            Rng(2), 1e9);
    driver.start();
    h.sim.run(100.0);
    const double issued_rate =
        static_cast<double>(driver.issued()) / 100.0;
    // Lightly loaded: R ~= service (tens of ms) + network floor is
    // excluded here (collector-level), so R ~ 0.05-0.2 s.
    const double bound_hi = static_cast<double>(n) / think;
    const double bound_lo = static_cast<double>(n) / (think + 0.4);
    EXPECT_LT(issued_rate, bound_hi);
    EXPECT_GT(issued_rate, bound_lo);
}

TEST(ClosedDriverTest, EveryUserKeepsCycling)
{
    Harness h;
    ClosedLoopDriver driver(h.sim, h.server, 5, 0.2, h.params, Rng(3),
                            1e9);
    driver.start();
    h.sim.run(50.0);
    // 5 users, ~0.2s think + small response: >= 100 requests each.
    EXPECT_GT(driver.issued(), 5u * 100u);
    // All users are either thinking or waiting — none leaked.
    EXPECT_LE(driver.usersWaiting(), 5u);
}

TEST(ClosedDriverTest, UsersSurviveRejections)
{
    // Tiny queues force rejections; rejected users must re-enter the
    // think cycle rather than vanish.
    Simulator sim;
    WorkloadParams params = WorkloadParams::defaults();
    PsCpu cpu(sim, 16, 0.0, 0.0);
    Database db(sim, 48, 0.0);
    ThreadPool mfg(sim, "mfg", 1, 1);
    ThreadPool web(sim, "web", 1, 1);
    ThreadPool def(sim, "default", 1, 1);
    Collector collector(0.0, 1e9, params);
    AppServer server(sim, cpu, db, mfg, web, def, params, collector,
                     Rng(6));
    ClosedLoopDriver driver(sim, server, 30, 0.05, params, Rng(4),
                            1e9);
    driver.start();
    sim.run(30.0);
    EXPECT_GT(server.primaryRejects(), 0u);
    // The population keeps issuing despite rejections.
    EXPECT_GT(driver.issued(), 1000u);
}

TEST(ClosedDriverTest, ClosedLoopSelfThrottles)
{
    // Same middle tier, open vs closed: under an undersized web pool
    // the open driver piles up queueing (high RT and drops) while the
    // closed driver backs off — its dealer response time stays lower.
    ThreeTierConfig open_cfg;
    open_cfg.loadModel = LoadModel::Open;
    open_cfg.injectionRate = 560;
    open_cfg.webQueue = 14;
    open_cfg.warmup = 10;
    open_cfg.measure = 40;
    open_cfg.seed = 7;

    ThreeTierConfig closed_cfg = open_cfg;
    closed_cfg.loadModel = LoadModel::Closed;
    closed_cfg.population = 280; // ~ 560/s at 0.5 s think
    closed_cfg.thinkTime = 0.5;

    const PerfSample open_sample = simulateThreeTier(open_cfg);
    const PerfSample closed_sample = simulateThreeTier(closed_cfg);
    EXPECT_LT(closed_sample.dealerBrowseRt,
              open_sample.dealerBrowseRt);
}

TEST(ClosedDriverTest, FacadeClosedModeIsDeterministic)
{
    ThreeTierConfig cfg;
    cfg.loadModel = LoadModel::Closed;
    cfg.population = 100;
    cfg.thinkTime = 0.3;
    cfg.warmup = 5;
    cfg.measure = 20;
    cfg.seed = 11;
    const PerfSample a = simulateThreeTier(cfg);
    const PerfSample b = simulateThreeTier(cfg);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.dealerPurchaseRt, b.dealerPurchaseRt);
}
