/**
 * @file
 * Unit tests for steady-state measurement reduction.
 */

#include <gtest/gtest.h>

#include "sim/collector.hh"

using wcnn::sim::Collector;
using wcnn::sim::PerfSample;
using wcnn::sim::TxnClass;
using wcnn::sim::WorkloadParams;

namespace {

WorkloadParams
paramsWithZeroLatency()
{
    WorkloadParams p = WorkloadParams::defaults();
    p.networkLatency = 0.0;
    return p;
}

} // namespace

TEST(CollectorTest, WarmupCompletionsDiscarded)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(10.0, 100.0, p);
    c.recordCompletion(TxnClass::Manufacturing, 1.0, 5.0); // warm-up
    c.recordCompletion(TxnClass::Manufacturing, 9.0, 11.0);
    EXPECT_EQ(c.completions(TxnClass::Manufacturing), 1u);
}

TEST(CollectorTest, CompletionsAfterWindowDiscarded)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(10.0, 100.0, p);
    c.recordCompletion(TxnClass::DealerBrowse, 99.0, 101.0);
    EXPECT_EQ(c.completions(TxnClass::DealerBrowse), 0u);
}

TEST(CollectorTest, ResponseTimeIncludesNetworkLatency)
{
    WorkloadParams p = paramsWithZeroLatency();
    p.networkLatency = 0.25;
    Collector c(0.0, 100.0, p);
    c.recordCompletion(TxnClass::DealerPurchase, 10.0, 11.0);
    EXPECT_NEAR(c.responseTime(TxnClass::DealerPurchase).mean(), 1.25,
                1e-12);
}

TEST(CollectorTest, MeansPerClass)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(0.0, 100.0, p);
    c.recordCompletion(TxnClass::Manufacturing, 0.0, 1.0);
    c.recordCompletion(TxnClass::Manufacturing, 10.0, 13.0);
    c.recordCompletion(TxnClass::DealerBrowse, 20.0, 20.5);
    const PerfSample s = c.summarize();
    EXPECT_NEAR(s.manufacturingRt, 2.0, 1e-12);
    EXPECT_NEAR(s.dealerBrowseRt, 0.5, 1e-12);
}

TEST(CollectorTest, ThroughputCountsOnlyWithinLimit)
{
    WorkloadParams p = paramsWithZeroLatency();
    for (auto &profile : p.profiles)
        profile.rtLimit = 1.0;
    Collector c(0.0, 10.0, p); // 10 s window
    c.recordCompletion(TxnClass::DealerBrowse, 0.0, 0.5);  // within
    c.recordCompletion(TxnClass::DealerBrowse, 1.0, 3.0);  // violating
    c.recordCompletion(TxnClass::Manufacturing, 2.0, 2.9); // within
    const PerfSample s = c.summarize();
    EXPECT_NEAR(s.throughput, 2.0 / 10.0, 1e-12);
}

TEST(CollectorTest, EmptyClassReportsSaturationSentinel)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(0.0, 100.0, p);
    const PerfSample s = c.summarize();
    EXPECT_NEAR(s.manufacturingRt,
                4.0 * p.profile(TxnClass::Manufacturing).rtLimit,
                1e-12);
    EXPECT_DOUBLE_EQ(s.throughput, 0.0);
}

TEST(CollectorTest, DropsTrackedPerClass)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(10.0, 100.0, p);
    c.recordDrop(TxnClass::DealerPurchase, 5.0); // warm-up, ignored
    c.recordDrop(TxnClass::DealerPurchase, 50.0);
    c.recordDrop(TxnClass::DealerPurchase, 60.0);
    EXPECT_EQ(c.drops(TxnClass::DealerPurchase), 2u);
    EXPECT_EQ(c.drops(TxnClass::DealerBrowse), 0u);
}

TEST(PerfSampleTest, VectorOrderMatchesIndicatorNames)
{
    PerfSample s;
    s.manufacturingRt = 1;
    s.dealerPurchaseRt = 2;
    s.dealerManageRt = 3;
    s.dealerBrowseRt = 4;
    s.throughput = 5;
    const auto v = s.toVector();
    const auto names = PerfSample::indicatorNames();
    ASSERT_EQ(v.size(), 5u);
    ASSERT_EQ(names.size(), 5u);
    EXPECT_DOUBLE_EQ(v[0], 1);
    EXPECT_EQ(names[0], "manufacturing_rt");
    EXPECT_DOUBLE_EQ(v[4], 5);
    EXPECT_EQ(names[4], "throughput");
}

TEST(CollectorTest, TailResponseTimeTracksP90)
{
    const WorkloadParams p = paramsWithZeroLatency();
    Collector c(0.0, 1000.0, p);
    // 100 completions with response times 0.01..1.00.
    for (int i = 1; i <= 100; ++i) {
        c.recordCompletion(TxnClass::DealerBrowse, 0.0,
                           0.01 * static_cast<double>(i));
    }
    EXPECT_NEAR(c.tailResponseTime(TxnClass::DealerBrowse), 0.90,
                0.05);
    EXPECT_DOUBLE_EQ(c.tailResponseTime(TxnClass::Manufacturing),
                     0.0);
}
