/**
 * @file
 * Compiled with -DWCNN_NO_CONTRACTS (see tests/CMakeLists.txt): every
 * contract macro must become an unevaluated no-op — the condition and
 * message expressions are type-checked but never executed, so disabled
 * contracts can never fire, slow down, or side-effect a release build.
 *
 * Only this translation unit is built without contracts; the linked
 * libraries keep theirs, so only macros expanded here are exercised.
 */

#ifndef WCNN_NO_CONTRACTS
#error "this test must be compiled with -DWCNN_NO_CONTRACTS"
#endif

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/contracts.hh"

namespace {

TEST(NoContracts, FailingConditionsAreIgnored)
{
    WCNN_REQUIRE(false, "never evaluated, never thrown");
    WCNN_ENSURE(false);
    WCNN_CHECK_INDEX(std::size_t{7}, std::size_t{3});
    const double nan = std::numeric_limits<double>::quiet_NaN();
    WCNN_CHECK_FINITE(nan);
    WCNN_CHECK_FINITE(std::numeric_limits<double>::infinity());
    const std::vector<double> bad{1.0, nan};
    WCNN_CHECK_FINITE(bad);
    SUCCEED();
}

TEST(NoContracts, ConditionsAreNotEvaluated)
{
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return false;
    };
    WCNN_REQUIRE(probe());
    WCNN_ENSURE(probe(), "message ", evaluations);
    EXPECT_EQ(evaluations, 0);
}

} // namespace
