/**
 * @file
 * Behavior of the WCNN_* contract macros in checked builds: violations
 * throw wcnn::ContractViolation carrying the macro name, the failing
 * expression, file:line, and the formatted message. The companion
 * contracts_nocontracts_test.cc compiles the same macros under
 * WCNN_NO_CONTRACTS and checks they become unevaluated no-ops.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/contracts.hh"

// This suite asserts that violations THROW, so it is meaningless when
// the whole tree is built with contracts compiled out (the no-contracts
// preset). contracts_nocontracts_test.cc covers that configuration.
#ifndef WCNN_NO_CONTRACTS
#include "nn/mlp.hh"
#include "nn/trainer.hh"
#include "numeric/matrix.hh"
#include "numeric/rng.hh"

namespace {

using wcnn::ContractViolation;

TEST(Contracts, RequirePassesSilently)
{
    EXPECT_NO_THROW(WCNN_REQUIRE(1 + 1 == 2));
    EXPECT_NO_THROW(WCNN_REQUIRE(true, "message is not evaluated"));
}

TEST(Contracts, RequireThrowsWithExpressionFileLineAndMessage)
{
    const int answer = 41;
    try {
        WCNN_REQUIRE(answer == 42, "answer was ", answer);
        FAIL() << "WCNN_REQUIRE did not throw";
    } catch (const ContractViolation &e) {
        EXPECT_EQ(e.kind(), "WCNN_REQUIRE");
        EXPECT_EQ(e.expression(), "answer == 42");
        EXPECT_NE(e.file().find("contracts_test.cc"), std::string::npos);
        EXPECT_GT(e.line(), 0);

        const std::string what = e.what();
        EXPECT_NE(what.find("WCNN_REQUIRE failed"), std::string::npos);
        EXPECT_NE(what.find("answer == 42"), std::string::npos);
        EXPECT_NE(what.find("contracts_test.cc"), std::string::npos);
        EXPECT_NE(what.find(":" + std::to_string(e.line())),
                  std::string::npos);
        EXPECT_NE(what.find("answer was 41"), std::string::npos);
    }
}

TEST(Contracts, EnsureThrowsWithKind)
{
    try {
        WCNN_ENSURE(false, "invariant broke");
        FAIL() << "WCNN_ENSURE did not throw";
    } catch (const ContractViolation &e) {
        EXPECT_EQ(e.kind(), "WCNN_ENSURE");
        EXPECT_NE(std::string(e.what()).find("invariant broke"),
                  std::string::npos);
    }
}

TEST(Contracts, CheckIndexReportsIndexAndBound)
{
    const std::size_t i = 7;
    const std::size_t n = 3;
    EXPECT_NO_THROW(WCNN_CHECK_INDEX(std::size_t{2}, n));
    try {
        WCNN_CHECK_INDEX(i, n);
        FAIL() << "WCNN_CHECK_INDEX did not throw";
    } catch (const ContractViolation &e) {
        EXPECT_EQ(e.kind(), "WCNN_CHECK_INDEX");
        const std::string what = e.what();
        EXPECT_NE(what.find("index 7"), std::string::npos);
        EXPECT_NE(what.find("[0, 3)"), std::string::npos);
    }
}

TEST(Contracts, CheckFiniteScalar)
{
    EXPECT_NO_THROW(WCNN_CHECK_FINITE(0.0));
    EXPECT_NO_THROW(WCNN_CHECK_FINITE(-1e308));
    EXPECT_THROW(
        WCNN_CHECK_FINITE(std::numeric_limits<double>::quiet_NaN()),
        ContractViolation);
    EXPECT_THROW(WCNN_CHECK_FINITE(std::numeric_limits<double>::infinity()),
                 ContractViolation);
}

TEST(Contracts, CheckFiniteContainerReportsOffendingIndex)
{
    std::vector<double> v{1.0, 2.0,
                          std::numeric_limits<double>::quiet_NaN(), 4.0};
    try {
        WCNN_CHECK_FINITE(v, "vector check");
        FAIL() << "WCNN_CHECK_FINITE did not throw";
    } catch (const ContractViolation &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("at index 2"), std::string::npos);
        EXPECT_NE(what.find("vector check"), std::string::npos);
    }
    v[2] = 3.0;
    EXPECT_NO_THROW(WCNN_CHECK_FINITE(v));
}

TEST(Contracts, UnreachableThrows)
{
    EXPECT_THROW(WCNN_UNREACHABLE("should never run"), ContractViolation);
}

TEST(Contracts, MatrixIndexingIsContractChecked)
{
    wcnn::numeric::Matrix m(2, 3);
    EXPECT_NO_THROW(m(1, 2));
    EXPECT_THROW(m(2, 0), ContractViolation);
    EXPECT_THROW(m(0, 3), ContractViolation);
}

TEST(Contracts, MatrixShapeMismatchIsContractChecked)
{
    wcnn::numeric::Matrix a(2, 3);
    wcnn::numeric::Matrix b(2, 3);
    EXPECT_THROW(a * b, ContractViolation); // 3 != 2: inner dim mismatch
    EXPECT_NO_THROW(a + b);
}

/**
 * The checked-build safety net the whole PR exists for: a wildly
 * diverging learning rate drives the epoch loss to NaN/Inf, and the
 * WCNN_CHECK_FINITE guard inside Trainer::train reports it instead of
 * silently poisoning every downstream figure.
 */
// Divergence is no longer a contract trip: train() throws the typed,
// resumable wcnn::TrainDivergence instead (active even when contracts
// are compiled out; see chaos_recovery_test for the recovery paths).
TEST(Contracts, TrainerDivergenceThrowsTypedResumableError)
{
    wcnn::numeric::Rng rng(1234);
    wcnn::nn::Mlp net(
        2,
        {{8, wcnn::nn::Activation::logistic(1.0)},
         {1, wcnn::nn::Activation::identity()}},
        wcnn::nn::InitRule::Xavier, rng);

    // A tiny regression problem; contents hardly matter at lr = 1e9.
    wcnn::numeric::Matrix x(8, 2);
    wcnn::numeric::Matrix y(8, 1);
    for (std::size_t i = 0; i < 8; ++i) {
        x(i, 0) = rng.uniform(-1.0, 1.0);
        x(i, 1) = rng.uniform(-1.0, 1.0);
        y(i, 0) = 100.0 * x(i, 0);
    }

    wcnn::nn::TrainOptions opts;
    opts.learningRate = 1e9; // deliberately divergent
    opts.momentum = 0.0;
    opts.maxEpochs = 50;
    opts.targetLoss = 0.0;
    wcnn::nn::Trainer trainer(opts);

    try {
        trainer.train(net, x, y, rng);
        FAIL() << "divergent training did not throw TrainDivergence";
    } catch (const wcnn::nn::TrainDivergence &e) {
        EXPECT_EQ(e.kind(), "train");
        EXPECT_NE(std::string(e.what()).find("diverged"),
                  std::string::npos);
        EXPECT_FALSE(std::isfinite(e.loss()));
        // The carried weights predate the divergence, so they are
        // finite and usable for resumption.
        const wcnn::numeric::Vector probe{0.1, -0.2};
        for (double v : e.lastGood().forward(probe))
            EXPECT_TRUE(std::isfinite(v));
        EXPECT_EQ(e.partialResult().epochs, e.epoch());
    }
}

} // namespace

#endif // WCNN_NO_CONTRACTS
