/**
 * @file
 * Unit tests for the processor-sharing CPU with overheads and GC
 * pauses.
 */

#include <gtest/gtest.h>

#include "sim/cpu.hh"

using wcnn::sim::PsCpu;
using wcnn::sim::Simulator;

TEST(PsCpuTest, SingleJobRunsAtFullSpeed)
{
    Simulator sim;
    PsCpu cpu(sim, 4, 0.0, 0.0);
    double done_at = -1;
    cpu.execute(2.0, [&] { done_at = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(PsCpuTest, JobsBelowCoreCountDoNotShare)
{
    Simulator sim;
    PsCpu cpu(sim, 4, 0.0, 0.0);
    double a = -1, b = -1;
    cpu.execute(1.0, [&] { a = sim.now(); });
    cpu.execute(2.0, [&] { b = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(a, 1.0, 1e-9);
    EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(PsCpuTest, OversubscriptionSharesEqually)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double a = -1, b = -1;
    cpu.execute(1.0, [&] { a = sim.now(); });
    cpu.execute(1.0, [&] { b = sim.now(); });
    sim.run(10.0);
    // Two equal jobs on one core, equal shares: both finish at t=2.
    EXPECT_NEAR(a, 2.0, 1e-9);
    EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(PsCpuTest, UnequalJobsShareThenDrain)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double small = -1, big = -1;
    cpu.execute(1.0, [&] { small = sim.now(); });
    cpu.execute(3.0, [&] { big = sim.now(); });
    sim.run(20.0);
    // Shared until the small job finishes at t=2 (each got 1.0 of
    // work); the big one then runs alone for its remaining 2.0.
    EXPECT_NEAR(small, 2.0, 1e-9);
    EXPECT_NEAR(big, 4.0, 1e-9);
}

TEST(PsCpuTest, LateArrivalSlowsInFlightJob)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double first = -1;
    cpu.execute(2.0, [&] { first = sim.now(); });
    sim.schedule(1.0, [&] { cpu.execute(5.0, [] {}); });
    sim.run(50.0);
    // One unit done alone by t=1; remaining 1.0 at half speed -> t=3.
    EXPECT_NEAR(first, 3.0, 1e-9);
}

TEST(PsCpuTest, ConfiguredThreadTaxSlowsEverything)
{
    Simulator sim;
    PsCpu cpu(sim, 4, 0.01, 0.0);
    cpu.setConfiguredThreads(50); // 50% tax
    double done_at = -1;
    cpu.execute(1.0, [&] { done_at = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(PsCpuTest, ContextSwitchOverheadAboveCores)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.5);
    double a = -1;
    cpu.execute(1.0, [&] { a = sim.now(); });
    cpu.execute(1.0, [] {});
    sim.run(50.0);
    // Two jobs on one core: share 0.5, efficiency 1/(1+0.5*1) = 2/3 ->
    // rate 1/3 each. Both finish at t = 3.
    EXPECT_NEAR(a, 3.0, 1e-9);
}

TEST(PsCpuTest, PauseFreezesProgress)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double done_at = -1;
    cpu.execute(2.0, [&] { done_at = sim.now(); });
    sim.schedule(1.0, [&] { cpu.pause(0.5); });
    sim.run(10.0);
    EXPECT_NEAR(done_at, 2.5, 1e-9);
    EXPECT_NEAR(cpu.pausedTime(), 0.5, 1e-12);
}

TEST(PsCpuTest, OverlappingPausesExtend)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double done_at = -1;
    cpu.execute(1.0, [&] { done_at = sim.now(); });
    sim.schedule(0.25, [&] { cpu.pause(1.0); });
    sim.schedule(0.75, [&] { cpu.pause(1.0); }); // extends to 1.75
    sim.run(10.0);
    // 0.25 work before the pause, frozen until 1.75, 0.75 more work.
    EXPECT_NEAR(done_at, 2.5, 1e-9);
    EXPECT_NEAR(cpu.pausedTime(), 1.5, 1e-12);
}

TEST(PsCpuTest, ExecuteDuringPauseWaitsForResume)
{
    Simulator sim;
    PsCpu cpu(sim, 2, 0.0, 0.0);
    double done_at = -1;
    sim.schedule(1.0, [&] { cpu.pause(2.0); });
    sim.schedule(2.0, [&] {
        cpu.execute(0.5, [&] { done_at = sim.now(); });
    });
    sim.run(10.0);
    // Submitted at t=2 during a pause ending at t=3.
    EXPECT_NEAR(done_at, 3.5, 1e-9);
}

TEST(PsCpuTest, AccountingCounters)
{
    Simulator sim;
    PsCpu cpu(sim, 2, 0.0, 0.0);
    EXPECT_EQ(cpu.cores(), 2u);
    cpu.execute(1.0, [] {});
    cpu.execute(2.0, [] {});
    EXPECT_EQ(cpu.activeJobs(), 2u);
    EXPECT_DOUBLE_EQ(cpu.demandAccepted(), 3.0);
    sim.run(10.0);
    EXPECT_EQ(cpu.activeJobs(), 0u);
}

TEST(PsCpuTest, CompletionCallbackCanResubmit)
{
    Simulator sim;
    PsCpu cpu(sim, 1, 0.0, 0.0);
    double second_done = -1;
    cpu.execute(1.0, [&] {
        cpu.execute(1.0, [&] { second_done = sim.now(); });
    });
    sim.run(10.0);
    EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(PsCpuTest, CurrentRateReflectsLoad)
{
    Simulator sim;
    PsCpu cpu(sim, 2, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(cpu.currentRate(), 0.0);
    cpu.execute(10.0, [] {});
    EXPECT_DOUBLE_EQ(cpu.currentRate(), 1.0);
    cpu.execute(10.0, [] {});
    cpu.execute(10.0, [] {});
    cpu.execute(10.0, [] {});
    EXPECT_DOUBLE_EQ(cpu.currentRate(), 0.5);
}
