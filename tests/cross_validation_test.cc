/**
 * @file
 * Tests for k-fold cross validation and the Table 2 renderer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include <algorithm>
#include <cmath>

#include "core/contracts.hh"
#include "model/cross_validation.hh"
#include "model/linear_model.hh"
#include "model/nn_model.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::CvOptions;
using wcnn::model::CvResult;
using wcnn::model::crossValidate;
using wcnn::model::LinearModel;
using wcnn::numeric::Rng;

namespace {

Dataset
noisyLinearDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds({"a", "b"}, {"y1", "y2"});
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(1, 10);
        const double b = rng.uniform(1, 10);
        ds.add({a, b}, {2 * a + b + rng.normal(0, 0.05),
                        10 * a - b + rng.normal(0, 0.05)});
    }
    return ds;
}

wcnn::model::ModelFactory
linearFactory()
{
    return [] { return std::make_unique<LinearModel>(); };
}

} // namespace

TEST(CrossValidationTest, RunsKTrials)
{
    const Dataset ds = noisyLinearDataset(25, 1);
    CvOptions opts;
    opts.folds = 5;
    const CvResult result = crossValidate(linearFactory(), ds, opts);
    EXPECT_EQ(result.trials.size(), 5u);
    EXPECT_EQ(result.indicatorNames, ds.outputs());
    for (std::size_t f = 0; f < 5; ++f)
        EXPECT_EQ(result.trials[f].fold, f);
}

TEST(CrossValidationTest, TrialSplitsHaveExpectedSizes)
{
    const Dataset ds = noisyLinearDataset(23, 2);
    CvOptions opts;
    opts.folds = 5;
    const CvResult result = crossValidate(linearFactory(), ds, opts);
    std::size_t total_validation = 0;
    for (const auto &trial : result.trials) {
        EXPECT_EQ(trial.trainSet.size() + trial.validationSet.size(),
                  23u);
        total_validation += trial.validationSet.size();
    }
    EXPECT_EQ(total_validation, 23u);
}

TEST(CrossValidationTest, AccurateModelScoresLowError)
{
    const Dataset ds = noisyLinearDataset(40, 3);
    const CvResult result = crossValidate(linearFactory(), ds, {});
    // Linear data + linear model: errors well under 5%.
    for (double e : result.averageValidationError())
        EXPECT_LT(e, 0.05);
    EXPECT_GT(result.overallAccuracy(), 0.95);
    EXPECT_LT(result.overallValidationError(), 0.05);
}

TEST(CrossValidationTest, PredictionsRetainedWhenRequested)
{
    const Dataset ds = noisyLinearDataset(20, 4);
    CvOptions opts;
    opts.keepPredictions = true;
    const CvResult result = crossValidate(linearFactory(), ds, opts);
    const auto &trial = result.trials[0];
    EXPECT_EQ(trial.validationPredicted.rows(),
              trial.validationSet.size());
    EXPECT_EQ(trial.trainPredicted.rows(), trial.trainSet.size());
    EXPECT_EQ(trial.validationPredicted.cols(), 2u);
}

TEST(CrossValidationTest, PredictionsDroppedWhenNotRequested)
{
    const Dataset ds = noisyLinearDataset(20, 5);
    CvOptions opts;
    opts.keepPredictions = false;
    const CvResult result = crossValidate(linearFactory(), ds, opts);
    EXPECT_TRUE(result.trials[0].validationSet.empty());
    EXPECT_TRUE(result.trials[0].validationPredicted.empty());
    // Error reports are still present.
    EXPECT_EQ(result.trials[0].validation.harmonicError.size(), 2u);
}

TEST(CrossValidationTest, DeterministicGivenSeed)
{
    const Dataset ds = noisyLinearDataset(20, 6);
    CvOptions opts;
    opts.seed = 77;
    const CvResult a = crossValidate(linearFactory(), ds, opts);
    const CvResult b = crossValidate(linearFactory(), ds, opts);
    for (std::size_t f = 0; f < a.trials.size(); ++f) {
        EXPECT_EQ(a.trials[f].validation.harmonicError,
                  b.trials[f].validation.harmonicError);
    }
}

TEST(CrossValidationTest, AverageIsMeanOfTrials)
{
    const Dataset ds = noisyLinearDataset(25, 7);
    const CvResult result = crossValidate(linearFactory(), ds, {});
    const auto avg = result.averageValidationError();
    ASSERT_EQ(avg.size(), 2u);
    double manual = 0.0;
    for (const auto &trial : result.trials)
        manual += trial.validation.harmonicError[0];
    manual /= static_cast<double>(result.trials.size());
    EXPECT_NEAR(avg[0], manual, 1e-15);
}

TEST(FormatTableTest, ContainsTrialsAndAverage)
{
    const Dataset ds = noisyLinearDataset(25, 8);
    const CvResult result = crossValidate(linearFactory(), ds, {});
    const std::string table = wcnn::model::formatTable(result);
    EXPECT_NE(table.find("Trial"), std::string::npos);
    EXPECT_NE(table.find("Average"), std::string::npos);
    EXPECT_NE(table.find("y1"), std::string::npos);
    EXPECT_NE(table.find("%"), std::string::npos);
    // One line per trial + header + average.
    const auto lines =
        std::count(table.begin(), table.end(), '\n');
    EXPECT_EQ(lines, 1 + 5 + 1);
}

TEST(FormatTableTest, NonPercentMode)
{
    const Dataset ds = noisyLinearDataset(25, 9);
    const CvResult result = crossValidate(linearFactory(), ds, {});
    const std::string table =
        wcnn::model::formatTable(result, false);
    EXPECT_EQ(table.find("%"), std::string::npos);
}

TEST(CrossValidationTest, FoldSmallerThanBatchSizeStillTrains)
{
    // 12 samples over 5 folds leaves trials with 9-10 training rows; a
    // configured batch of 64 must clamp to the fold size, not trip a
    // contract or silently skip the epoch.
    const Dataset ds = noisyLinearDataset(12, 10);
    wcnn::model::NnModelOptions nn;
    nn.hiddenUnits = {3};
    nn.train.maxEpochs = 40;
    nn.train.batchSize = 64; // far larger than any fold
    nn.seed = 9;
    CvOptions opts;
    opts.folds = 5;
    opts.keepPredictions = false;
    const CvResult result = crossValidate(
        [&nn] { return std::make_unique<wcnn::model::NnModel>(nn); },
        ds, opts);
    EXPECT_EQ(result.trials.size(), 5u);
    for (double e : result.averageValidationError())
        EXPECT_TRUE(std::isfinite(e));
}

TEST(CrossValidationTest, DatasetSmallerThanFoldCountIsAContractError)
{
#ifndef WCNN_NO_CONTRACTS
    const Dataset ds = noisyLinearDataset(3, 11);
    CvOptions opts;
    opts.folds = 5;
    EXPECT_THROW(crossValidate(linearFactory(), ds, opts),
                 wcnn::ContractViolation);
#endif
}
