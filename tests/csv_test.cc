/**
 * @file
 * Unit tests for CSV dataset persistence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/csv.hh"

using wcnn::data::CsvError;
using wcnn::data::Dataset;

namespace {

Dataset
sampleDataset()
{
    Dataset ds({"rate", "threads"}, {"rt", "tput"});
    ds.add({560.0, 16.0}, {1.25, 480.5});
    ds.add({500.0, 12.0}, {0.875, 450.25});
    // Values exercising full double round-trip precision.
    ds.add({1.0 / 3.0, 2.0 / 7.0}, {1e-17, 123456789.123456789});
    return ds;
}

} // namespace

TEST(CsvTest, HeaderEncodesColumnRoles)
{
    std::ostringstream os;
    wcnn::data::writeCsv(sampleDataset(), os);
    const std::string text = os.str();
    EXPECT_EQ(text.substr(0, text.find('\n')),
              "x:rate,x:threads,y:rt,y:tput");
}

TEST(CsvTest, RoundTripIsExact)
{
    const Dataset original = sampleDataset();
    std::stringstream ss;
    wcnn::data::writeCsv(original, ss);
    const Dataset loaded = wcnn::data::readCsv(ss);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.inputs(), original.inputs());
    EXPECT_EQ(loaded.outputs(), original.outputs());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].x, original[i].x);
        EXPECT_EQ(loaded[i].y, original[i].y);
    }
}

TEST(CsvTest, EmptyDatasetRoundTrips)
{
    Dataset ds({"a"}, {"b"});
    std::stringstream ss;
    wcnn::data::writeCsv(ds, ss);
    const Dataset loaded = wcnn::data::readCsv(ss);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.inputs(), ds.inputs());
}

TEST(CsvTest, MissingHeaderThrows)
{
    std::stringstream ss("");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, UnprefixedHeaderThrows)
{
    std::stringstream ss("rate,y:rt\n1,2\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, InputAfterOutputThrows)
{
    std::stringstream ss("y:rt,x:rate\n1,2\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, WrongFieldCountThrows)
{
    std::stringstream ss("x:a,y:b\n1,2\n1\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, BadNumberThrows)
{
    std::stringstream ss("x:a,y:b\n1,potato\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, TrailingJunkInNumberThrows)
{
    std::stringstream ss("x:a,y:b\n1,2zzz\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, BlankLinesAreSkipped)
{
    std::stringstream ss("x:a,y:b\n1,2\n\n3,4\n");
    const Dataset ds = wcnn::data::readCsv(ss);
    EXPECT_EQ(ds.size(), 2u);
}

TEST(CsvTest, FileSaveAndLoad)
{
    const std::string path =
        ::testing::TempDir() + "/wcnn_csv_test.csv";
    const Dataset original = sampleDataset();
    wcnn::data::saveCsv(original, path);
    const Dataset loaded = wcnn::data::loadCsv(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded[i].x, original[i].x);
    std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows)
{
    EXPECT_THROW(wcnn::data::loadCsv("/nonexistent/path/file.csv"),
                 CsvError);
}

TEST(CsvTest, CrlfLineEndingsParseLikeLf)
{
    // Files written on Windows (or piped through tools that emit
    // CRLF) must parse identically, trailing '\r' stripped from the
    // header and every data row.
    std::stringstream ss("x:a,y:b\r\n1,2\r\n3,4\r\n");
    const Dataset ds = wcnn::data::readCsv(ss);
    ASSERT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds.outputs(), (std::vector<std::string>{"b"}));
    EXPECT_EQ(ds[1].x, (wcnn::numeric::Vector{3.0}));
    EXPECT_EQ(ds[1].y, (wcnn::numeric::Vector{4.0}));
}

TEST(CsvTest, Utf8BomOnHeaderIsStripped)
{
    std::stringstream ss("\xef\xbb\xbfx:a,y:b\n1,2\n");
    const Dataset ds = wcnn::data::readCsv(ss);
    ASSERT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds.inputs(), (std::vector<std::string>{"a"}));
}

TEST(CsvTest, BomAndCrlfTogether)
{
    std::stringstream ss("\xef\xbb\xbfx:a,y:b\r\n1,2\r\n");
    const Dataset ds = wcnn::data::readCsv(ss);
    ASSERT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds[0].y, (wcnn::numeric::Vector{2.0}));
}

TEST(CsvTest, RaggedRowErrorNamesTheRowAndCounts)
{
    std::stringstream ss("x:a,x:b,y:c\n1,2,3\n4,5\n");
    try {
        (void)wcnn::data::readCsv(ss);
        FAIL() << "ragged row accepted";
    } catch (const CsvError &e) {
        EXPECT_EQ(e.kind(), "io.csv");
        const std::string what = e.what();
        EXPECT_NE(what.find("row 3"), std::string::npos);
        EXPECT_NE(what.find("2 fields"), std::string::npos);
        EXPECT_NE(what.find("expected 3"), std::string::npos);
    }
}

TEST(CsvTest, NonNumericCellErrorNamesTheCell)
{
    std::stringstream ss("x:a,y:b\n1,2\n1,twelve\n");
    try {
        (void)wcnn::data::readCsv(ss);
        FAIL() << "non-numeric cell accepted";
    } catch (const CsvError &e) {
        EXPECT_NE(std::string(e.what()).find("'twelve'"),
                  std::string::npos);
    }
}

TEST(CsvTest, HeaderWithoutBothSidesThrows)
{
    std::stringstream only_x("x:a\n1\n");
    EXPECT_THROW(wcnn::data::readCsv(only_x), CsvError);
    std::stringstream only_y("y:a\n1\n");
    EXPECT_THROW(wcnn::data::readCsv(only_y), CsvError);
}

TEST(CsvTest, EmptyColumnNameThrows)
{
    std::stringstream ss("x:,y:b\n1,2\n");
    EXPECT_THROW(wcnn::data::readCsv(ss), CsvError);
}

TEST(CsvTest, CsvErrorIsAnIoError)
{
    // The taxonomy: CsvError -> IoError -> wcnn::Error, so callers can
    // handle persistence failures at any granularity.
    std::stringstream ss("");
    try {
        (void)wcnn::data::readCsv(ss);
        FAIL() << "empty stream accepted";
    } catch (const wcnn::IoError &e) {
        EXPECT_EQ(e.kind(), "io.csv");
    }
}
