/**
 * @file
 * Unit tests for the backend database model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/database.hh"

using wcnn::sim::Database;
using wcnn::sim::DbDomain;
using wcnn::sim::Simulator;

TEST(DatabaseTest, SingleQueryTakesItsDemand)
{
    Simulator sim;
    Database db(sim, 4, 0.1);
    double done_at = -1;
    db.query(DbDomain::Dealer, 0.5, [&] { done_at = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(done_at, 0.5, 1e-12);
    EXPECT_EQ(db.completed(), 1u);
}

TEST(DatabaseTest, SameDomainLockContentionInflatesService)
{
    Simulator sim;
    Database db(sim, 8, 0.5);
    double second_done = -1;
    db.query(DbDomain::Dealer, 1.0, [] {});
    // Entering with 1 dealer query in flight: service * (1 + 0.5).
    db.query(DbDomain::Dealer, 1.0, [&] { second_done = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(second_done, 1.5, 1e-12);
}

TEST(DatabaseTest, CrossDomainQueriesDoNotContend)
{
    Simulator sim;
    Database db(sim, 8, 0.5);
    double second_done = -1;
    db.query(DbDomain::Manufacturing, 1.0, [] {});
    db.query(DbDomain::Dealer, 1.0, [&] { second_done = sim.now(); });
    sim.run(10.0);
    EXPECT_NEAR(second_done, 1.0, 1e-12);
}

TEST(DatabaseTest, ConnectionPoolQueues)
{
    Simulator sim;
    Database db(sim, 2, 0.0);
    std::vector<double> done;
    for (int i = 0; i < 3; ++i) {
        db.query(DbDomain::Dealer, 1.0,
                 [&] { done.push_back(sim.now()); });
    }
    EXPECT_EQ(db.inService(), 2u);
    EXPECT_EQ(db.waiting(), 1u);
    sim.run(10.0);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_NEAR(done[0], 1.0, 1e-12);
    EXPECT_NEAR(done[1], 1.0, 1e-12);
    // Third query starts when a connection frees at t=1.
    EXPECT_NEAR(done[2], 2.0, 1e-12);
}

TEST(DatabaseTest, BacklogIsFifo)
{
    Simulator sim;
    Database db(sim, 1, 0.0);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        db.query(DbDomain::Dealer, 1.0,
                 [&order, i] { order.push_back(i); });
    }
    sim.run(10.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DatabaseTest, PerDomainInServiceCounters)
{
    Simulator sim;
    Database db(sim, 8, 0.0);
    db.query(DbDomain::Manufacturing, 1.0, [] {});
    db.query(DbDomain::Dealer, 1.0, [] {});
    db.query(DbDomain::Dealer, 1.0, [] {});
    EXPECT_EQ(db.inService(), 3u);
    EXPECT_EQ(db.inService(DbDomain::Manufacturing), 1u);
    EXPECT_EQ(db.inService(DbDomain::Dealer), 2u);
    sim.run(10.0);
    EXPECT_EQ(db.inService(), 0u);
    EXPECT_EQ(db.completed(), 3u);
}

TEST(DatabaseTest, ContentionCountsOnlyCurrentInService)
{
    // A query arriving after others have completed sees no inflation.
    Simulator sim;
    Database db(sim, 4, 1.0);
    db.query(DbDomain::Dealer, 0.5, [] {});
    double done_at = -1;
    sim.schedule(1.0, [&] {
        db.query(DbDomain::Dealer, 1.0,
                 [&] { done_at = sim.now(); });
    });
    sim.run(10.0);
    EXPECT_NEAR(done_at, 2.0, 1e-12);
}
