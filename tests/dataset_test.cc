/**
 * @file
 * Unit tests for data::Dataset.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::numeric::Vector;

namespace {

Dataset
makeDataset(std::size_t n)
{
    Dataset ds({"a", "b"}, {"y"});
    for (std::size_t i = 0; i < n; ++i) {
        const double v = static_cast<double>(i);
        ds.add({v, 2 * v}, {10 * v});
    }
    return ds;
}

} // namespace

TEST(DatasetTest, EmptyDataset)
{
    Dataset ds;
    EXPECT_TRUE(ds.empty());
    EXPECT_EQ(ds.size(), 0u);
    EXPECT_EQ(ds.inputDim(), 0u);
    EXPECT_EQ(ds.outputDim(), 0u);
}

TEST(DatasetTest, SchemaAndSamples)
{
    const Dataset ds = makeDataset(3);
    EXPECT_EQ(ds.inputDim(), 2u);
    EXPECT_EQ(ds.outputDim(), 1u);
    EXPECT_EQ(ds.inputs()[1], "b");
    EXPECT_EQ(ds.outputs()[0], "y");
    EXPECT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[2].x, (Vector{2, 4}));
    EXPECT_EQ(ds[2].y, (Vector{20}));
}

TEST(DatasetTest, Iteration)
{
    const Dataset ds = makeDataset(4);
    std::size_t count = 0;
    for (const auto &s : ds) {
        EXPECT_EQ(s.x.size(), 2u);
        ++count;
    }
    EXPECT_EQ(count, 4u);
}

TEST(DatasetTest, MatrixViews)
{
    const Dataset ds = makeDataset(3);
    const auto x = ds.xMatrix();
    const auto y = ds.yMatrix();
    EXPECT_EQ(x.rows(), 3u);
    EXPECT_EQ(x.cols(), 2u);
    EXPECT_EQ(y.cols(), 1u);
    EXPECT_DOUBLE_EQ(x(2, 1), 4.0);
    EXPECT_DOUBLE_EQ(y(1, 0), 10.0);
}

TEST(DatasetTest, ColumnViews)
{
    const Dataset ds = makeDataset(3);
    EXPECT_EQ(ds.xColumn(0), (Vector{0, 1, 2}));
    EXPECT_EQ(ds.xColumn(1), (Vector{0, 2, 4}));
    EXPECT_EQ(ds.yColumn(0), (Vector{0, 10, 20}));
}

TEST(DatasetTest, SelectPreservesOrderAndAllowsDuplicates)
{
    const Dataset ds = makeDataset(5);
    const Dataset sub = ds.select({4, 0, 4});
    ASSERT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub[0].x[0], 4);
    EXPECT_EQ(sub[1].x[0], 0);
    EXPECT_EQ(sub[2].x[0], 4);
    EXPECT_EQ(sub.inputs(), ds.inputs());
}

TEST(DatasetTest, ShuffledIsPermutation)
{
    const Dataset ds = makeDataset(20);
    wcnn::numeric::Rng rng(5);
    const Dataset sh = ds.shuffled(rng);
    ASSERT_EQ(sh.size(), ds.size());
    // The multiset of first coordinates must be preserved.
    std::vector<double> orig, perm;
    for (const auto &s : ds)
        orig.push_back(s.x[0]);
    for (const auto &s : sh)
        perm.push_back(s.x[0]);
    std::sort(orig.begin(), orig.end());
    std::sort(perm.begin(), perm.end());
    EXPECT_EQ(orig, perm);
}

TEST(DatasetTest, AppendConcatenates)
{
    Dataset a = makeDataset(2);
    const Dataset b = makeDataset(3);
    a.append(b);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_EQ(a[4].x[0], 2);
}

TEST(DatasetTest, JointXyConsistency)
{
    const Dataset ds = makeDataset(10);
    for (std::size_t i = 0; i < ds.size(); ++i)
        EXPECT_DOUBLE_EQ(ds[i].y[0], 10.0 * ds[i].x[0]);
}
