/**
 * @file
 * Tests for the open-loop Poisson load driver.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/app_server.hh"
#include "sim/driver.hh"

using namespace wcnn::sim;
using wcnn::numeric::Rng;

namespace {

/** Harness capturing what the driver injects. */
struct Harness
{
    Simulator sim;
    WorkloadParams params = WorkloadParams::defaults();
    PsCpu cpu{sim, 16, 0.0, 0.0};
    Database db{sim, 48, 0.0};
    ThreadPool mfg{sim, "mfg", 64, 10000};
    ThreadPool web{sim, "web", 64, 10000};
    ThreadPool def{sim, "default", 64, 10000};
    Collector collector{0.0, 1e9, params};
    AppServer server{sim, cpu, db,     mfg,       web,
                     def, params, collector, Rng(3)};
};

} // namespace

TEST(DriverTest, InjectionRateIsRespected)
{
    Harness h;
    Driver driver(h.sim, h.server, 560.0, h.params, Rng(1), 1e9);
    driver.start();
    h.sim.run(50.0);
    // 560/s over 50 s = 28000 expected; Poisson sd ~ sqrt(28000)=167.
    EXPECT_NEAR(static_cast<double>(driver.injected()), 28000.0,
                5.0 * 167.0);
}

TEST(DriverTest, HorizonStopsInjection)
{
    Harness h;
    Driver driver(h.sim, h.server, 500.0, h.params, Rng(2), 10.0);
    driver.start();
    h.sim.run(100.0);
    EXPECT_NEAR(static_cast<double>(driver.injected()), 5000.0,
                5.0 * std::sqrt(5000.0));
}

TEST(DriverTest, ClassMixMatchesWeights)
{
    Harness h;
    // Skew the mix: manufacturing 10%, browse 60%.
    h.params.profiles[0].mix = 0.1;
    h.params.profiles[1].mix = 0.15;
    h.params.profiles[2].mix = 0.15;
    h.params.profiles[3].mix = 0.6;
    Driver driver(h.sim, h.server, 1000.0, h.params, Rng(3), 1e9);
    driver.start();
    h.sim.run(30.0);

    std::array<double, numTxnClasses> seen{};
    double total = 0.0;
    for (TxnClass cls : allTxnClasses) {
        seen[static_cast<std::size_t>(cls)] =
            static_cast<double>(h.collector.completions(cls));
        total += seen[static_cast<std::size_t>(cls)];
    }
    ASSERT_GT(total, 1000.0);
    EXPECT_NEAR(seen[0] / total, 0.10, 0.02);
    EXPECT_NEAR(seen[3] / total, 0.60, 0.03);
}

TEST(DriverTest, InterArrivalsAreExponential)
{
    // CoV of exponential inter-arrivals is 1; a deterministic source
    // would give 0. Capture arrival times through the collector.
    Harness h;
    Driver driver(h.sim, h.server, 200.0, h.params, Rng(4), 1e9);
    driver.start();
    h.sim.run(60.0);
    // Indirect check: injected count variance behaves Poisson-like
    // across disjoint windows. Run a second independent driver window
    // and compare; cheap smoke rather than a full GOF test.
    EXPECT_GT(driver.injected(), 10000u);
}

TEST(DriverTest, DeterministicGivenSeed)
{
    const auto run = [](std::uint64_t seed) {
        Harness h;
        Driver driver(h.sim, h.server, 300.0, h.params, Rng(seed),
                      1e9);
        driver.start();
        h.sim.run(20.0);
        return driver.injected();
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}
