/**
 * @file
 * Tests for the polynomial and logarithmic baselines (paper sec. 7
 * future work).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/feature_models.hh"
#include "model/linear_model.hh"
#include "data/metrics.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::LogarithmicModel;
using wcnn::model::PolynomialModel;
using wcnn::numeric::Rng;

TEST(PolynomialModelTest, NameIncludesDegree)
{
    EXPECT_EQ(PolynomialModel(3).name(), "polynomial(degree=3)");
}

TEST(PolynomialModelTest, RecoversQuadraticExactly)
{
    Rng rng(1);
    Dataset ds({"a", "b"}, {"y"});
    for (int i = 0; i < 40; ++i) {
        const double a = rng.uniform(-2, 2);
        const double b = rng.uniform(-2, 2);
        ds.add({a, b}, {1 + 2 * a - b + 0.5 * a * a - a * b + 3 * b * b});
    }
    PolynomialModel mdl(2);
    mdl.fit(ds);
    for (int i = 0; i < 10; ++i) {
        const double a = rng.uniform(-2, 2);
        const double b = rng.uniform(-2, 2);
        const double expected =
            1 + 2 * a - b + 0.5 * a * a - a * b + 3 * b * b;
        EXPECT_NEAR(mdl.predict({a, b})[0], expected, 1e-5);
    }
}

TEST(PolynomialModelTest, FeatureCountMatchesCombinatorics)
{
    // Monomials of total degree <= d in n variables: C(n + d, d).
    Rng rng(2);
    Dataset ds({"a", "b", "c"}, {"y"});
    for (int i = 0; i < 60; ++i) {
        ds.add({rng.uniform(-1, 1), rng.uniform(-1, 1),
                rng.uniform(-1, 1)},
               {rng.uniform(-1, 1)});
    }
    PolynomialModel quad(2);
    quad.fit(ds);
    EXPECT_EQ(quad.featureCount(), 10u); // C(5,2)
    PolynomialModel cubic(3);
    cubic.fit(ds);
    EXPECT_EQ(cubic.featureCount(), 20u); // C(6,3)
}

TEST(PolynomialModelTest, DegreeOneMatchesLinearModel)
{
    Rng rng(3);
    Dataset ds({"a"}, {"y"});
    for (int i = 0; i < 20; ++i) {
        const double a = rng.uniform(-3, 3);
        ds.add({a}, {4 * a - 7});
    }
    PolynomialModel mdl(1);
    mdl.fit(ds);
    EXPECT_NEAR(mdl.predict({1.5})[0], -1.0, 1e-6);
}

TEST(LogarithmicModelTest, FitsSaturatingCurveBetterThanLinear)
{
    // y = log(1 + 5x) on [0, 10]: saturating growth that a line
    // cannot track.
    Dataset ds({"x"}, {"y"});
    for (double x = 0.0; x <= 10.0; x += 0.25)
        ds.add({x}, {std::log1p(5.0 * x)});

    LogarithmicModel log_mdl;
    log_mdl.fit(ds);
    wcnn::model::LinearModel lin_mdl;
    lin_mdl.fit(ds);

    const auto log_err = wcnn::data::rmse(
        ds.yColumn(0), log_mdl.predictAll(ds).col(0));
    const auto lin_err = wcnn::data::rmse(
        ds.yColumn(0), lin_mdl.predictAll(ds).col(0));
    EXPECT_LT(log_err, 0.5 * lin_err);
}

TEST(LogarithmicModelTest, MultiOutput)
{
    Rng rng(4);
    Dataset ds({"a", "b"}, {"y1", "y2"});
    for (int i = 0; i < 30; ++i) {
        const double a = rng.uniform(0.1, 5);
        const double b = rng.uniform(0.1, 5);
        ds.add({a, b}, {std::log(a + 1), a + b});
    }
    LogarithmicModel mdl;
    mdl.fit(ds);
    const auto pred = mdl.predict({2.0, 3.0});
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_NEAR(pred[1], 5.0, 0.2);
}

TEST(FeatureModelsTest, FittedFlagLifecycle)
{
    PolynomialModel mdl(2);
    EXPECT_FALSE(mdl.fitted());
    Dataset ds({"x"}, {"y"});
    ds.add({1}, {1});
    ds.add({2}, {4});
    ds.add({3}, {9});
    ds.add({4}, {16});
    mdl.fit(ds);
    EXPECT_TRUE(mdl.fitted());
}
