/**
 * @file
 * Fuzz-style corpus test: every checked-in malformed input under
 * tests/corpus/ must raise the typed wcnn::IoError family from its
 * parser — never a contract abort (that would misreport bad input as
 * an internal bug), never success, and under the sanitizer presets
 * never UB. The corpus is the regression home for any future parser
 * crash: add the offending file, it is covered forever.
 *
 * The corpus directory is baked in via WCNN_CORPUS_DIR (see
 * tests/CMakeLists.txt); file names are enumerated here so a deleted
 * corpus file fails loudly instead of silently shrinking coverage.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/contracts.hh"
#include "core/error.hh"
#include "data/csv.hh"
#include "nn/serialize.hh"
#include "scenario/error.hh"
#include "scenario/resolve.hh"
#include "serve/error.hh"
#include "serve/net/protocol.hh"

#ifndef WCNN_CORPUS_DIR
#error "build must define WCNN_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

/** Read a corpus file whole; missing files fail the test. */
std::string
slurp(const std::string &name)
{
    const std::string path = std::string(WCNN_CORPUS_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ADD_FAILURE() << "corpus file missing: " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

const char *const kCsvCorpus[] = {
    "csv_empty_file.csv",          "csv_header_missing_roles.csv",
    "csv_output_before_input.csv", "csv_ragged_row.csv",
    "csv_extra_cell.csv",          "csv_non_numeric_cell.csv",
    "csv_trailing_junk.csv",       "csv_nan_cell.csv",
    "csv_inf_cell.csv",            "csv_empty_cell.csv",
    "csv_no_output_column.csv",    "csv_unnamed_column.csv",
};

const char *const kModelCorpus[] = {
    "model_empty_file.txt",        "model_bad_magic.txt",
    "model_bad_version.txt",       "model_unknown_activation.txt",
    "model_truncated_after_header.txt",
    "model_implausible_depth.txt", "model_implausible_width.txt",
    "model_negative_dim.txt",
};

/**
 * Hostile wire bytes for the serving decoder, categorized by the
 * typed outcome the connection handler owes them. tryDecode never
 * throws on wire content; the final status after consuming every
 * complete frame is the whole contract.
 */
struct WireCase
{
    const char *name;

    /** Complete frames decodable before the fault. */
    std::size_t leadingFrames;

    /** Status the decoder must settle on after those frames. */
    wcnn::serve::net::DecodeStatus finalStatus;
};

const WireCase kWireCorpus[] = {
    // Truncated streams: a valid prefix that never completes. At
    // EOF the handler treats NeedMore as a dead peer, not garbage.
    {"wire_truncated_length_prefix.bin", 0,
     wcnn::serve::net::DecodeStatus::NeedMore},
    {"wire_truncated_mid_body.bin", 0,
     wcnn::serve::net::DecodeStatus::NeedMore},
    // Lying lengths and mid-stream garbage: typed error, close.
    {"wire_request_zero_declared_length.bin", 0,
     wcnn::serve::net::DecodeStatus::Malformed},
    {"wire_garbage_between_frames.bin", 1,
     wcnn::serve::net::DecodeStatus::Malformed},
    {"wire_second_frame_bad_magic.bin", 1,
     wcnn::serve::net::DecodeStatus::Malformed},
};

/** JSON request lines that must raise a typed ProtocolError. */
const char *const kJsonWireCorpus[] = {
    "wire_json_embedded_nul.bin",
    "wire_json_unterminated_string.bin",
    "wire_json_bare_array.bin",
};

/**
 * Malformed scenario text, categorized by which stage owes the
 * diagnostic: "scenario.parse" for lexical/syntactic faults,
 * "scenario.resolve" for documents that parse but declare something
 * semantically invalid. Either way the contract layer stays silent —
 * the resolver pre-validates everything the simulator asserts on.
 */
struct ScenarioCase
{
    const char *name;
    const char *kind;
};

const ScenarioCase kScenarioCorpus[] = {
    // Lexical faults.
    {"scn_unterminated_string.wcnn", "scenario.parse"},
    {"scn_nonfinite_literal.wcnn", "scenario.parse"},
    {"scn_bad_token.wcnn", "scenario.parse"},
    // Syntactic faults.
    {"scn_truncated_block.wcnn", "scenario.parse"},
    {"scn_missing_semicolon.wcnn", "scenario.parse"},
    {"scn_deep_nesting.wcnn", "scenario.parse"},
    // Semantic faults.
    {"scn_string_where_number.wcnn", "scenario.resolve"},
    {"scn_empty.wcnn", "scenario.resolve"},
    {"scn_duplicate_pool.wcnn", "scenario.resolve"},
    {"scn_duplicate_class.wcnn", "scenario.resolve"},
    {"scn_cyclic_let.wcnn", "scenario.resolve"},
    {"scn_undefined_ref.wcnn", "scenario.resolve"},
    {"scn_unknown_section.wcnn", "scenario.resolve"},
    {"scn_wrong_arity.wcnn", "scenario.resolve"},
    {"scn_negative_rate.wcnn", "scenario.resolve"},
    {"scn_unknown_pool.wcnn", "scenario.resolve"},
    {"scn_mmpp_mismatch.wcnn", "scenario.resolve"},
};

} // namespace

TEST(FuzzCorpus, EveryMalformedCsvRaisesATypedIoError)
{
    for (const char *name : kCsvCorpus) {
        std::stringstream ss(slurp(name));
        try {
            (void)wcnn::data::readCsv(ss);
            ADD_FAILURE() << name << ": parser accepted malformed input";
        } catch (const wcnn::IoError &e) {
            EXPECT_EQ(e.kind(), "io.csv") << name;
            EXPECT_FALSE(std::string(e.what()).empty()) << name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << name << ": contract abort instead of "
                          << "IoError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, EveryMalformedModelRaisesATypedIoError)
{
    for (const char *name : kModelCorpus) {
        std::stringstream ss(slurp(name));
        try {
            (void)wcnn::nn::Serializer::read(ss);
            ADD_FAILURE() << name << ": parser accepted malformed input";
        } catch (const wcnn::IoError &e) {
            EXPECT_EQ(e.kind(), "io.model") << name;
            EXPECT_FALSE(std::string(e.what()).empty()) << name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << name << ": contract abort instead of "
                          << "IoError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, EveryHostileWireStreamSettlesOnItsTypedStatus)
{
    namespace net = wcnn::serve::net;
    for (const WireCase &wire : kWireCorpus) {
        const std::string raw = slurp(wire.name);
        const auto *data =
            reinterpret_cast<const std::uint8_t *>(raw.data());
        std::size_t off = 0;
        std::size_t frames = 0;
        net::DecodeStatus status = net::DecodeStatus::NeedMore;
        // Decode exactly the way a connection handler does: consume
        // complete frames until the stream is exhausted or faulted.
        while (off < raw.size()) {
            const net::DecodeResult r =
                net::tryDecode(data + off, raw.size() - off);
            status = r.status;
            if (r.status != net::DecodeStatus::Frame)
                break;
            ++frames;
            off += r.consumed;
        }
        EXPECT_EQ(frames, wire.leadingFrames) << wire.name;
        EXPECT_EQ(status, wire.finalStatus) << wire.name;
        if (wire.finalStatus == net::DecodeStatus::Malformed) {
            const net::DecodeResult r =
                net::tryDecode(data + off, raw.size() - off);
            EXPECT_FALSE(r.error.empty())
                << wire.name << ": malformed verdict needs a reason";
        }
    }
}

TEST(FuzzCorpus, EveryHostileJsonLineRaisesATypedProtocolError)
{
    namespace net = wcnn::serve::net;
    for (const char *name : kJsonWireCorpus) {
        const std::string line = slurp(name);
        try {
            (void)net::parseJsonLine(line);
            ADD_FAILURE() << name << ": parser accepted hostile JSON";
        } catch (const wcnn::serve::ProtocolError &e) {
            EXPECT_EQ(std::string(e.kind()), "serve.protocol") << name;
            EXPECT_FALSE(std::string(e.what()).empty()) << name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << name << ": contract abort instead of "
                          << "ProtocolError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, EveryMalformedScenarioRaisesATypedScenarioError)
{
    for (const ScenarioCase &c : kScenarioCorpus) {
        const std::string source = slurp(c.name);
        try {
            (void)wcnn::scenario::resolveText(source);
            ADD_FAILURE() << c.name
                          << ": resolver accepted malformed input";
        } catch (const wcnn::scenario::ScenarioError &e) {
            EXPECT_EQ(std::string(e.kind()), c.kind) << c.name;
            // Every diagnostic carries a usable 1-based location,
            // embedded in what() for drivers that only print.
            EXPECT_GE(e.loc().line, 1u) << c.name;
            EXPECT_GE(e.loc().column, 1u) << c.name;
            EXPECT_NE(std::string(e.what()).find("line "),
                      std::string::npos)
                << c.name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << c.name << ": contract abort instead of "
                          << "ScenarioError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, CorpusFailuresAreCatchableAsTheBaseError)
{
    // One taxonomy: anything the parsers throw narrows from
    // wcnn::Error, so a driver's single catch block handles both.
    std::stringstream csv(slurp("csv_ragged_row.csv"));
    EXPECT_THROW((void)wcnn::data::readCsv(csv), wcnn::Error);
    std::stringstream model(slurp("model_bad_magic.txt"));
    EXPECT_THROW((void)wcnn::nn::Serializer::read(model), wcnn::Error);
    EXPECT_THROW(
        (void)wcnn::scenario::resolveText(slurp("scn_bad_token.wcnn")),
        wcnn::Error);
}
