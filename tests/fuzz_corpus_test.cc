/**
 * @file
 * Fuzz-style corpus test: every checked-in malformed input under
 * tests/corpus/ must raise the typed wcnn::IoError family from its
 * parser — never a contract abort (that would misreport bad input as
 * an internal bug), never success, and under the sanitizer presets
 * never UB. The corpus is the regression home for any future parser
 * crash: add the offending file, it is covered forever.
 *
 * The corpus directory is baked in via WCNN_CORPUS_DIR (see
 * tests/CMakeLists.txt); file names are enumerated here so a deleted
 * corpus file fails loudly instead of silently shrinking coverage.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/contracts.hh"
#include "core/error.hh"
#include "data/csv.hh"
#include "nn/serialize.hh"

#ifndef WCNN_CORPUS_DIR
#error "build must define WCNN_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

/** Read a corpus file whole; missing files fail the test. */
std::string
slurp(const std::string &name)
{
    const std::string path = std::string(WCNN_CORPUS_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ADD_FAILURE() << "corpus file missing: " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

const char *const kCsvCorpus[] = {
    "csv_empty_file.csv",          "csv_header_missing_roles.csv",
    "csv_output_before_input.csv", "csv_ragged_row.csv",
    "csv_extra_cell.csv",          "csv_non_numeric_cell.csv",
    "csv_trailing_junk.csv",       "csv_nan_cell.csv",
    "csv_inf_cell.csv",            "csv_empty_cell.csv",
    "csv_no_output_column.csv",    "csv_unnamed_column.csv",
};

const char *const kModelCorpus[] = {
    "model_empty_file.txt",        "model_bad_magic.txt",
    "model_bad_version.txt",       "model_unknown_activation.txt",
    "model_truncated_after_header.txt",
    "model_implausible_depth.txt", "model_implausible_width.txt",
    "model_negative_dim.txt",
};

} // namespace

TEST(FuzzCorpus, EveryMalformedCsvRaisesATypedIoError)
{
    for (const char *name : kCsvCorpus) {
        std::stringstream ss(slurp(name));
        try {
            (void)wcnn::data::readCsv(ss);
            ADD_FAILURE() << name << ": parser accepted malformed input";
        } catch (const wcnn::IoError &e) {
            EXPECT_EQ(e.kind(), "io.csv") << name;
            EXPECT_FALSE(std::string(e.what()).empty()) << name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << name << ": contract abort instead of "
                          << "IoError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, EveryMalformedModelRaisesATypedIoError)
{
    for (const char *name : kModelCorpus) {
        std::stringstream ss(slurp(name));
        try {
            (void)wcnn::nn::Serializer::read(ss);
            ADD_FAILURE() << name << ": parser accepted malformed input";
        } catch (const wcnn::IoError &e) {
            EXPECT_EQ(e.kind(), "io.model") << name;
            EXPECT_FALSE(std::string(e.what()).empty()) << name;
        } catch (const wcnn::ContractViolation &e) {
            ADD_FAILURE() << name << ": contract abort instead of "
                          << "IoError: " << e.what();
        }
    }
}

TEST(FuzzCorpus, CorpusFailuresAreCatchableAsTheBaseError)
{
    // One taxonomy: anything the parsers throw narrows from
    // wcnn::Error, so a driver's single catch block handles both.
    std::stringstream csv(slurp("csv_ragged_row.csv"));
    EXPECT_THROW((void)wcnn::data::readCsv(csv), wcnn::Error);
    std::stringstream model(slurp("model_bad_magic.txt"));
    EXPECT_THROW((void)wcnn::nn::Serializer::read(model), wcnn::Error);
}
