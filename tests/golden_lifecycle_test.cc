/**
 * @file
 * Golden pinning of the lifecycle replay: the checked-in drift
 * journal (tests/data/lifecycle_drift.journal), replayed against the
 * checked-in incumbent bundle, must reproduce the pinned decision
 * digest and final-bundle digest at 1, 2 and 8 shadow-evaluation
 * threads. This is the acceptance gate of DESIGN.md §5.9: decisions
 * and candidate weights are functions of (record stream, seed) alone.
 *
 * The options below are deliberately restricted to what
 * `wcnn lifecycle replay` can express on its command line, so CI's
 * lifecycle-smoke job replays the same journal through the CLI and
 * asserts the same digest (tests/data/lifecycle_drift.digest):
 *
 *   wcnn lifecycle replay --journal tests/data/lifecycle_drift.journal
 *     --model tests/data/lifecycle_incumbent.bundle
 *     --drift-window 8 --drift-threshold 0.25 --drift-patience 2
 *     --retrain-window 16 --shadow-window 8 --seed 99 --epochs 400
 *
 * Regenerate after an *intentional* lifecycle/model change with
 *   WCNN_GOLDEN_REGEN=1 ./golden_lifecycle_test
 * which rewrites the journal, the incumbent bundle and the digest
 * file in the source tree.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "lifecycle/controller.hh"
#include "lifecycle/journal.hh"
#include "lifecycle/replay.hh"
#include "lifecycle_test_util.hh"
#include "serve/bundle.hh"

#ifndef WCNN_LIFECYCLE_DATA_DIR
#error "build must define WCNN_LIFECYCLE_DATA_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace wcnn;

const std::string kDataDir = WCNN_LIFECYCLE_DATA_DIR;
const std::string kJournalPath = kDataDir + "/lifecycle_drift.journal";
const std::string kBundlePath =
    kDataDir + "/lifecycle_incumbent.bundle";
const std::string kDigestPath = kDataDir + "/lifecycle_drift.digest";

/**
 * Exactly the knobs the CLI invocation in the header sets; everything
 * else stays at library defaults so the CLI run matches.
 */
lifecycle::LifecycleOptions
goldenOptions(std::size_t threads)
{
    lifecycle::LifecycleOptions opts;
    opts.drift.window = 8;
    opts.drift.threshold = 0.25;
    opts.drift.patience = 2;
    opts.retrain.seed = 99;
    opts.retrain.model.train.maxEpochs = 400;
    opts.retrainWindow = 16;
    opts.shadowWindow = 8;
    opts.threads = threads;
    return opts;
}

bool
regenRequested()
{
    const char *env = std::getenv("WCNN_GOLDEN_REGEN");
    return env != nullptr && env[0] != '\0' &&
           std::string(env) != "0";
}

TEST(GoldenLifecycle, ReplayMatchesPinnedDigests)
{
    if (regenRequested()) {
        const auto incumbent = lifecycle_test::makeIncumbent();
        const lifecycle::Journal journal =
            lifecycle_test::promotionJournal(*incumbent);
        lifecycle::writeJournal(kJournalPath, journal);
        incumbent->save(kBundlePath);

        const lifecycle::ReplayResult result = lifecycle::replayJournal(
            journal, incumbent, goldenOptions(1));
        std::ofstream digest(kDigestPath);
        digest << "decisions " << result.digest << '\n'
               << "bundle " << result.finalBundleDigest << '\n';
        ASSERT_TRUE(digest.good());
        std::printf("regenerated %s\n  decisions %s\n  bundle %s\n",
                    kDataDir.c_str(), result.digest.c_str(),
                    result.finalBundleDigest.c_str());
        return;
    }

    // Pinned values live next to the journal so the CI smoke job can
    // assert them without compiling this test's tables.
    std::ifstream digest_file(kDigestPath);
    ASSERT_TRUE(digest_file.good()) << kDigestPath;
    std::string key;
    std::string expect_decisions;
    std::string expect_bundle;
    digest_file >> key >> expect_decisions;
    ASSERT_EQ(key, "decisions");
    digest_file >> key >> expect_bundle;
    ASSERT_EQ(key, "bundle");

    const lifecycle::Journal journal =
        lifecycle::readJournal(kJournalPath);
    auto incumbent = std::make_shared<const serve::ModelBundle>(
        serve::ModelBundle::load(kBundlePath));

    for (const std::size_t threads : {1u, 2u, 8u}) {
        const lifecycle::ReplayResult result = lifecycle::replayJournal(
            journal, incumbent, goldenOptions(threads));
        EXPECT_EQ(result.digest, expect_decisions)
            << "decision digest diverged at " << threads
            << " threads";
        EXPECT_EQ(result.finalBundleDigest, expect_bundle)
            << "candidate weights diverged at " << threads
            << " threads";
        // The stream promotes exactly once.
        EXPECT_EQ(result.stats.promotions, 1u);
        EXPECT_EQ(result.finalVersion, 2u);
    }
}

TEST(GoldenLifecycle, LiveControllerMatchesReplay)
{
    if (regenRequested())
        GTEST_SKIP() << "regen run";

    // The same record stream driven through a hand-held controller
    // (the live-serve shape) must land on the byte-identical digest —
    // replay is the live loop, not a reimplementation.
    const lifecycle::Journal journal =
        lifecycle::readJournal(kJournalPath);
    auto incumbent = std::make_shared<const serve::ModelBundle>(
        serve::ModelBundle::load(kBundlePath));

    const lifecycle::ReplayResult result =
        lifecycle::replayJournal(journal, incumbent, goldenOptions(1));

    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    lifecycle::LifecycleController controller(host, goldenOptions(1));
    for (const lifecycle::ObservationRecord &rec : journal.records)
        controller.record(rec);

    EXPECT_EQ(controller.digest(), result.digest);
    EXPECT_EQ(lifecycle::bundleDigest(*registry.active()),
              result.finalBundleDigest);
}

} // namespace
