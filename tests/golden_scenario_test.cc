/**
 * @file
 * Golden pinning of the scenario library's collected datasets.
 *
 * Two guarantees, layered:
 *
 *  1. Byte identity with the legacy path: the paper_3tier scenario,
 *     swept and collected, must produce the *same CSV text* as the
 *     hard-coded SampleSpace::paperLike() + WorkloadParams::defaults()
 *     pipeline — proving the DSL changed the spelling of the paper's
 *     experiment, not the experiment.
 *
 *  2. Cross-thread and cross-session determinism for every shipped
 *     scenario: a small seeded design's dataset digest is identical at
 *     1, 2 and 8 collection threads, and equal to the digest pinned
 *     below. Any RNG-threading, seed-assignment or arrival-process
 *     regression fails here by name.
 *
 * Regenerate after an *intentional* simulator change with
 *   WCNN_GOLDEN_REGEN=1 ./golden_scenario_test
 * and paste the printed block over the table below.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.hh"
#include "numeric/rng.hh"
#include "scenario/library.hh"
#include "sim/sample_space.hh"

#ifndef WCNN_SCENARIO_SRC_DIR
#error "build must define WCNN_SCENARIO_SRC_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace wcnn;

/** Design size per scenario: small, but exercises the whole space. */
constexpr std::size_t kDesignPoints = 4;

/** Design seed; also the collection seed base. */
constexpr std::uint64_t kSeed = 2006;

/** Per-scenario digest of the canonical small-design dataset. */
struct GoldenDigest
{
    const char *name;
    const char *digest;
};

const GoldenDigest kGoldenDigests[] = {
    {"browse_heavy_mix", "8d463827663dd28e"},
    {"bursty_mmpp", "85ab11326898cf23"},
    {"closed_heavy_think", "8fd2f400bd3709f4"},
    {"closed_loop", "b8d03c13aca5c538"},
    {"db_bound", "e83677404e64c67a"},
    {"deterministic_services", "1153a7710012d11e"},
    {"diurnal", "a99e5f41bb0ba1e3"},
    {"exp_services", "17e677ab32bce01f"},
    {"gc_pressure", "2552a8b55eb7a3ea"},
    {"heavy_tail", "f9efec5efd0a0660"},
    {"hetero_big_host", "b297556643f20cfd"},
    {"hetero_small_host", "618b394c064a4c09"},
    {"no_gc", "6c876f6aed764910"},
    {"paper_3tier", "e632754e57e77172"},
    {"surge_mmpp3", "65321d5a7d63eb81"},
};

/**
 * The canonical small design over one scenario: LHS(4) on its space,
 * base overlaid, windows shortened to a test budget (the full
 * declared windows run in `wcnn fit --scenario` and the benches).
 */
std::vector<sim::ThreeTierConfig>
canonicalDesign(const scenario::ResolvedScenario &rs)
{
    numeric::Rng rng(kSeed);
    auto configs =
        sim::latinHypercubeDesign(rs.space, kDesignPoints, rng);
    scenario::applyBase(rs, configs);
    for (sim::ThreeTierConfig &cfg : configs) {
        cfg.warmup = 4.0;
        cfg.measure = 16.0;
    }
    return configs;
}

data::Dataset
collectAtThreads(const scenario::ResolvedScenario &rs,
                 std::size_t threads)
{
    return sim::collectSimulated(canonicalDesign(rs), rs.params, kSeed,
                                 1, threads);
}

} // namespace

TEST(GoldenScenarioTest, PaperScenarioIsByteIdenticalToTheLegacyPath)
{
    // Legacy spelling: hard-coded space, default params, default
    // config fields (only the windows shortened, same as the design).
    numeric::Rng legacy_rng(kSeed);
    auto legacy = sim::latinHypercubeDesign(sim::SampleSpace::paperLike(),
                                            kDesignPoints, legacy_rng);
    for (sim::ThreeTierConfig &cfg : legacy) {
        cfg.warmup = 4.0;
        cfg.measure = 16.0;
    }
    const data::Dataset expected = sim::collectSimulated(
        legacy, sim::WorkloadParams::defaults(), kSeed, 1, 1);

    const scenario::ResolvedScenario rs =
        scenario::loadNamed("paper_3tier");
    const data::Dataset actual = collectAtThreads(rs, 1);

    std::ostringstream want, got;
    data::writeCsv(expected, want);
    data::writeCsv(actual, got);
    EXPECT_EQ(got.str(), want.str())
        << "paper_3tier.wcnn no longer reproduces the hard-coded "
           "pipeline byte for byte";
}

TEST(GoldenScenarioTest, PinnedDigestsAtEveryThreadCount)
{
    const bool regen = std::getenv("WCNN_GOLDEN_REGEN") != nullptr;
    if (regen)
        std::printf("const GoldenDigest kGoldenDigests[] = {\n");

    for (const GoldenDigest &golden : kGoldenDigests) {
        const scenario::ResolvedScenario rs =
            scenario::loadNamed(golden.name);
        const std::string at1 =
            data::csvDigest(collectAtThreads(rs, 1));
        const std::string at2 =
            data::csvDigest(collectAtThreads(rs, 2));
        const std::string at8 =
            data::csvDigest(collectAtThreads(rs, 8));

        // Thread-count invariance holds even while regenerating.
        EXPECT_EQ(at2, at1) << golden.name << ": 2 threads diverge";
        EXPECT_EQ(at8, at1) << golden.name << ": 8 threads diverge";

        if (regen) {
            std::printf("    {\"%s\", \"%s\"},\n", golden.name,
                        at1.c_str());
        } else {
            EXPECT_EQ(at1, golden.digest) << golden.name;
        }
    }

    if (regen) {
        std::printf("};\n");
        GTEST_SKIP() << "regeneration run; digest table printed above";
    }
}

TEST(GoldenScenarioTest, DigestTableCoversTheWholeLibrary)
{
    // A scenario added to the library without a pinned digest (or
    // vice versa) fails here rather than silently going unpinned.
    const auto names = scenario::libraryNames();
    ASSERT_EQ(names.size(),
              sizeof(kGoldenDigests) / sizeof(kGoldenDigests[0]));
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], kGoldenDigests[i].name);
}
