/**
 * @file
 * Golden pinning of the Table 2 metrics and the Fig. 5/6 fit curves.
 *
 * The fast analytic-source study is fully deterministic, so its
 * numbers can be pinned to exact golden values: per-indicator average
 * validation errors (the bottom row of Table 2), the overall accuracy,
 * and the head of the actual-vs-predicted curves of trial 1 (the
 * Fig. 5 training fit and Fig. 6 validation fit). Any change to the
 * numeric stack — RNG, standardization, training loop, batched
 * forward, parallel scheduling — that perturbs these values fails here
 * instead of silently shifting the paper reproduction.
 *
 * Regenerate after an *intentional* numeric change with
 *   WCNN_GOLDEN_REGEN=1 ./golden_table2_test
 * and paste the printed block over the constants below.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "model/study.hh"
#include "numeric/kernels/policy.hh"

using wcnn::model::StudyOptions;
using wcnn::model::StudyResult;

namespace {

/** Absolute tolerance on the error metrics (values are 1e-3..1e-1). */
constexpr double kMetricTolerance = 1e-9;

/** Relative tolerance on the fit-curve samples. */
constexpr double kCurveTolerance = 1e-9;

/** Curve samples pinned per figure. */
constexpr std::size_t kCurvePoints = 6;

/** Table 2 bottom row: average validation error per indicator. */
const std::vector<double> kGoldenAvgValidationError = {
    0.048273202147770491,
    0.022883559153013912,
    0.0257720410379698,
    0.017069138738138711,
    0.019446625230594893};

/** Mean prediction accuracy, 1 - mean relative error. */
constexpr double kGoldenOverallAccuracy = 0.97331108673850242;

/** Fig. 5 curve head: trial-1 training predictions, indicator 0. */
const std::vector<double> kGoldenFig5TrainPredicted = {
    0.48332666555313542,
    0.47308614620863509,
    0.41556036902245963,
    0.42543336999257719,
    2.0616407699750177,
    0.5554406915439476};

/** Fig. 6 curve head: trial-1 validation predictions, indicator 0. */
const std::vector<double> kGoldenFig6ValidationPredicted = {
    2.1524084541112183,
    0.56353938374506329,
    0.39845280222937274,
    1.4194214980657882,
    0.34485154714883692,
    1.1859404968409111};

/** Fig. 6 curve head: trial-1 validation actuals, indicator 0. */
const std::vector<double> kGoldenFig6ValidationActual = {
    2.076522086711257,
    0.52590048245481147,
    0.53637272203388031,
    1.9149717813236875,
    0.49922777218001929,
    1.9435564875401461};

/** Options of the deterministic study every golden derives from. */
StudyOptions
goldenStudyOptions()
{
    StudyOptions opts;
    opts.source = StudyOptions::Source::Analytic;
    opts.designSamples = 32;
    opts.sliceAnchorsPerAxis = 3;
    opts.tune = false;
    opts.nn.hiddenUnits = {8};
    opts.nn.train.targetLoss = 0.02;
    opts.seed = 2006;
    return opts;
}

/** The reference-policy golden study (run once). */
const StudyResult &
goldenStudy()
{
    static const StudyResult study = runStudy(goldenStudyOptions());
    return study;
}

/** Assert one study reproduces every pinned golden constant. */
void
expectGoldenValues(const StudyResult &study)
{
    const auto avg = study.cv.averageValidationError();
    ASSERT_EQ(avg.size(), 5u);
    for (std::size_t j = 0; j < avg.size(); ++j) {
        EXPECT_NEAR(avg[j], kGoldenAvgValidationError[j],
                    kMetricTolerance)
            << "indicator " << study.cv.indicatorNames[j];
    }
    EXPECT_NEAR(study.cv.overallAccuracy(), kGoldenOverallAccuracy,
                kMetricTolerance);

    const auto &trial = study.cv.trials.front();
    ASSERT_GE(trial.trainPredicted.rows(), kCurvePoints);
    ASSERT_GE(trial.validationPredicted.rows(), kCurvePoints);
    for (std::size_t i = 0; i < kCurvePoints; ++i) {
        EXPECT_NEAR(trial.trainPredicted(i, 0),
                    kGoldenFig5TrainPredicted[i],
                    kCurveTolerance *
                        std::fabs(kGoldenFig5TrainPredicted[i]))
            << "Fig. 5 point " << i;
        EXPECT_NEAR(trial.validationPredicted(i, 0),
                    kGoldenFig6ValidationPredicted[i],
                    kCurveTolerance *
                        std::fabs(kGoldenFig6ValidationPredicted[i]))
            << "Fig. 6 point " << i;
        EXPECT_NEAR(trial.validationSet[i].y[0],
                    kGoldenFig6ValidationActual[i],
                    kCurveTolerance *
                        std::fabs(kGoldenFig6ValidationActual[i]))
            << "Fig. 6 actual " << i;
    }
}

void
printVector(const char *name, const std::vector<double> &v)
{
    std::printf("const std::vector<double> %s = {", name);
    for (std::size_t i = 0; i < v.size(); ++i)
        std::printf("%s\n    %.17g", i ? "," : "", v[i]);
    std::printf("};\n");
}

} // namespace

TEST(GoldenTable2Test, PinnedMetricsAndFitCurves)
{
    const StudyResult &study = goldenStudy();

    if (std::getenv("WCNN_GOLDEN_REGEN") != nullptr) {
        const auto avg = study.cv.averageValidationError();
        const auto &trial = study.cv.trials.front();
        std::vector<double> fig5(kCurvePoints), fig6(kCurvePoints),
            fig6_actual(kCurvePoints);
        for (std::size_t i = 0; i < kCurvePoints; ++i) {
            fig5[i] = trial.trainPredicted(i, 0);
            fig6[i] = trial.validationPredicted(i, 0);
            fig6_actual[i] = trial.validationSet[i].y[0];
        }
        printVector("kGoldenAvgValidationError", avg);
        std::printf("constexpr double kGoldenOverallAccuracy = "
                    "%.17g;\n",
                    study.cv.overallAccuracy());
        printVector("kGoldenFig5TrainPredicted", fig5);
        printVector("kGoldenFig6ValidationPredicted", fig6);
        printVector("kGoldenFig6ValidationActual", fig6_actual);
        GTEST_SKIP() << "regeneration run; goldens printed above";
    }

    expectGoldenValues(study);
}

TEST(GoldenTable2Test, FastKernelPolicyReproducesTheGoldens)
{
    // The fast-kernel admission bar for the full pipeline: the same
    // study, dispatched through the blocked/SIMD kernels, must land on
    // the SAME pinned constants at the SAME tolerances. There is no
    // separate fast golden set — one set of numbers, two policies.
    wcnn::numeric::kernels::PolicyGuard guard(
        wcnn::numeric::kernels::KernelPolicy::Fast);
    const StudyResult study = runStudy(goldenStudyOptions());
    expectGoldenValues(study);
}

TEST(GoldenTable2Test, GoldenStudyStaysInPaperRange)
{
    // Sanity floor independent of the exact goldens: the analytic
    // study must keep the paper's headline quality (accuracy ~95 %).
    const StudyResult &study = goldenStudy();
    for (double e : study.cv.averageValidationError())
        EXPECT_LT(e, 0.15);
    EXPECT_GE(study.cv.overallAccuracy(), 0.90);
}
