/**
 * @file
 * Finite-difference validation of Mlp::backward().
 *
 * Backprop returns the *exact* analytic gradient, so a central
 * difference of the loss with step h must match it to O(h^2). The
 * check runs over every activation family and a set of random
 * topologies seeded through numeric::Rng::stream — the same
 * seed-stream discipline the parallel layer mandates for task-local
 * randomness — so the property suite itself is reproducible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "nn/loss.hh"
#include "nn/mlp.hh"
#include "numeric/kernels/policy.hh"
#include "numeric/rng.hh"

using wcnn::nn::Activation;
using wcnn::nn::Gradients;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

namespace {

/** Central-difference step. */
constexpr double kStep = 1e-5;

/** |analytic - numeric| <= kTolerance * max(1, |a|, |n|). */
constexpr double kTolerance = 1e-6;

/**
 * Keep every pre-activation at least this far from 0 so the central
 * difference never straddles the ReLU (or logarithmic) kink.
 */
constexpr double kKinkMargin = 1e-3;

double
lossAt(const Mlp &net, const Vector &x, const Vector &target)
{
    return wcnn::nn::mseLoss(net.forward(x), target);
}

/** Smallest |pre-activation| across all layers for input x. */
double
kinkDistance(const Mlp &net, const Vector &x)
{
    Mlp::Cache cache;
    net.forward(x, cache);
    double dist = std::numeric_limits<double>::infinity();
    for (const auto &pre : cache.preActivations)
        for (double p : pre)
            dist = std::min(dist, std::fabs(p));
    return dist;
}

/**
 * Draw an input whose pre-activations all clear the kink margin
 * (rejection sampling; smooth activations pass almost surely).
 */
Vector
drawInput(const Mlp &net, Rng &rng)
{
    for (int attempt = 0; attempt < 200; ++attempt) {
        Vector x(net.inputDim());
        for (double &v : x)
            v = rng.uniform(-1.5, 1.5);
        if (kinkDistance(net, x) > kKinkMargin)
            return x;
    }
    ADD_FAILURE() << "no input cleared the kink margin for "
                  << net.describe();
    return Vector(net.inputDim(), 0.5);
}

/**
 * Compare backward() against central differences for every weight and
 * bias of the network at (x, target).
 */
void
checkGradients(Mlp &net, const Vector &x, const Vector &target)
{
    Mlp::Cache cache;
    const Vector out = net.forward(x, cache);
    const Gradients analytic =
        net.backward(cache, wcnn::nn::mseGradient(out, target));

    const auto compare = [&](double got, double *param,
                             const char *what, std::size_t layer) {
        const double saved = *param;
        *param = saved + kStep;
        const double plus = lossAt(net, x, target);
        *param = saved - kStep;
        const double minus = lossAt(net, x, target);
        *param = saved;
        const double numeric = (plus - minus) / (2.0 * kStep);
        const double scale =
            std::max({1.0, std::fabs(got), std::fabs(numeric)});
        EXPECT_NEAR(got, numeric, kTolerance * scale)
            << what << " gradient, layer " << layer << ", net "
            << net.describe();
    };

    for (std::size_t l = 0; l < net.depth(); ++l) {
        auto &w = net.weights(l);
        for (std::size_t i = 0; i < w.rows(); ++i)
            for (std::size_t j = 0; j < w.cols(); ++j)
                compare(analytic.weightGrads[l](i, j), &w(i, j),
                        "weight", l);
        auto &b = net.biases(l);
        for (std::size_t i = 0; i < b.size(); ++i)
            compare(analytic.biasGrads[l][i], &b[i], "bias", l);
    }
}

/** Activation families under test (hidden layers). */
std::vector<Activation>
activationPool()
{
    return {Activation::logistic(1.0), Activation::logistic(2.5),
            Activation::tanh(), Activation::relu(),
            Activation::logarithmic(1.0)};
}

/** The fixed-net sweep, shared by both kernel-policy passes. */
void
checkEveryActivationOnSmallFixedNet()
{
    // One 3-4-2 network per activation family, including each family
    // as the *output* layer (gradients there skip the chain through
    // deeper layers, a distinct code path).
    for (const Activation &act : activationPool()) {
        Rng rng = Rng::stream(2006, 1000 + static_cast<std::size_t>(
                                              act.kind()));
        Mlp net(3, {LayerSpec{4, act}, LayerSpec{2, act}},
                InitRule::Xavier, rng);
        const Vector x = drawInput(net, rng);
        Vector target(2);
        for (double &t : target)
            t = rng.normal(0.0, 0.5);
        checkGradients(net, x, target);
    }
}

} // namespace

TEST(GradientCheckTest, EveryActivationOnSmallFixedNet)
{
    checkEveryActivationOnSmallFixedNet();
}

TEST(GradientCheckTest, EveryActivationUnderFastKernelPolicy)
{
    // Same sweep with the fast kernels dispatched: backprop's forward
    // passes route through gemv/gemm like everything else, so the
    // analytic-vs-numeric agreement must hold under either policy.
    wcnn::numeric::kernels::PolicyGuard guard(
        wcnn::numeric::kernels::KernelPolicy::Fast);
    checkEveryActivationOnSmallFixedNet();
}

TEST(GradientCheckTest, TenRandomTopologies)
{
    const auto pool = activationPool();
    for (std::size_t t = 0; t < 10; ++t) {
        // Independent, reproducible stream per topology.
        Rng rng = Rng::stream(2006, t);

        const auto input_dim =
            static_cast<std::size_t>(rng.uniformInt(1, 5));
        const auto n_hidden =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        std::vector<LayerSpec> layers;
        for (std::size_t l = 0; l < n_hidden; ++l) {
            const auto units =
                static_cast<std::size_t>(rng.uniformInt(1, 6));
            // Cycling the first hidden activation by topology index
            // guarantees every family appears in the random sweep.
            const Activation act =
                l == 0 ? pool[t % pool.size()]
                       : pool[static_cast<std::size_t>(rng.uniformInt(
                             0, static_cast<std::int64_t>(
                                    pool.size() - 1)))];
            layers.push_back(LayerSpec{units, act});
        }
        const auto output_dim =
            static_cast<std::size_t>(rng.uniformInt(1, 4));
        layers.push_back(LayerSpec{output_dim, Activation::identity()});

        const InitRule rule =
            t % 2 == 0 ? InitRule::Xavier : InitRule::SmallUniform;
        Mlp net(input_dim, layers, rule, rng);

        const Vector x = drawInput(net, rng);
        Vector target(output_dim);
        for (double &v : target)
            v = rng.normal(0.0, 0.5);
        checkGradients(net, x, target);
    }
}

TEST(GradientCheckTest, SeedStreamsAreReproducibleAndDistinct)
{
    // The property suite leans on Rng::stream for its topology draws;
    // pin the discipline itself: same (seed, stream) -> same sequence,
    // different stream -> different sequence.
    Rng a = Rng::stream(2006, 3);
    Rng b = Rng::stream(2006, 3);
    Rng c = Rng::stream(2006, 4);
    bool any_differs = false;
    for (int i = 0; i < 16; ++i) {
        const double va = a.uniform();
        EXPECT_EQ(va, b.uniform());
        any_differs |= va != c.uniform();
    }
    EXPECT_TRUE(any_differs);
}
