/**
 * @file
 * Tests for the node-count / stop-threshold tuning protocol.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/contracts.hh"
#include "model/grid_search.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::GridSearchOptions;
using wcnn::model::gridSearch;
using wcnn::model::NnModelOptions;
using wcnn::numeric::Rng;

namespace {

Dataset
sineDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds({"x"}, {"y"});
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(-2, 2);
        ds.add({x}, {5.0 + std::sin(2.0 * x)});
    }
    return ds;
}

NnModelOptions
quickNn()
{
    NnModelOptions opts;
    opts.train.maxEpochs = 600;
    opts.seed = 3;
    return opts;
}

} // namespace

TEST(GridSearchTest, EvaluatesEveryCandidate)
{
    GridSearchOptions opts;
    opts.hiddenUnits = {4, 8};
    opts.targetLosses = {0.05, 0.01};
    const auto result =
        gridSearch(quickNn(), sineDataset(40, 1), opts);
    EXPECT_EQ(result.entries.size(), 4u);
}

TEST(GridSearchTest, BestIndexIsMinimum)
{
    GridSearchOptions opts;
    opts.hiddenUnits = {2, 6, 12};
    opts.targetLosses = {0.05, 0.01};
    const auto result =
        gridSearch(quickNn(), sineDataset(50, 2), opts);
    double best = std::numeric_limits<double>::infinity();
    for (const auto &e : result.entries)
        best = std::min(best, e.validationError);
    EXPECT_DOUBLE_EQ(result.best().validationError, best);
}

TEST(GridSearchTest, EntriesRecordCandidateSettings)
{
    GridSearchOptions opts;
    opts.hiddenUnits = {4};
    opts.targetLosses = {0.02};
    const auto result =
        gridSearch(quickNn(), sineDataset(30, 3), opts);
    ASSERT_EQ(result.entries.size(), 1u);
    EXPECT_EQ(result.entries[0].hiddenUnits, 4u);
    EXPECT_DOUBLE_EQ(result.entries[0].targetLoss, 0.02);
    EXPECT_GE(result.entries[0].validationError, 0.0);
}

TEST(GridSearchTest, TunedOptionsApplyWinner)
{
    GridSearchOptions opts;
    opts.hiddenUnits = {4, 10};
    opts.targetLosses = {0.05, 0.005};
    const NnModelOptions tuned =
        wcnn::model::tunedOptions(quickNn(), sineDataset(50, 4), opts);
    ASSERT_EQ(tuned.hiddenUnits.size(), 1u);
    const bool units_ok = tuned.hiddenUnits[0] == 4u ||
                          tuned.hiddenUnits[0] == 10u;
    EXPECT_TRUE(units_ok);
    const bool loss_ok = tuned.train.targetLoss == 0.05 ||
                         tuned.train.targetLoss == 0.005;
    EXPECT_TRUE(loss_ok);
}

TEST(GridSearchTest, DeterministicGivenSeed)
{
    GridSearchOptions opts;
    opts.hiddenUnits = {4, 8};
    opts.targetLosses = {0.02};
    opts.seed = 5;
    const Dataset ds = sineDataset(40, 5);
    const auto a = gridSearch(quickNn(), ds, opts);
    const auto b = gridSearch(quickNn(), ds, opts);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.entries[i].validationError,
                         b.entries[i].validationError);
    }
    EXPECT_EQ(a.bestIndex, b.bestIndex);
}

TEST(GridSearchTest, AdequateCapacityBeatsUnderCapacity)
{
    // A 1-unit net cannot represent two humps of sin(2x); a larger
    // net should win the search.
    GridSearchOptions opts;
    opts.hiddenUnits = {1, 12};
    opts.targetLosses = {0.005};
    NnModelOptions nn = quickNn();
    nn.train.maxEpochs = 1500;
    const auto result = gridSearch(nn, sineDataset(60, 6), opts);
    EXPECT_EQ(result.best().hiddenUnits, 12u);
}

TEST(GridSearchTest, EmptyCandidateGridIsAContractError)
{
#ifndef WCNN_NO_CONTRACTS
    // An empty axis is caller misuse (there is nothing to search), not
    // an environmental failure: it trips the precondition contract
    // rather than returning the typed runtime error family.
    GridSearchOptions no_units;
    no_units.hiddenUnits = {};
    EXPECT_THROW(gridSearch(quickNn(), sineDataset(30, 7), no_units),
                 wcnn::ContractViolation);

    GridSearchOptions no_losses;
    no_losses.targetLosses = {};
    EXPECT_THROW(gridSearch(quickNn(), sineDataset(30, 8), no_losses),
                 wcnn::ContractViolation);
#endif
}
