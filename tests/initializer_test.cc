/**
 * @file
 * Unit tests for weight initialization rules.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/initializer.hh"
#include "numeric/rng.hh"

using wcnn::nn::InitRule;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;

TEST(InitializerTest, SmallUniformBounds)
{
    Rng rng(1);
    const Matrix w =
        wcnn::nn::initWeights(InitRule::SmallUniform, 20, 30, rng);
    EXPECT_EQ(w.rows(), 20u);
    EXPECT_EQ(w.cols(), 30u);
    for (double v : w.data()) {
        EXPECT_GE(v, -0.5);
        EXPECT_LT(v, 0.5);
    }
}

TEST(InitializerTest, XavierBounds)
{
    Rng rng(2);
    const std::size_t fan_in = 16, fan_out = 8;
    const double bound = std::sqrt(6.0 / (fan_in + fan_out));
    const Matrix w =
        wcnn::nn::initWeights(InitRule::Xavier, fan_out, fan_in, rng);
    for (double v : w.data()) {
        EXPECT_GE(v, -bound);
        EXPECT_LT(v, bound);
    }
}

TEST(InitializerTest, HeBounds)
{
    Rng rng(3);
    const double bound = std::sqrt(6.0 / 25.0);
    const Matrix w = wcnn::nn::initWeights(InitRule::He, 4, 25, rng);
    for (double v : w.data()) {
        EXPECT_GE(v, -bound);
        EXPECT_LT(v, bound);
    }
}

TEST(InitializerTest, ZeroRule)
{
    Rng rng(4);
    const Matrix w = wcnn::nn::initWeights(InitRule::Zero, 3, 3, rng);
    for (double v : w.data())
        EXPECT_DOUBLE_EQ(v, 0.0);
    const auto b = wcnn::nn::initBiases(InitRule::Zero, 3, rng);
    for (double v : b)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(InitializerTest, BiasesSmall)
{
    Rng rng(5);
    const auto b =
        wcnn::nn::initBiases(InitRule::SmallUniform, 100, rng);
    for (double v : b) {
        EXPECT_GE(v, -0.1);
        EXPECT_LT(v, 0.1);
    }
}

TEST(InitializerTest, DeterministicGivenSeed)
{
    Rng a(6), b(6);
    const Matrix wa =
        wcnn::nn::initWeights(InitRule::Xavier, 5, 5, a);
    const Matrix wb =
        wcnn::nn::initWeights(InitRule::Xavier, 5, 5, b);
    EXPECT_TRUE(wa == wb);
}

TEST(InitializerTest, SymmetryIsBroken)
{
    // Random init must not produce identical rows (symmetric units
    // would never diverge under gradient descent).
    Rng rng(7);
    const Matrix w =
        wcnn::nn::initWeights(InitRule::SmallUniform, 4, 6, rng);
    EXPECT_NE(w.row(0), w.row(1));
    EXPECT_NE(w.row(2), w.row(3));
}
