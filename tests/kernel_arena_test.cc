/**
 * @file
 * The arena allocator behind the fast kernel paths: alignment of every
 * returned pointer, zero-size and odd-size requests, geometric chunk
 * growth, allocation-free reuse after reset(), mark/rewind (Frame)
 * semantics, and per-thread distinctness of threadArena(). The
 * concurrent hammering lives in chaos_kernel_arena_test.cc so it runs
 * under the `chaos` label (and the ASan/TSan presets).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/contracts.hh"
#include "numeric/kernels/arena.hh"

using wcnn::numeric::kernels::Arena;
using wcnn::numeric::kernels::kArenaAlignment;
using wcnn::numeric::kernels::threadArena;

namespace {

bool
isAligned(const double *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % kArenaAlignment == 0;
}

} // namespace

TEST(KernelArenaTest, EveryPointerIsCacheLineAligned)
{
    Arena arena(64);
    // Odd sizes force the cursor through every non-grain offset.
    for (std::size_t n : {1u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
        double *p = arena.alloc(n);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(isAligned(p)) << "misaligned block of " << n;
        // The block is writable end to end.
        std::memset(p, 0, n * sizeof(double));
    }
}

TEST(KernelArenaTest, ZeroSizeRequestIsValidAndFree)
{
    Arena arena;
    const std::size_t before = arena.inUse();
    double *p = arena.alloc(0);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(isAligned(p));
    EXPECT_EQ(arena.inUse(), before);
}

TEST(KernelArenaTest, DistinctAllocationsNeverOverlap)
{
    Arena arena(16); // tiny first chunk: forces growth quickly
    std::vector<std::pair<double *, std::size_t>> blocks;
    for (std::size_t n : {5u, 11u, 16u, 17u, 130u, 1u})
        blocks.emplace_back(arena.alloc(n), n);
    for (auto &[p, n] : blocks)
        for (std::size_t i = 0; i < n; ++i)
            p[i] = static_cast<double>(reinterpret_cast<std::uintptr_t>(p) + i);
    // If any two blocks overlapped, one of these reads would see the
    // other block's pattern.
    for (auto &[p, n] : blocks)
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(p[i], static_cast<double>(
                                reinterpret_cast<std::uintptr_t>(p) + i));
}

TEST(KernelArenaTest, ChunksGrowGeometrically)
{
    Arena arena(8);
    EXPECT_EQ(arena.chunkCount(), 0u); // lazy: nothing until first use
    arena.alloc(8);
    EXPECT_EQ(arena.chunkCount(), 1u);
    // Overflow the first chunk repeatedly; the chunk count must stay
    // logarithmic in the total footprint, not linear in the call count.
    for (int i = 0; i < 100; ++i)
        arena.alloc(8);
    EXPECT_LE(arena.chunkCount(), 8u);
    EXPECT_GE(arena.capacity(), 101u * 8u);
}

TEST(KernelArenaTest, OversizedRequestGetsItsOwnChunk)
{
    Arena arena(8);
    double *p = arena.alloc(10000);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(isAligned(p));
    std::memset(p, 0, 10000 * sizeof(double));
    EXPECT_GE(arena.capacity(), 10000u);
}

TEST(KernelArenaTest, ResetRetainsCapacityAndReusesMemory)
{
    Arena arena(32);
    double *first = arena.alloc(100);
    const std::size_t cap = arena.capacity();
    const std::size_t chunks = arena.chunkCount();
    arena.reset();
    EXPECT_EQ(arena.inUse(), 0u);
    EXPECT_EQ(arena.capacity(), cap);
    EXPECT_EQ(arena.chunkCount(), chunks);
    // Steady state: the same memory comes back, no new chunks appear.
    double *second = arena.alloc(100);
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.chunkCount(), chunks);
}

TEST(KernelArenaTest, MarkRewindReclaimsLifoScopes)
{
    Arena arena(64);
    arena.alloc(10);
    const std::size_t outer = arena.inUse();
    const Arena::Mark m = arena.mark();
    arena.alloc(20);
    arena.alloc(30);
    EXPECT_GT(arena.inUse(), outer);
    arena.rewind(m);
    EXPECT_EQ(arena.inUse(), outer);
}

TEST(KernelArenaTest, FrameIsRaiiRewind)
{
    Arena arena(64);
    double *outer_block = arena.alloc(8);
    const std::size_t outer = arena.inUse();
    double *inner_block = nullptr;
    {
        Arena::Frame frame(arena);
        inner_block = arena.alloc(8);
        EXPECT_NE(inner_block, outer_block);
        {
            Arena::Frame nested(arena);
            arena.alloc(400);
        }
        // The nested frame released its scratch; the inner block's
        // cursor position is restored.
        EXPECT_EQ(arena.inUse(), outer + 8);
    }
    EXPECT_EQ(arena.inUse(), outer);
    // The next allocation reuses the inner block's slot.
    EXPECT_EQ(arena.alloc(8), inner_block);
}

TEST(KernelArenaTest, ThreadArenasAreDistinctInstances)
{
    Arena *mine = &threadArena();
    EXPECT_EQ(mine, &threadArena()); // stable within a thread
    Arena *theirs = nullptr;
    std::thread t([&] { theirs = &threadArena(); });
    t.join();
    EXPECT_NE(mine, theirs);
}

#ifndef WCNN_NO_CONTRACTS
TEST(KernelArenaTest, ImplausibleRequestViolatesContract)
{
    Arena arena;
    EXPECT_THROW(static_cast<void>(
                     arena.alloc(std::size_t{1} << 41)),
                 wcnn::ContractViolation);
}
#endif
