/**
 * @file
 * Smoke coverage for the kernel bench suite (bench/kernel_report.hh).
 *
 * CI's kernel-bench job trusts `bench_micro_nn --kernels` to (a) emit
 * a valid BENCH_kernels.json array the tripwire can parse and (b)
 * report honest equivalence verdicts. This test runs the very same
 * runKernelSuite() against a temp path and pins both properties, so a
 * refactor of the suite cannot silently break the artifact contract.
 *
 * Timing assertions are deliberately lenient (speedup > 0.3, not the
 * CI tripwire's 1.2) — this is a functional test that must pass on
 * loaded single-core runners; the performance floor lives in CI where
 * the run is dedicated.
 */

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernel_report.hh"

namespace {

using wcnn::bench::KernelRecord;

/** One suite run shared by every test: measurement is the slow part. */
class KernelBenchSmokeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // ctest runs each TEST_F as its own process, all re-running
        // this SetUpTestSuite — the pid keeps parallel test processes
        // off each other's sink.
        path_ = new std::string(::testing::TempDir() +
                                "BENCH_kernels_smoke." +
                                std::to_string(::getpid()) + ".json");
        std::remove(path_->c_str());
        records_ = new std::vector<KernelRecord>(
            wcnn::bench::runKernelSuite(1, path_->c_str(),
                                        "kernel_bench_smoke_test"));
    }

    static void
    TearDownTestSuite()
    {
        std::remove(path_->c_str());
        delete records_;
        delete path_;
        records_ = nullptr;
        path_ = nullptr;
    }

    static std::string
    fileBody()
    {
        std::ifstream in(*path_);
        std::ostringstream all;
        all << in.rdbuf();
        return all.str();
    }

    static const KernelRecord *
    find(const std::string &kernel)
    {
        for (const KernelRecord &r : *records_)
            if (r.kernel == kernel)
                return &r;
        return nullptr;
    }

    static std::vector<KernelRecord> *records_;
    static std::string *path_;
};

std::vector<KernelRecord> *KernelBenchSmokeTest::records_ = nullptr;
std::string *KernelBenchSmokeTest::path_ = nullptr;

TEST_F(KernelBenchSmokeTest, SingleThreadRunCoversEveryKernel)
{
    ASSERT_EQ(records_->size(), 4u);
    EXPECT_NE(find("gemm"), nullptr);
    EXPECT_NE(find("gemv"), nullptr);
    EXPECT_NE(find("axpy"), nullptr);
    EXPECT_NE(find("fused-forward"), nullptr);
    // threads == 1 must NOT emit the multi-core figure.
    EXPECT_EQ(find("fused-forward-mt"), nullptr);
}

TEST_F(KernelBenchSmokeTest, EquivalenceVerdictsMatchTheAdmissionGate)
{
    // Reduction order is preserved everywhere but gemm, so the suite
    // must report bit identity there...
    for (const char *kernel : {"gemv", "axpy", "fused-forward"}) {
        const KernelRecord *r = find(kernel);
        ASSERT_NE(r, nullptr) << kernel;
        EXPECT_TRUE(r->bitIdentical) << kernel;
        EXPECT_EQ(r->maxUlp, 0u) << kernel;
    }
    // ...and gemm must stay inside the documented <= 4 ULP budget
    // (the fast path only drops the reference's zero-skip, so in
    // practice this is 0 — the budget is the contract, not the hope).
    const KernelRecord *gemm = find("gemm");
    ASSERT_NE(gemm, nullptr);
    EXPECT_LE(gemm->maxUlp, 4u);
}

TEST_F(KernelBenchSmokeTest, MeasurementsArePhysical)
{
    for (const KernelRecord &r : *records_) {
        EXPECT_GT(r.referenceSeconds, 0.0) << r.kernel;
        EXPECT_GT(r.fastSeconds, 0.0) << r.kernel;
        EXPECT_GT(r.speedup, 0.0) << r.kernel;
        EXPECT_GT(r.referenceGflops, 0.0) << r.kernel;
        EXPECT_GT(r.fastGflops, 0.0) << r.kernel;
        EXPECT_GT(r.bytesMoved, 0u) << r.kernel;
        EXPECT_EQ(r.threads, 1u) << r.kernel;
        EXPECT_EQ(r.bench, "kernel_bench_smoke_test") << r.kernel;
    }
    // Functional floor only — CI owns the 1.2x tripwire.
    const KernelRecord *fused = find("fused-forward");
    ASSERT_NE(fused, nullptr);
    EXPECT_GT(fused->speedup, 0.3);
}

TEST_F(KernelBenchSmokeTest, SinkIsAValidJsonArrayWithAllKeys)
{
    const std::string body = fileBody();
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.front(), '[');
    EXPECT_EQ(body.find_first_not_of(" \n]", body.find_last_of(']')),
              std::string::npos);

    // One object per record, every schema key present.
    std::size_t objects = 0;
    for (char c : body)
        objects += c == '{';
    EXPECT_EQ(objects, records_->size());
    for (const char *key :
         {"\"bench\"", "\"kernel\"", "\"shape\"", "\"threads\"",
          "\"reference_seconds\"", "\"fast_seconds\"", "\"speedup\"",
          "\"reference_gflops\"", "\"fast_gflops\"", "\"bytes_moved\"",
          "\"bit_identical\"", "\"max_ulp\""}) {
        EXPECT_NE(body.find(key), std::string::npos) << key;
    }
}

TEST_F(KernelBenchSmokeTest, AppendingKeepsTheArrayValid)
{
    // CI appends run after run to the tracked artifact; a second
    // append must extend the array, not corrupt it.
    KernelRecord extra;
    extra.bench = "kernel_bench_smoke_test";
    extra.kernel = "gemm";
    extra.shape = "append-check";
    extra.referenceSeconds = 1.0;
    extra.fastSeconds = 0.5;
    extra.speedup = 2.0;
    wcnn::bench::appendKernelRecord(extra, path_->c_str());

    const std::string body = fileBody();
    EXPECT_EQ(body.front(), '[');
    EXPECT_EQ(body.find_first_not_of(" \n]", body.find_last_of(']')),
              std::string::npos);
    std::size_t objects = 0;
    for (char c : body)
        objects += c == '{';
    EXPECT_EQ(objects, records_->size() + 1);
    EXPECT_NE(body.find("append-check"), std::string::npos);
}

} // namespace
