/**
 * @file
 * The admission gate for KernelPolicy::Fast (see
 * numeric/kernels/policy.hh): seeded property tests comparing every
 * fast kernel against its pinned reference twin over random shapes
 * (including single-row/column degenerates and non-multiple-of-block
 * tails), unaligned views, and a hostile value pool (denormals, +-0.0,
 * large magnitudes).
 *
 * Equivalence contract:
 *   - gemv, axpy, standardize/destandardize, the batched Mlp forward
 *     and the fused serving path must be BIT-IDENTICAL to the
 *     reference: their fast variants never reassociate a reduction,
 *     so there is no legal source of divergence.
 *   - gemm must stay within 4 ULP per element. The only mechanical
 *     difference is the dropped `if (a == 0.0) continue` zero-skip
 *     (see blas.hh), which can at most flip the sign of a zero, so in
 *     practice the distance is 0 with +-0.0 treated as equal — but the
 *     documented budget is what the gate enforces.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/contracts.hh"
#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/kernels/arena.hh"
#include "numeric/kernels/blas.hh"
#include "numeric/kernels/fused.hh"
#include "numeric/kernels/policy.hh"
#include "numeric/linalg.hh"
#include "numeric/matrix.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::ModelBundle;
namespace kernels = wcnn::numeric::kernels;
using kernels::KernelPolicy;
using kernels::PolicyGuard;

namespace {

/**
 * ULP distance between two doubles. +0.0 and -0.0 are 0 apart (the
 * zero-skip can only change zero signs); identical NaN payloads are 0
 * apart; NaN vs non-NaN is infinite.
 */
std::uint64_t
ulpDistance(double a, double b)
{
    if (std::isnan(a) || std::isnan(b)) {
        std::uint64_t ba = std::bit_cast<std::uint64_t>(a);
        std::uint64_t bb = std::bit_cast<std::uint64_t>(b);
        return ba == bb ? 0 : std::numeric_limits<std::uint64_t>::max();
    }
    if (a == b) // covers +0.0 vs -0.0
        return 0;
    // Map the sign-magnitude bit pattern onto a monotone integer line.
    auto key = [](double d) {
        const std::int64_t i = std::bit_cast<std::int64_t>(d);
        return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
    };
    const std::int64_t ka = key(a);
    const std::int64_t kb = key(b);
    return ka > kb ? static_cast<std::uint64_t>(ka) -
                         static_cast<std::uint64_t>(kb)
                   : static_cast<std::uint64_t>(kb) -
                         static_cast<std::uint64_t>(ka);
}

/**
 * Hostile value pool: ordinary magnitudes most of the time, with
 * exact zeros (to exercise the GEMM zero-skip), signed zeros,
 * denormals, and large magnitudes mixed in.
 */
double
poolValue(Rng &rng)
{
    switch (rng.uniformInt(0, 9)) {
    case 0:
        return 0.0;
    case 1:
        return -0.0;
    case 2:
        return 5e-324; // smallest denormal
    case 3:
        return -1e-310; // denormal
    case 4:
        return rng.uniform(-1.0, 1.0) * 1e100;
    default:
        return rng.uniform(-3.0, 3.0);
    }
}

std::vector<double>
poolBuffer(Rng &rng, std::size_t n)
{
    std::vector<double> v(n);
    for (double &e : v)
        e = poolValue(rng);
    return v;
}

void
expectBitIdentical(const std::vector<double> &a,
                   const std::vector<double> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::uint64_t ba = std::bit_cast<std::uint64_t>(a[i]);
        const std::uint64_t bb = std::bit_cast<std::uint64_t>(b[i]);
        ASSERT_EQ(ba, bb) << what << " diverges at element " << i << ": "
                          << a[i] << " vs " << b[i];
    }
}

} // namespace

// Policy plumbing ------------------------------------------------------

TEST(KernelPolicyTest, DefaultIsReference)
{
    // The suite must not be run with WCNN_KERNELS=fast: goldens in
    // sibling tests assume the reference default.
    EXPECT_EQ(kernels::policy(), KernelPolicy::Reference);
}

TEST(KernelPolicyTest, GuardSetsAndRestores)
{
    ASSERT_EQ(kernels::policy(), KernelPolicy::Reference);
    {
        PolicyGuard guard(KernelPolicy::Fast);
        EXPECT_EQ(kernels::policy(), KernelPolicy::Fast);
        {
            PolicyGuard inner(KernelPolicy::Reference);
            EXPECT_EQ(kernels::policy(), KernelPolicy::Reference);
        }
        EXPECT_EQ(kernels::policy(), KernelPolicy::Fast);
    }
    EXPECT_EQ(kernels::policy(), KernelPolicy::Reference);
}

TEST(KernelPolicyTest, NamesRoundTrip)
{
    EXPECT_STREQ(kernels::policyName(KernelPolicy::Reference),
                 "reference");
    EXPECT_STREQ(kernels::policyName(KernelPolicy::Fast), "fast");
    EXPECT_EQ(kernels::parsePolicy("reference"),
              KernelPolicy::Reference);
    EXPECT_EQ(kernels::parsePolicy("fast"), KernelPolicy::Fast);
}

#ifndef WCNN_NO_CONTRACTS
TEST(KernelPolicyTest, ParseRejectsUnknownNames)
{
    EXPECT_THROW(static_cast<void>(kernels::parsePolicy("turbo")),
                 wcnn::ContractViolation);
    EXPECT_THROW(static_cast<void>(kernels::parsePolicy("Fast")),
                 wcnn::ContractViolation);
}
#endif

TEST(KernelPolicyTest, InstallFromArgsStripsFlag)
{
    PolicyGuard guard(KernelPolicy::Reference);
    char prog[] = "prog";
    char flag[] = "--kernels";
    char value[] = "fast";
    char other[] = "--threads=2";
    char *argv[] = {prog, flag, value, other, nullptr};
    int argc = 4;
    EXPECT_TRUE(kernels::installFromArgs(argc, argv));
    EXPECT_EQ(kernels::policy(), KernelPolicy::Fast);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--threads=2");
}

TEST(KernelPolicyTest, InstallFromArgsEqualsForm)
{
    PolicyGuard guard(KernelPolicy::Fast);
    char prog[] = "prog";
    char flag[] = "--kernels=reference";
    char *argv[] = {prog, flag, nullptr};
    int argc = 2;
    EXPECT_FALSE(kernels::installFromArgs(argc, argv));
    EXPECT_EQ(kernels::policy(), KernelPolicy::Reference);
    EXPECT_EQ(argc, 1);
}

// GEMV: bit-identical --------------------------------------------------

TEST(KernelEquivalenceTest, GemvBitIdenticalOverRandomShapes)
{
    for (std::uint64_t trial = 0; trial < 200; ++trial) {
        Rng rng = Rng::stream(2006, trial);
        const auto m = static_cast<std::size_t>(rng.uniformInt(1, 67));
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 67));
        const std::vector<double> a = poolBuffer(rng, m * n);
        const std::vector<double> x = poolBuffer(rng, n);
        std::vector<double> y_ref(m, 0.0);
        std::vector<double> y_fast(m, 0.0);
        kernels::gemvReference(a.data(), x.data(), y_ref.data(), m, n);
        kernels::gemvFast(a.data(), x.data(), y_fast.data(), m, n);
        expectBitIdentical(y_ref, y_fast, "gemv");
    }
}

TEST(KernelEquivalenceTest, GemvBitIdenticalOnUnalignedViews)
{
    // The Matrix layer always hands the kernels aligned vector
    // storage, but the raw-pointer contract must hold for any offset:
    // run the same comparison through pointers displaced by one
    // element (8 bytes — guaranteed not 64-byte aligned).
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        Rng rng = Rng::stream(2007, trial);
        const auto m = static_cast<std::size_t>(rng.uniformInt(1, 33));
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 33));
        const std::vector<double> a = poolBuffer(rng, m * n + 1);
        const std::vector<double> x = poolBuffer(rng, n + 1);
        std::vector<double> y_ref(m + 1, 0.0);
        std::vector<double> y_fast(m + 1, 0.0);
        kernels::gemvReference(a.data() + 1, x.data() + 1,
                               y_ref.data() + 1, m, n);
        kernels::gemvFast(a.data() + 1, x.data() + 1,
                          y_fast.data() + 1, m, n);
        expectBitIdentical(y_ref, y_fast, "gemv (unaligned)");
    }
}

TEST(KernelEquivalenceTest, MatrixVectorProductDispatchIsBitIdentical)
{
    Rng rng = Rng::stream(2008, 0);
    const Matrix a = Matrix::random(17, 23, rng, -5.0, 5.0);
    Vector x(23);
    for (double &e : x)
        e = poolValue(rng);
    const Vector y_ref = a * x;
    PolicyGuard guard(KernelPolicy::Fast);
    const Vector y_fast = a * x;
    expectBitIdentical(y_ref, y_fast, "Matrix::operator*(Vector)");
}

// AXPY: bit-identical --------------------------------------------------

TEST(KernelEquivalenceTest, AxpyBitIdentical)
{
    for (std::uint64_t trial = 0; trial < 100; ++trial) {
        Rng rng = Rng::stream(2009, trial);
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 131));
        const double alpha = poolValue(rng);
        const std::vector<double> x = poolBuffer(rng, n);
        std::vector<double> y_ref = poolBuffer(rng, n);
        std::vector<double> y_fast = y_ref;
        kernels::axpyReference(alpha, x.data(), y_ref.data(), n);
        kernels::axpyFast(alpha, x.data(), y_fast.data(), n);
        expectBitIdentical(y_ref, y_fast, "axpy");
    }
}

// GEMM: <= 4 ULP -------------------------------------------------------

TEST(KernelEquivalenceTest, GemmWithinUlpBudgetOverRandomShapes)
{
    std::uint64_t worst = 0;
    for (std::uint64_t trial = 0; trial < 120; ++trial) {
        Rng rng = Rng::stream(2010, trial);
        const auto m = static_cast<std::size_t>(rng.uniformInt(1, 67));
        const auto k = static_cast<std::size_t>(rng.uniformInt(1, 67));
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 67));
        const std::vector<double> a = poolBuffer(rng, m * k);
        const std::vector<double> b = poolBuffer(rng, k * n);
        std::vector<double> c_ref(m * n, 0.0);
        std::vector<double> c_fast(m * n, 0.0);
        kernels::gemmReference(a.data(), b.data(), c_ref.data(), m, k,
                               n);
        kernels::gemmFast(a.data(), b.data(), c_fast.data(), m, k, n);
        for (std::size_t i = 0; i < c_ref.size(); ++i) {
            const std::uint64_t d = ulpDistance(c_ref[i], c_fast[i]);
            worst = std::max(worst, d);
            ASSERT_LE(d, 4u)
                << "gemm " << m << "x" << k << "x" << n
                << " exceeds the ULP budget at element " << i << ": "
                << c_ref[i] << " vs " << c_fast[i];
        }
    }
    // The k-order-preserving fast GEMM should in fact be exact (the
    // zero-skip only perturbs zero signs, which ulpDistance ignores).
    EXPECT_EQ(worst, 0u);
}

TEST(KernelEquivalenceTest, GemmExactOnBlockBoundaryShape)
{
    // 64x64x64 hits every cache-block edge exactly; 65/66/67 cover
    // one-past-tail in each dimension.
    for (std::size_t dim : {64u, 65u, 66u, 67u}) {
        Rng rng = Rng::stream(2011, dim);
        const std::vector<double> a = poolBuffer(rng, dim * dim);
        const std::vector<double> b = poolBuffer(rng, dim * dim);
        std::vector<double> c_ref(dim * dim, 0.0);
        std::vector<double> c_fast(dim * dim, 0.0);
        kernels::gemmReference(a.data(), b.data(), c_ref.data(), dim,
                               dim, dim);
        kernels::gemmFast(a.data(), b.data(), c_fast.data(), dim, dim,
                          dim);
        for (std::size_t i = 0; i < c_ref.size(); ++i)
            ASSERT_LE(ulpDistance(c_ref[i], c_fast[i]), 4u);
    }
}

TEST(KernelEquivalenceTest, GemmValueEqualOnZeroRichInputs)
{
    // All-zero and half-zero matrices maximize the zero-skip
    // divergence surface; values (not bit patterns) must still agree.
    Rng rng = Rng::stream(2012, 0);
    const std::size_t m = 31, k = 47, n = 29;
    std::vector<double> a(m * k, 0.0);
    for (std::size_t i = 0; i < a.size(); i += 2)
        a[i] = rng.uniform(-2.0, 2.0);
    const std::vector<double> b = poolBuffer(rng, k * n);
    std::vector<double> c_ref(m * n, 0.0);
    std::vector<double> c_fast(m * n, 0.0);
    kernels::gemmReference(a.data(), b.data(), c_ref.data(), m, k, n);
    kernels::gemmFast(a.data(), b.data(), c_fast.data(), m, k, n);
    for (std::size_t i = 0; i < c_ref.size(); ++i)
        ASSERT_EQ(ulpDistance(c_ref[i], c_fast[i]), 0u);
}

TEST(KernelEquivalenceTest, MatrixProductDispatchWithinBudget)
{
    Rng rng = Rng::stream(2013, 0);
    const Matrix a = Matrix::random(19, 37, rng, -4.0, 4.0);
    const Matrix b = Matrix::random(37, 11, rng, -4.0, 4.0);
    const Matrix c_ref = a * b;
    PolicyGuard guard(KernelPolicy::Fast);
    const Matrix c_fast = a * b;
    ASSERT_EQ(c_ref.rows(), c_fast.rows());
    ASSERT_EQ(c_ref.cols(), c_fast.cols());
    for (std::size_t i = 0; i < c_ref.size(); ++i)
        ASSERT_LE(
            ulpDistance(c_ref.data()[i], c_fast.data()[i]), 4u);
}

// seqDotMinus: one implementation, order-pinned ------------------------

TEST(KernelEquivalenceTest, SeqDotMinusMatchesManualChain)
{
    Rng rng = Rng::stream(2014, 0);
    const std::size_t n = 53;
    const std::vector<double> a = poolBuffer(rng, n);
    const std::vector<double> b = poolBuffer(rng, n);
    const double init = rng.uniform(-10.0, 10.0);
    double manual = init;
    for (std::size_t i = 0; i < n; ++i)
        manual -= a[i] * b[i];
    const double got = kernels::seqDotMinus(init, a.data(), b.data(), n);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(manual),
              std::bit_cast<std::uint64_t>(got));
}

// Standardize / destandardize: bit-identical ---------------------------

TEST(KernelEquivalenceTest, StandardizerMatrixPathsBitIdentical)
{
    for (std::uint64_t trial = 0; trial < 20; ++trial) {
        Rng rng = Rng::stream(2015, trial);
        const auto rows =
            static_cast<std::size_t>(rng.uniformInt(1, 67));
        const auto d = static_cast<std::size_t>(rng.uniformInt(1, 19));
        Matrix xs(rows, d);
        for (double &e : xs.data())
            e = poolValue(rng);
        Vector mu(d), sigma(d);
        for (std::size_t j = 0; j < d; ++j) {
            mu[j] = rng.uniform(-2.0, 2.0);
            sigma[j] = rng.uniform(0.1, 3.0);
        }
        const Standardizer std_ =
            Standardizer::fromMoments(mu, sigma);
        const Matrix z_ref = std_.transform(xs);
        const Matrix y_ref = std_.inverse(xs);
        PolicyGuard guard(KernelPolicy::Fast);
        const Matrix z_fast = std_.transform(xs);
        const Matrix y_fast = std_.inverse(xs);
        expectBitIdentical(z_ref.data(), z_fast.data(),
                           "Standardizer::transform(Matrix)");
        expectBitIdentical(y_ref.data(), y_fast.data(),
                           "Standardizer::inverse(Matrix)");
    }
}

TEST(KernelEquivalenceTest, StandardizeRowsSupportsInPlace)
{
    Rng rng = Rng::stream(2016, 0);
    const std::size_t rows = 13, d = 7;
    std::vector<double> x = poolBuffer(rng, rows * d);
    std::vector<double> mu(d), sigma(d);
    for (std::size_t j = 0; j < d; ++j) {
        mu[j] = rng.uniform(-1.0, 1.0);
        sigma[j] = rng.uniform(0.5, 2.0);
    }
    std::vector<double> out(rows * d);
    kernels::standardizeRows(x.data(), out.data(), rows, d, mu.data(),
                             sigma.data());
    std::vector<double> inplace = x;
    kernels::standardizeRows(inplace.data(), inplace.data(), rows, d,
                             mu.data(), sigma.data());
    expectBitIdentical(out, inplace, "standardizeRows in-place");

    kernels::destandardizeRows(out.data(), out.data(), rows, d,
                               mu.data(), sigma.data());
    std::vector<double> back(rows * d);
    kernels::destandardizeRows(inplace.data(), back.data(), rows, d,
                               mu.data(), sigma.data());
    expectBitIdentical(out, back, "destandardizeRows in-place");
}

// Batched forward + fused serving path: bit-identical ------------------

namespace {

Mlp
randomNet(std::uint64_t seed, std::size_t inputs,
          std::vector<std::size_t> hidden, std::size_t outputs)
{
    Rng rng = Rng::stream(2017, seed);
    std::vector<LayerSpec> layers;
    for (std::size_t h : hidden)
        layers.push_back(LayerSpec{h, Activation::logistic(1.0)});
    layers.push_back(LayerSpec{outputs, Activation::identity()});
    return Mlp(inputs, std::move(layers), InitRule::Xavier, rng);
}

} // namespace

TEST(KernelEquivalenceTest, BatchedForwardBitIdenticalAcrossTopologies)
{
    const struct
    {
        std::size_t inputs;
        std::vector<std::size_t> hidden;
        std::size_t outputs;
        std::size_t rows;
    } cases[] = {
        {1, {}, 1, 1},       // degenerate single-unit net
        {4, {8}, 5, 3},      // the Table 2 shape
        {4, {16}, 5, 64},    // exactly one row block
        {4, {16}, 5, 65},    // block + 1-row tail
        {7, {32, 16}, 3, 200}, // two hidden layers, multiple blocks
        {3, {5}, 2, 130},
    };
    std::uint64_t seed = 0;
    for (const auto &c : cases) {
        const Mlp net = randomNet(seed++, c.inputs, c.hidden, c.outputs);
        Rng rng = Rng::stream(2018, seed);
        Matrix xs(c.rows, c.inputs);
        for (double &e : xs.data())
            e = poolValue(rng);
        const Matrix out_ref = net.forward(xs);
        PolicyGuard guard(KernelPolicy::Fast);
        const Matrix out_fast = net.forward(xs);
        ASSERT_EQ(out_ref.rows(), out_fast.rows());
        ASSERT_EQ(out_ref.cols(), out_fast.cols());
        expectBitIdentical(out_ref.data(), out_fast.data(),
                           "Mlp::forward(Matrix)");
        // The fused entry point without moments must agree too.
        const Matrix out_fused =
            net.fusedForward(xs, nullptr, nullptr, nullptr, nullptr);
        expectBitIdentical(out_ref.data(), out_fused.data(),
                           "Mlp::fusedForward (no moments)");
    }
}

TEST(KernelEquivalenceTest, FusedServingPathBitIdentical)
{
    const Mlp net = randomNet(99, 4, {16}, 5);
    Rng rng = Rng::stream(2019, 0);
    Vector x_mu(4), x_sigma(4), y_mu(5), y_sigma(5);
    for (std::size_t j = 0; j < 4; ++j) {
        x_mu[j] = rng.uniform(-2.0, 2.0);
        x_sigma[j] = rng.uniform(0.2, 4.0);
    }
    for (std::size_t j = 0; j < 5; ++j) {
        y_mu[j] = rng.uniform(-10.0, 10.0);
        y_sigma[j] = rng.uniform(0.2, 8.0);
    }
    const ModelBundle bundle = ModelBundle::fromParts(
        net, Standardizer::fromMoments(x_mu, x_sigma),
        Standardizer::fromMoments(y_mu, y_sigma), {}, {});

    for (std::size_t rows : {1u, 37u, 64u, 129u}) {
        Matrix xs(rows, 4);
        for (double &e : xs.data())
            e = poolValue(rng);
        const Matrix out_ref = bundle.predictAll(xs);
        PolicyGuard guard(KernelPolicy::Fast);
        const Matrix out_fast = bundle.predictAll(xs);
        expectBitIdentical(out_ref.data(), out_fast.data(),
                           "ModelBundle::predictAll");
        // predict() stays on the reference composition; the batched
        // fast path must agree with it row by row.
        for (std::size_t r = 0; r < rows; ++r) {
            const Vector row = bundle.predict(xs.row(r));
            for (std::size_t j = 0; j < row.size(); ++j)
                ASSERT_EQ(std::bit_cast<std::uint64_t>(row[j]),
                          std::bit_cast<std::uint64_t>(out_fast(r, j)))
                    << "fused row " << r << " col " << j;
        }
    }
}

#ifndef WCNN_NO_CONTRACTS
TEST(KernelEquivalenceTest, FusedForwardRejectsHalfPairedMoments)
{
    const Mlp net = randomNet(7, 3, {4}, 2);
    const Matrix xs(2, 3, 0.5);
    Vector mu(3, 0.0);
    EXPECT_THROW(static_cast<void>(net.fusedForward(
                     xs, &mu, nullptr, nullptr, nullptr)),
                 wcnn::ContractViolation);
}
#endif

TEST(KernelEquivalenceTest, FusedForwardHandlesEmptyBatch)
{
    const Mlp net = randomNet(8, 3, {4}, 2);
    const Matrix xs(0, 3);
    const Matrix out =
        net.fusedForward(xs, nullptr, nullptr, nullptr, nullptr);
    EXPECT_EQ(out.rows(), 0u);
    EXPECT_EQ(out.cols(), 2u);
}

// Cholesky path stays bit-identical under the fast policy --------------

TEST(KernelEquivalenceTest, CholeskyPipelineUnchangedByPolicy)
{
    // seqDotMinus is sequential on both policies; the full normal-
    // equations path must give bit-identical coefficients.
    Rng rng = Rng::stream(2020, 0);
    const Matrix a = Matrix::random(40, 6, rng, -2.0, 2.0);
    Matrix spd = a.transposed() * a;
    for (std::size_t i = 0; i < spd.rows(); ++i)
        spd(i, i) += 1.0;
    Vector b(6);
    for (double &e : b)
        e = rng.uniform(-1.0, 1.0);

    const auto l_ref = wcnn::numeric::cholesky(spd);
    ASSERT_TRUE(l_ref.has_value());
    const Vector x_ref = wcnn::numeric::choleskySolve(*l_ref, b);

    PolicyGuard guard(KernelPolicy::Fast);
    const auto l_fast = wcnn::numeric::cholesky(spd);
    ASSERT_TRUE(l_fast.has_value());
    expectBitIdentical(l_ref->data(), l_fast->data(), "cholesky L");
    const Vector x_fast = wcnn::numeric::choleskySolve(*l_fast, b);
    expectBitIdentical(x_ref, x_fast, "choleskySolve");
}
