/**
 * @file
 * The lifecycle state machine end to end: a drifting stream promotes
 * a retrained candidate, a transient blip is rejected at the gate,
 * rollback() restores the displaced incumbent, and the promoted
 * registry stays consistent under concurrent predict traffic (the
 * suite the TSan preset exercises).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "lifecycle/controller.hh"
#include "lifecycle/host.hh"
#include "lifecycle/replay.hh"
#include "lifecycle_test_util.hh"
#include "serve/registry.hh"

namespace {

using namespace wcnn;
using namespace wcnn::lifecycle_test;
using lifecycle::Decision;
using lifecycle::LifecycleController;
using lifecycle::Stage;

void
feedAll(LifecycleController &controller,
        const lifecycle::Journal &journal)
{
    for (const lifecycle::ObservationRecord &rec : journal.records)
        controller.record(rec);
}

TEST(LifecycleController, SustainedDriftPromotes)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    feedAll(controller, promotionJournal(*incumbent));

    const auto stats = controller.stats();
    EXPECT_EQ(stats.drifts, 1u);
    EXPECT_EQ(stats.retrains, 1u);
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.rejections, 0u);

    // The registry now serves the candidate, version bumped, and the
    // displaced incumbent is waiting in the rollback history.
    EXPECT_EQ(registry.version(), 2u);
    EXPECT_EQ(registry.active()->tag(), "lifecycle-r0");
    EXPECT_EQ(controller.historyDepth(), 1u);
    EXPECT_EQ(controller.stage(), Stage::Monitoring);

    // Decision log: a drift, then a promote whose candidate error
    // beat the incumbent's.
    const std::vector<Decision> decisions = controller.decisions();
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_EQ(decisions[0].event, "drift");
    EXPECT_EQ(decisions[1].event, "promote");
    EXPECT_LT(decisions[1].candidateError,
              decisions[1].incumbentError);

    // The promoted bundle actually tracks the drifted surface.
    const double err = lifecycle::relativeError(
        registry.active()->predict({0.5, 0.5}),
        {driftedSurface(0.5, 0.5)});
    EXPECT_LT(err, 0.2);
}

TEST(LifecycleController, TransientBlipIsRejected)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    feedAll(controller, rejectionJournal(*incumbent));

    const auto stats = controller.stats();
    EXPECT_EQ(stats.drifts, 1u);
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_EQ(stats.rejections, 1u);

    // Incumbent untouched: same bundle object, version unchanged,
    // nothing to roll back to.
    EXPECT_EQ(registry.version(), 1u);
    EXPECT_EQ(registry.active().get(), incumbent.get());
    EXPECT_EQ(controller.historyDepth(), 0u);
    EXPECT_EQ(controller.stage(), Stage::Monitoring);
}

TEST(LifecycleController, RollbackRestoresDisplacedIncumbent)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    feedAll(controller, promotionJournal(*incumbent));
    ASSERT_EQ(controller.historyDepth(), 1u);
    ASSERT_NE(registry.active().get(), incumbent.get());

    EXPECT_TRUE(controller.rollback());
    EXPECT_EQ(registry.active().get(), incumbent.get());
    EXPECT_EQ(registry.version(), 3u); // swap counts like any deploy
    EXPECT_EQ(controller.historyDepth(), 0u);
    EXPECT_EQ(controller.stats().rollbacks, 1u);
    EXPECT_EQ(controller.decisions().back().event, "rollback");

    // History exhausted: a second rollback is a clean no-op.
    EXPECT_FALSE(controller.rollback());
    EXPECT_EQ(registry.version(), 3u);
}

TEST(LifecycleController, RollbackAbandonsInFlightShadow)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    // Promote once so the history is non-empty, then drift again and
    // stop mid-shadow.
    lifecycle::Journal journal = promotionJournal(*incumbent);
    numeric::Rng rng(33);
    appendSegment(journal, *incumbent, rng, 20, Truth::Base);
    feedAll(controller, journal);
    ASSERT_EQ(controller.stats().promotions, 1u);

    // The promoted bundle predicts the drifted surface, so *base*
    // observations now look like drift: push it into Shadowing.
    lifecycle::Journal blip;
    blip.inputDim = 2;
    blip.outputDim = 1;
    appendSegment(blip, *registry.active(), rng, 40, Truth::Base);
    for (const auto &rec : blip.records) {
        controller.record(rec);
        if (controller.stage() == Stage::Shadowing)
            break;
    }
    ASSERT_EQ(controller.stage(), Stage::Shadowing);

    EXPECT_TRUE(controller.rollback());
    EXPECT_EQ(controller.stage(), Stage::Monitoring);
    EXPECT_EQ(registry.active().get(), incumbent.get());
}

TEST(LifecycleController, HistoryIsBounded)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);

    lifecycle::LifecycleOptions opts = testOptions();
    opts.historyLimit = 2;
    LifecycleController controller(host, opts);

    // Alternate the ground truth so every retrain's candidate beats
    // the bundle promoted for the *other* surface: repeated
    // promotions.
    numeric::Rng rng(44);
    std::size_t promotions = 0;
    for (int flip = 0; flip < 8 && promotions < 4; ++flip) {
        const Truth truth =
            (flip % 2 == 0) ? Truth::Drifted : Truth::Base;
        lifecycle::Journal seg;
        seg.inputDim = 2;
        seg.outputDim = 1;
        appendSegment(seg, *registry.active(), rng, 48, truth);
        feedAll(controller, seg);
        promotions = controller.stats().promotions;
    }
    ASSERT_GE(promotions, 3u);
    EXPECT_LE(controller.historyDepth(), 2u);
}

TEST(LifecycleController, PromotionIsSafeUnderConcurrentPredicts)
{
    const auto incumbent = makeIncumbent();
    serve::BundleRegistry registry;
    registry.swap(incumbent);
    lifecycle::RegistryHost host(registry);
    LifecycleController controller(host, testOptions());

    // Reader threads hammer whatever bundle is active while the
    // controller promotes and rolls back underneath them — the
    // registry's snapshot semantics must keep every predict on a
    // complete bundle (TSan-clean by construction).
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> predicts{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&registry, &stop, &predicts] {
            while (!stop.load()) {
                const serve::BundlePtr bundle = registry.active();
                const numeric::Vector y = bundle->predict({0.3, 0.7});
                if (!y.empty())
                    predicts.fetch_add(1);
            }
        });
    }

    feedAll(controller, promotionJournal(*incumbent));
    EXPECT_TRUE(controller.rollback());

    stop.store(true);
    for (std::thread &reader : readers)
        reader.join();

    EXPECT_EQ(controller.stats().promotions, 1u);
    EXPECT_EQ(controller.stats().rollbacks, 1u);
    EXPECT_GT(predicts.load(), 0u);
    EXPECT_EQ(registry.active().get(), incumbent.get());
}

TEST(LifecycleController, DigestIsDeterministic)
{
    const auto incumbent = makeIncumbent();
    const lifecycle::Journal journal = promotionJournal(*incumbent);

    const auto run = [&] {
        serve::BundleRegistry registry;
        registry.swap(incumbent);
        lifecycle::RegistryHost host(registry);
        LifecycleController controller(host, testOptions());
        feedAll(controller, journal);
        return controller.digest();
    };
    const std::string first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first.size(), 16u);
}

} // namespace
