/**
 * @file
 * The drift detector's strike arithmetic: tumbling windows, the
 * threshold rule, patience, reset, and determinism — all functions of
 * record counts alone (lint R10), so two detectors fed the same error
 * stream agree on every drift point.
 */

#include <gtest/gtest.h>

#include <vector>

#include "lifecycle/drift.hh"
#include "lifecycle/record.hh"

namespace {

using namespace wcnn;
using lifecycle::DriftDetector;
using lifecycle::DriftOptions;

DriftOptions
smallOptions()
{
    DriftOptions opts;
    opts.window = 4;
    opts.threshold = 0.5;
    opts.patience = 2;
    return opts;
}

TEST(LifecycleDrift, QuietStreamNeverDrifts)
{
    DriftDetector detector(smallOptions());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(detector.feed(0.1));
    EXPECT_EQ(detector.windowsEvaluated(), 25u);
    EXPECT_EQ(detector.strikes(), 0u);
}

TEST(LifecycleDrift, DriftNeedsPatienceConsecutiveStrikes)
{
    DriftDetector detector(smallOptions());
    // First hot window: one strike, no drift yet.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(detector.feed(1.0));
    EXPECT_EQ(detector.strikes(), 1u);
    // Second hot window: second consecutive strike fires on its last
    // record.
    EXPECT_FALSE(detector.feed(1.0));
    EXPECT_FALSE(detector.feed(1.0));
    EXPECT_FALSE(detector.feed(1.0));
    EXPECT_TRUE(detector.feed(1.0));
}

TEST(LifecycleDrift, QuietWindowResetsTheStreak)
{
    DriftDetector detector(smallOptions());
    for (int i = 0; i < 4; ++i)
        detector.feed(1.0); // strike
    for (int i = 0; i < 4; ++i)
        detector.feed(0.0); // quiet window: streak broken
    EXPECT_EQ(detector.strikes(), 0u);
    // A single further hot window must not drift on its own.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(detector.feed(1.0));
    EXPECT_EQ(detector.strikes(), 1u);
}

TEST(LifecycleDrift, WindowMeanDecides)
{
    // Mean over the window decides, not any single record: 3 zeros +
    // one 1.9 gives mean 0.475 < 0.5 — no strike.
    DriftDetector detector(smallOptions());
    detector.feed(0.0);
    detector.feed(0.0);
    detector.feed(0.0);
    EXPECT_FALSE(detector.feed(1.9));
    EXPECT_EQ(detector.strikes(), 0u);
    EXPECT_NEAR(detector.lastWindowError(), 0.475, 1e-12);

    // 3 zeros + one 2.1: mean 0.525 > 0.5 — strike.
    detector.feed(0.0);
    detector.feed(0.0);
    detector.feed(0.0);
    EXPECT_FALSE(detector.feed(2.1));
    EXPECT_EQ(detector.strikes(), 1u);
}

TEST(LifecycleDrift, ResetForgetsEverything)
{
    DriftDetector detector(smallOptions());
    for (int i = 0; i < 6; ++i)
        detector.feed(1.0);
    detector.reset();
    EXPECT_EQ(detector.strikes(), 0u);
    EXPECT_EQ(detector.windowsEvaluated(), 0u);
    // The partial window was discarded: a full fresh window is needed
    // for the next strike.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(detector.feed(1.0));
    EXPECT_EQ(detector.strikes(), 1u);
}

TEST(LifecycleDrift, PatienceOneFiresOnFirstHotWindow)
{
    DriftOptions opts = smallOptions();
    opts.patience = 1;
    DriftDetector detector(opts);
    detector.feed(1.0);
    detector.feed(1.0);
    detector.feed(1.0);
    EXPECT_TRUE(detector.feed(1.0));
}

TEST(LifecycleDrift, DeterministicAcrossInstances)
{
    // Same stream, same decisions — the property the replay goldens
    // build on.
    std::vector<double> stream;
    double v = 0.05;
    for (int i = 0; i < 200; ++i) {
        v = v * 1.07 + 0.01;
        stream.push_back(v > 2.0 ? 2.0 : v);
    }
    DriftDetector a(smallOptions());
    DriftDetector b(smallOptions());
    for (double e : stream) {
        const bool da = a.feed(e);
        const bool db = b.feed(e);
        EXPECT_EQ(da, db);
        if (da) {
            a.reset();
            b.reset();
        }
    }
    EXPECT_EQ(a.windowsEvaluated(), b.windowsEvaluated());
    EXPECT_EQ(a.strikes(), b.strikes());
}

TEST(LifecycleDrift, RelativeErrorIsMeanOverIndicators)
{
    EXPECT_NEAR(lifecycle::relativeError({1.0, 2.0}, {2.0, 2.0}), 0.25,
                1e-9);
    EXPECT_NEAR(lifecycle::relativeError({1.0}, {1.0}), 0.0, 1e-12);
    EXPECT_EQ(lifecycle::relativeError({}, {}), 0.0);
    // Negative observations are compared in magnitude.
    EXPECT_NEAR(lifecycle::relativeError({-1.0}, {-2.0}), 0.5, 1e-9);
}

} // namespace
