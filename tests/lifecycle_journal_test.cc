/**
 * @file
 * The observation journal: round-trips, the append writer, and typed
 * rejection of malformed journal text. The journal is external input
 * (a file a human can edit), so every malformed shape must surface as
 * JournalError with a line number — never a contract trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "lifecycle/error.hh"
#include "lifecycle/journal.hh"

namespace {

using namespace wcnn;
using lifecycle::Journal;
using lifecycle::JournalError;
using lifecycle::ObservationRecord;

Journal
sampleJournal()
{
    Journal journal;
    journal.inputDim = 2;
    journal.outputDim = 1;
    for (std::uint64_t i = 0; i < 5; ++i) {
        ObservationRecord rec;
        rec.seq = i;
        const double base = static_cast<double>(i);
        rec.x = {0.125 + base, -3.0 / 7.0 * base};
        rec.predicted = {1.0 + base * 1e-13};
        rec.observed = {1.0 - base * 1e-13};
        journal.records.push_back(rec);
    }
    return journal;
}

TEST(LifecycleJournal, RoundTripsExactly)
{
    const Journal original = sampleJournal();
    std::ostringstream out;
    lifecycle::writeJournal(out, original);

    std::istringstream in(out.str());
    const Journal back = lifecycle::readJournal(in);

    ASSERT_EQ(back.inputDim, original.inputDim);
    ASSERT_EQ(back.outputDim, original.outputDim);
    ASSERT_EQ(back.records.size(), original.records.size());
    for (std::size_t i = 0; i < original.records.size(); ++i) {
        EXPECT_EQ(back.records[i].seq, i);
        // %.17g must round-trip every double bit-exactly.
        EXPECT_EQ(back.records[i].x, original.records[i].x);
        EXPECT_EQ(back.records[i].predicted,
                  original.records[i].predicted);
        EXPECT_EQ(back.records[i].observed,
                  original.records[i].observed);
    }
}

TEST(LifecycleJournal, WriterMatchesBatchWriter)
{
    const Journal journal = sampleJournal();
    const std::string path =
        testing::TempDir() + "lifecycle_journal_writer.journal";
    {
        lifecycle::JournalWriter writer(path, journal.inputDim,
                                        journal.outputDim);
        for (const ObservationRecord &rec : journal.records)
            writer.append(rec);
        EXPECT_EQ(writer.size(), journal.records.size());
    }
    std::ostringstream batch;
    lifecycle::writeJournal(batch, journal);

    std::ifstream in(path);
    std::ostringstream streamed;
    streamed << in.rdbuf();
    EXPECT_EQ(streamed.str(), batch.str());

    const Journal back = lifecycle::readJournal(path);
    EXPECT_EQ(back.records.size(), journal.records.size());
    std::remove(path.c_str());
}

TEST(LifecycleJournal, RejectsBadHeader)
{
    std::istringstream in("not-a-journal 1 2 1\n");
    EXPECT_THROW(lifecycle::readJournal(in), JournalError);

    std::istringstream version("wcnn-journal 9 2 1\n");
    EXPECT_THROW(lifecycle::readJournal(version), JournalError);

    std::istringstream empty("");
    EXPECT_THROW(lifecycle::readJournal(empty), JournalError);
}

TEST(LifecycleJournal, RejectsWrongValueCount)
{
    // Header promises 2 + 2*1 = 4 values per line; give 3.
    std::istringstream in("wcnn-journal 1 2 1\n1 2 3\n");
    try {
        lifecycle::readJournal(in);
        FAIL() << "expected JournalError";
    } catch (const JournalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(LifecycleJournal, RejectsUnparseableNumber)
{
    std::istringstream in("wcnn-journal 1 2 1\n1 2 x 4\n");
    EXPECT_THROW(lifecycle::readJournal(in), JournalError);
}

TEST(LifecycleJournal, RejectsMissingFile)
{
    EXPECT_THROW(lifecycle::readJournal(std::string(
                     "/nonexistent/lifecycle.journal")),
                 JournalError);
}

TEST(LifecycleJournal, ErrorKindsAreStable)
{
    try {
        std::istringstream in("bogus\n");
        lifecycle::readJournal(in);
        FAIL() << "expected JournalError";
    } catch (const JournalError &e) {
        EXPECT_EQ(e.kind(), std::string("lifecycle.journal"));
    }
}

} // namespace
