/**
 * @file
 * Shadow invisibility, pinned on the wire: while a candidate is under
 * shadow evaluation, the byte stream every client sees is IDENTICAL
 * to a server with no lifecycle attached — on both engines.
 *
 * The claim is structural (ServeCore::observe stages its Ack upstream
 * of the observation sink; the candidate predicts only inside the
 * controller and is never deployed mid-shadow), and this suite turns
 * it into the acceptance test: scripted mixed predict/observe traffic
 * is replayed against four servers — {threaded, epoll} x {lifecycle
 * on, off} — and all four response streams must be byte-equal, while
 * the lifecycle servers are verifiably mid-evaluation (a candidate
 * retrained, Shadowing stage, zero promotions).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lifecycle/controller.hh"
#include "lifecycle/host.hh"
#include "lifecycle_test_util.hh"
#include "serve/engine.hh"
#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"

namespace {

using namespace wcnn;
using namespace wcnn::lifecycle_test;
namespace net = serve::net;
using serve::EngineKind;

constexpr const char *kHost = "127.0.0.1";

/**
 * Lifecycle tuning that enters Shadowing fast and stays there: drift
 * after one hot window of 4, and a shadow window far longer than the
 * scripted traffic, so the candidate is under evaluation for the
 * whole observed run.
 */
lifecycle::LifecycleOptions
midShadowOptions()
{
    lifecycle::LifecycleOptions opts = testOptions();
    opts.drift.window = 4;
    opts.drift.patience = 1;
    opts.retrainWindow = 8;
    opts.shadowWindow = 100000;
    return opts;
}

/** The scripted binary byte stream: pipelined predicts and observes
 *  with drifted observations. */
net::Bytes
buildBinaryScript()
{
    net::Bytes all;
    numeric::Rng rng(77);
    const auto append = [&all](const net::Bytes &piece) {
        all.insert(all.end(), piece.begin(), piece.end());
    };
    // Enough drifted observations to trigger drift + retrain well
    // before the script ends, predicts interleaved throughout.
    for (int i = 0; i < 24; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        append(net::encodeRequest({a, b}));
        append(net::encodeObserve({a, b}, {driftedSurface(a, b)}));
    }
    // A bad observe (wrong dims) must produce the same typed error
    // with or without a sink attached.
    append(net::encodeObserve({1.0, 2.0, 3.0}, {1.0}));
    return all;
}

/** JSON spellings of both ops (a connection locks its framing mode on
 *  the first byte, so JSON traffic gets its own connection). */
net::Bytes
buildJsonScript()
{
    const std::string json =
        "{\"op\":\"observe\",\"x\":[0.5,0.5],\"y\":[9.5]}\n"
        "{\"op\":\"predict\",\"x\":[0.25,0.75]}\n";
    return net::Bytes(json.begin(), json.end());
}

/** Write the script, half-close, slurp the reply stream to EOF. */
net::Bytes
runClient(std::uint16_t port, const net::Bytes &script)
{
    net::TcpStream stream = net::TcpStream::connect(kHost, port);
    stream.writeAll(script.data(), script.size());
    stream.shutdownWrite();
    net::Bytes reply;
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while (stream.readSome(buf, sizeof(buf), n, 10000) ==
           net::ReadStatus::Data)
        reply.insert(reply.end(), buf, buf + n);
    return reply;
}

TEST(LifecycleShadowEquivalence, ShadowingIsInvisibleOnTheWire)
{
    const auto incumbent = makeIncumbent();
    const net::Bytes binary_script = buildBinaryScript();
    const net::Bytes json_script = buildJsonScript();

    net::Bytes baseline;
    bool have_baseline = false;

    for (const EngineKind kind :
         {EngineKind::Threaded, EngineKind::Epoll}) {
        for (const bool lifecycle_on : {false, true}) {
            SCOPED_TRACE(std::string(serve::engineName(kind)) +
                         (lifecycle_on ? "+lifecycle" : ""));
            auto server = serve::makeServer(kind, {});
            server->deploy(incumbent);

            std::unique_ptr<lifecycle::EngineHost> host;
            std::unique_ptr<lifecycle::LifecycleController> controller;
            if (lifecycle_on) {
                host = std::make_unique<lifecycle::EngineHost>(*server);
                controller =
                    std::make_unique<lifecycle::LifecycleController>(
                        *host, midShadowOptions());
                lifecycle::LifecycleController &ctl = *controller;
                server->setObservationSink(
                    [&ctl](const numeric::Vector &x,
                           const numeric::Vector &p,
                           const numeric::Vector &o) {
                        ctl.record(x, p, o);
                    });
            }

            server->start();
            net::Bytes reply =
                runClient(server->port(), binary_script);
            const net::Bytes json_reply =
                runClient(server->port(), json_script);
            reply.insert(reply.end(), json_reply.begin(),
                         json_reply.end());
            server->stop();

            if (!have_baseline) {
                baseline = reply;
                have_baseline = true;
                ASSERT_FALSE(baseline.empty());
            } else {
                EXPECT_EQ(reply, baseline)
                    << "reply stream diverged from the no-lifecycle "
                       "threaded baseline";
            }

            if (lifecycle_on) {
                // The invisibility claim only counts if a candidate
                // really was mid-evaluation while the bytes flowed.
                EXPECT_EQ(controller->stage(),
                          lifecycle::Stage::Shadowing);
                const auto stats = controller->stats();
                EXPECT_EQ(stats.drifts, 1u);
                EXPECT_EQ(stats.retrains, 1u);
                EXPECT_EQ(stats.promotions, 0u);
                // The bad-dims observe was rejected upstream of the
                // sink; JSON + binary good observes all arrived.
                EXPECT_EQ(stats.records, 25u);
                EXPECT_EQ(server->stats().droppedObservations, 0u);
            }
        }
    }
}

TEST(LifecycleShadowEquivalence, PromotionChangesPredictionsAtomically)
{
    // Counterpoint: once the shadow window *does* close and the
    // candidate wins, predictions change — proving the invariance
    // above was the shadow stage, not a disconnected controller.
    const auto incumbent = makeIncumbent();
    auto server = serve::makeServer(EngineKind::Threaded, {});
    server->deploy(incumbent);
    lifecycle::EngineHost host(*server);
    lifecycle::LifecycleController controller(host, testOptions());
    server->setObservationSink(
        [&controller](const numeric::Vector &x,
                      const numeric::Vector &p,
                      const numeric::Vector &o) {
            controller.record(x, p, o);
        });
    server->start();

    const numeric::Vector probe{0.5, 0.5};
    const numeric::Vector before = server->predict(probe);

    net::TcpStream stream =
        net::TcpStream::connect(kHost, server->port());
    numeric::Rng rng(78);
    for (int i = 0; i < 56; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        const net::Bytes frame =
            net::encodeObserve({a, b}, {driftedSurface(a, b)});
        stream.writeAll(frame.data(), frame.size());
    }
    stream.shutdownWrite();
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while (stream.readSome(buf, sizeof(buf), n, 10000) ==
           net::ReadStatus::Data) {
    }

    EXPECT_EQ(controller.stats().promotions, 1u);
    EXPECT_EQ(server->version(), 2u);
    const numeric::Vector after = server->predict(probe);
    server->stop();
    EXPECT_NE(before, after);
    EXPECT_LT(lifecycle::relativeError(
                  after, {driftedSurface(probe[0], probe[1])}),
              lifecycle::relativeError(
                  before, {driftedSurface(probe[0], probe[1])}));
}

} // namespace
