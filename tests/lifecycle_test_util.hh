/**
 * @file
 * Shared fixtures for the lifecycle test suites: a tiny incumbent
 * trained on a known analytic surface, and journal builders that
 * synthesize stable / drifted / reverted observation streams against
 * it. Everything is seeded, so every suite sees the same incumbent,
 * the same streams, and therefore the same decisions.
 */

#ifndef WCNN_TESTS_LIFECYCLE_TEST_UTIL_HH
#define WCNN_TESTS_LIFECYCLE_TEST_UTIL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "lifecycle/controller.hh"
#include "lifecycle/journal.hh"
#include "lifecycle/record.hh"
#include "model/nn_model.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"

namespace wcnn {
namespace lifecycle_test {

/** The surface the incumbent learns: smooth, easily fit by a tiny net. */
inline double
baseSurface(double a, double b)
{
    return 1.0 + 0.6 * a + 0.3 * b + 0.2 * a * b;
}

/** The drifted surface: same inputs, shifted response. */
inline double
driftedSurface(double a, double b)
{
    return 2.0 * baseSurface(a, b) + 1.5;
}

/** Small, fast, deterministic hyperparameters for test retrains. */
inline model::NnModelOptions
tinyModelOptions()
{
    model::NnModelOptions opts;
    opts.hiddenUnits = {6};
    opts.train.maxEpochs = 400;
    opts.train.targetLoss = 1e-4;
    opts.seed = 7;
    return opts;
}

/** Train the incumbent on baseSurface over [0,1]^2 (seeded). */
inline std::shared_ptr<const serve::ModelBundle>
makeIncumbent()
{
    data::Dataset ds({"a", "b"}, {"latency"});
    numeric::Rng rng(11);
    for (int i = 0; i < 96; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        ds.add({a, b}, {baseSurface(a, b)});
    }
    model::NnModel mdl(tinyModelOptions());
    mdl.fit(ds);
    return std::make_shared<const serve::ModelBundle>(
        serve::ModelBundle::fromModel(mdl, ds.inputs(), ds.outputs(),
                                      "incumbent"));
}

/** One journal segment's ground truth. */
enum class Truth
{
    Base,    ///< observations follow baseSurface (incumbent is right)
    Drifted, ///< observations follow driftedSurface (incumbent stale)
};

/**
 * Append `count` records to a journal: x drawn from `rng`, predicted
 * by `bundle`, observed from the segment's ground truth.
 */
inline void
appendSegment(lifecycle::Journal &journal,
              const serve::ModelBundle &bundle, numeric::Rng &rng,
              std::size_t count, Truth truth)
{
    for (std::size_t i = 0; i < count; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        lifecycle::ObservationRecord rec;
        rec.seq = journal.records.size();
        rec.x = {a, b};
        rec.predicted = bundle.predict(rec.x);
        rec.observed = {truth == Truth::Base ? baseSurface(a, b)
                                             : driftedSurface(a, b)};
        journal.records.push_back(std::move(rec));
    }
}

/** Controller options every suite shares: small windows, fast net. */
inline lifecycle::LifecycleOptions
testOptions()
{
    lifecycle::LifecycleOptions opts;
    opts.drift.window = 8;
    opts.drift.threshold = 0.25;
    opts.drift.patience = 2;
    opts.retrain.model = tinyModelOptions();
    opts.retrain.seed = 99;
    opts.retrainWindow = 16;
    opts.shadowWindow = 8;
    opts.historyLimit = 4;
    opts.threads = 1;
    return opts;
}

/**
 * A stream that drifts and stays drifted: 16 stable records, then 24
 * drifted ones. With testOptions() the detector strikes on the two
 * full drifted windows (drift at seq 31), the candidate retrains on
 * the 16 fully-drifted records and shadow-beats the incumbent over
 * the last 8 — exactly one promotion, landing on the final record.
 */
inline lifecycle::Journal
promotionJournal(const serve::ModelBundle &bundle)
{
    lifecycle::Journal journal;
    journal.inputDim = 2;
    journal.outputDim = 1;
    numeric::Rng rng(21);
    appendSegment(journal, bundle, rng, 16, Truth::Base);
    appendSegment(journal, bundle, rng, 24, Truth::Drifted);
    return journal;
}

/**
 * A transient blip: the stream drifts long enough to trigger a
 * retrain, then reverts to the base surface before the shadow window
 * — the incumbent wins the gate and the candidate is rejected.
 */
inline lifecycle::Journal
rejectionJournal(const serve::ModelBundle &bundle)
{
    lifecycle::Journal journal;
    journal.inputDim = 2;
    journal.outputDim = 1;
    numeric::Rng rng(22);
    appendSegment(journal, bundle, rng, 16, Truth::Base);
    appendSegment(journal, bundle, rng, 16, Truth::Drifted);
    appendSegment(journal, bundle, rng, 16, Truth::Base);
    return journal;
}

} // namespace lifecycle_test
} // namespace wcnn

#endif // WCNN_TESTS_LIFECYCLE_TEST_UTIL_HH
