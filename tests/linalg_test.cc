/**
 * @file
 * Unit and property tests for the dense linear-algebra solvers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/linalg.hh"
#include "numeric/rng.hh"

using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

namespace {

/** Random symmetric positive-definite matrix A = B^T B + eps I. */
Matrix
randomSpd(std::size_t n, Rng &rng)
{
    const Matrix b = Matrix::random(n, n, rng, -1, 1);
    Matrix a = b.transposed() * b;
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += 0.5;
    return a;
}

} // namespace

TEST(CholeskyTest, ReconstructsSpdMatrix)
{
    Rng rng(3);
    const Matrix a = randomSpd(5, rng);
    const auto l = wcnn::numeric::cholesky(a);
    ASSERT_TRUE(l.has_value());
    const Matrix recon = *l * l->transposed();
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_NEAR(recon(i, j), a(i, j), 1e-10);
}

TEST(CholeskyTest, FactorIsLowerTriangular)
{
    Rng rng(4);
    const Matrix a = randomSpd(4, rng);
    const auto l = wcnn::numeric::cholesky(a);
    ASSERT_TRUE(l.has_value());
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i + 1; j < 4; ++j)
            EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix)
{
    Matrix a{{1, 2}, {2, 1}}; // eigenvalues 3, -1
    EXPECT_FALSE(wcnn::numeric::cholesky(a).has_value());
}

TEST(CholeskyTest, SolveMatchesDirectSolve)
{
    Rng rng(5);
    const Matrix a = randomSpd(6, rng);
    Vector b(6);
    for (auto &v : b)
        v = rng.uniform(-1, 1);
    const auto l = wcnn::numeric::cholesky(a);
    ASSERT_TRUE(l.has_value());
    const Vector x = wcnn::numeric::choleskySolve(*l, b);
    const Vector ax = a * x;
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(SolveTest, KnownSystem)
{
    Matrix a{{2, 1}, {1, 3}};
    const auto x = wcnn::numeric::solve(a, {3, 5});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 0.8, 1e-12);
    EXPECT_NEAR((*x)[1], 1.4, 1e-12);
}

TEST(SolveTest, RequiresPivoting)
{
    // Zero leading pivot forces a row swap.
    Matrix a{{0, 1}, {1, 0}};
    const auto x = wcnn::numeric::solve(a, {2, 3});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 3.0, 1e-12);
    EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveTest, DetectsSingularMatrix)
{
    Matrix a{{1, 2}, {2, 4}};
    EXPECT_FALSE(wcnn::numeric::solve(a, {1, 2}).has_value());
}

TEST(LeastSquaresTest, ExactFitOnDeterminedSystem)
{
    // y = 2x + 1 sampled at 3 points, design [x, 1].
    Matrix design{{0, 1}, {1, 1}, {2, 1}};
    const auto coef = wcnn::numeric::leastSquares(design, {1, 3, 5});
    ASSERT_TRUE(coef.has_value());
    EXPECT_NEAR((*coef)[0], 2.0, 1e-10);
    EXPECT_NEAR((*coef)[1], 1.0, 1e-10);
}

TEST(LeastSquaresTest, MinimizesResidualOnOverdetermined)
{
    // Noisy y = 3x; OLS slope should be close to 3.
    Rng rng(6);
    const std::size_t n = 200;
    Matrix design(n, 1);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(-1, 1);
        design(i, 0) = x;
        y[i] = 3.0 * x + rng.normal(0.0, 0.01);
    }
    const auto coef = wcnn::numeric::leastSquares(design, y);
    ASSERT_TRUE(coef.has_value());
    EXPECT_NEAR((*coef)[0], 3.0, 0.01);
}

TEST(LeastSquaresTest, RidgeHandlesRankDeficiency)
{
    // Duplicate columns are rank deficient; ridge keeps it solvable.
    Matrix design{{1, 1}, {2, 2}, {3, 3}};
    EXPECT_FALSE(
        wcnn::numeric::leastSquares(design, {1, 2, 3}, 0.0).has_value());
    const auto coef =
        wcnn::numeric::leastSquares(design, {1, 2, 3}, 1e-8);
    ASSERT_TRUE(coef.has_value());
    // Prediction still matches even if the split is arbitrary.
    EXPECT_NEAR((*coef)[0] + (*coef)[1], 1.0, 1e-3);
}

TEST(InverseTest, IdentityInverse)
{
    const auto inv = wcnn::numeric::inverse(Matrix::identity(3));
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(*inv == Matrix::identity(3));
}

TEST(InverseTest, SingularReturnsNullopt)
{
    Matrix a{{1, 2}, {2, 4}};
    EXPECT_FALSE(wcnn::numeric::inverse(a).has_value());
}

/** Property: A * A^-1 == I over random well-conditioned matrices. */
class InversePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(InversePropertyTest, ProductWithInverseIsIdentity)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n));
    Matrix a = Matrix::random(n, n, rng, -1, 1);
    // Diagonal dominance keeps the matrix comfortably invertible.
    for (int i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);
    const auto inv = wcnn::numeric::inverse(a);
    ASSERT_TRUE(inv.has_value());
    const Matrix prod = a * *inv;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST_P(InversePropertyTest, SolveMatchesInverseApply)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) + 100);
    Matrix a = Matrix::random(n, n, rng, -1, 1);
    for (int i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);
    Vector b(n);
    for (auto &v : b)
        v = rng.uniform(-1, 1);
    const auto x = wcnn::numeric::solve(a, b);
    const auto inv = wcnn::numeric::inverse(a);
    ASSERT_TRUE(x.has_value());
    ASSERT_TRUE(inv.has_value());
    const Vector via_inverse = *inv * b;
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR((*x)[i], via_inverse[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InversePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));
