/**
 * @file
 * Tests for the OLS baseline (paper refs [2, 20, 21]).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/linear_model.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::LinearModel;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

namespace {

Dataset
linearDataset(std::size_t n, Rng &rng)
{
    // y1 = 2a - 3b + 1, y2 = -a + 0.5b - 2.
    Dataset ds({"a", "b"}, {"y1", "y2"});
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(-5, 5);
        const double b = rng.uniform(-5, 5);
        ds.add({a, b}, {2 * a - 3 * b + 1, -a + 0.5 * b - 2});
    }
    return ds;
}

} // namespace

TEST(LinearModelTest, UnfittedFlag)
{
    LinearModel mdl;
    EXPECT_FALSE(mdl.fitted());
    EXPECT_EQ(mdl.name(), "linear");
}

TEST(LinearModelTest, RecoversExactLinearRelation)
{
    Rng rng(1);
    const Dataset ds = linearDataset(30, rng);
    LinearModel mdl;
    mdl.fit(ds);
    ASSERT_TRUE(mdl.fitted());

    const Vector pred = mdl.predict({1.0, 2.0});
    EXPECT_NEAR(pred[0], 2 - 6 + 1, 1e-6);
    EXPECT_NEAR(pred[1], -1 + 1 - 2, 1e-6);
}

TEST(LinearModelTest, CoefficientsMatchGenerator)
{
    Rng rng(2);
    const Dataset ds = linearDataset(50, rng);
    LinearModel mdl;
    mdl.fit(ds);
    const auto &coef = mdl.coefficients();
    ASSERT_EQ(coef.rows(), 3u); // 2 inputs + intercept
    ASSERT_EQ(coef.cols(), 2u);
    EXPECT_NEAR(coef(0, 0), 2.0, 1e-6);
    EXPECT_NEAR(coef(1, 0), -3.0, 1e-6);
    EXPECT_NEAR(coef(2, 0), 1.0, 1e-6);
    EXPECT_NEAR(coef(2, 1), -2.0, 1e-6);
}

TEST(LinearModelTest, PredictAllShapes)
{
    Rng rng(3);
    const Dataset ds = linearDataset(10, rng);
    LinearModel mdl;
    mdl.fit(ds);
    const auto pred = mdl.predictAll(ds);
    EXPECT_EQ(pred.rows(), 10u);
    EXPECT_EQ(pred.cols(), 2u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_NEAR(pred(i, 0), ds[i].y[0], 1e-6);
}

TEST(LinearModelTest, CannotCaptureQuadratic)
{
    // The motivating limitation: y = x^2 on [-1, 1] has zero linear
    // trend, so OLS predicts (roughly) the mean everywhere.
    Dataset ds({"x"}, {"y"});
    for (double x = -1.0; x <= 1.0; x += 0.1)
        ds.add({x}, {x * x});
    LinearModel mdl;
    mdl.fit(ds);
    EXPECT_NEAR(mdl.predict({0.0})[0], mdl.predict({0.9})[0], 0.1);
    // Large error at the extremes.
    EXPECT_GT(std::fabs(mdl.predict({0.0})[0] - 0.0), 0.2);
}
