/**
 * @file
 * Unit tests for the loss functions.
 */

#include <gtest/gtest.h>

#include "nn/loss.hh"

using wcnn::numeric::Vector;

TEST(LossTest, MseKnownValues)
{
    EXPECT_DOUBLE_EQ(wcnn::nn::mseLoss({1, 2}, {1, 2}), 0.0);
    EXPECT_DOUBLE_EQ(wcnn::nn::mseLoss({3, 0}, {0, 4}), 12.5);
}

TEST(LossTest, SseKnownValues)
{
    EXPECT_DOUBLE_EQ(wcnn::nn::sseLoss({3, 0}, {0, 4}), 25.0);
}

TEST(LossTest, MseGradientDirection)
{
    const Vector g = wcnn::nn::mseGradient({2, 0}, {0, 0});
    // Positive residual -> positive gradient (step decreases output).
    EXPECT_GT(g[0], 0.0);
    EXPECT_DOUBLE_EQ(g[1], 0.0);
}

TEST(LossTest, MseGradientMatchesFiniteDifference)
{
    Vector pred{0.4, -1.2, 2.0};
    const Vector target{0.0, 1.0, 2.5};
    const Vector grad = wcnn::nn::mseGradient(pred, target);
    const double h = 1e-7;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        const double saved = pred[i];
        pred[i] = saved + h;
        const double up = wcnn::nn::mseLoss(pred, target);
        pred[i] = saved - h;
        const double down = wcnn::nn::mseLoss(pred, target);
        pred[i] = saved;
        EXPECT_NEAR(grad[i], (up - down) / (2 * h), 1e-6);
    }
}

TEST(LossTest, MseIsMeanOverOutputs)
{
    // Same residual spread over more outputs -> smaller MSE.
    EXPECT_DOUBLE_EQ(wcnn::nn::mseLoss({1}, {0}), 1.0);
    EXPECT_DOUBLE_EQ(wcnn::nn::mseLoss({1, 0}, {0, 0}), 0.5);
}
