/**
 * @file
 * Unit and property tests for numeric::Matrix and vector helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "numeric/matrix.hh"
#include "numeric/rng.hh"

using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

TEST(MatrixTest, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_EQ(m.size(), 0u);
}

TEST(MatrixTest, FillConstructor)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(MatrixTest, InitializerList)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 1);
    EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, RowAndColExtraction)
{
    Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.row(1), (Vector{3, 4}));
    EXPECT_EQ(m.col(0), (Vector{1, 3, 5}));
}

TEST(MatrixTest, SetRow)
{
    Matrix m(2, 2);
    m.setRow(1, {7, 8});
    EXPECT_DOUBLE_EQ(m(1, 0), 7);
    EXPECT_DOUBLE_EQ(m(1, 1), 8);
    EXPECT_DOUBLE_EQ(m(0, 0), 0);
}

TEST(MatrixTest, IdentityTimesVectorIsIdentityMap)
{
    const Matrix id = Matrix::identity(4);
    const Vector v{1, -2, 3, -4};
    EXPECT_EQ(id * v, v);
}

TEST(MatrixTest, MatMulKnownValues)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatMulNonSquare)
{
    Matrix a{{1, 0, 2}, {0, 1, 1}}; // 2x3
    Matrix b{{1, 2}, {3, 4}, {5, 6}}; // 3x2
    Matrix c = a * b;
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c(0, 0), 11);
    EXPECT_DOUBLE_EQ(c(1, 1), 10);
}

TEST(MatrixTest, TransposeIsInvolution)
{
    Rng rng(1);
    const Matrix m = Matrix::random(3, 5, rng, -1, 1);
    EXPECT_TRUE(m.transposed().transposed() == m);
}

TEST(MatrixTest, ArithmeticOperators)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    Matrix sum = a + b;
    Matrix diff = a - b;
    Matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(sum(0, 0), 5);
    EXPECT_DOUBLE_EQ(sum(1, 1), 5);
    EXPECT_DOUBLE_EQ(diff(0, 1), -1);
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6);
}

TEST(MatrixTest, CompoundOperators)
{
    Matrix a{{1, 1}, {1, 1}};
    a += Matrix{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(a(1, 1), 5);
    a -= Matrix{{1, 1}, {1, 1}};
    EXPECT_DOUBLE_EQ(a(0, 0), 1);
    a *= 3.0;
    EXPECT_DOUBLE_EQ(a(1, 0), 9);
}

TEST(MatrixTest, Hadamard)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{2, 2}, {2, 2}};
    Matrix h = a.hadamard(b);
    EXPECT_DOUBLE_EQ(h(0, 1), 4);
    EXPECT_DOUBLE_EQ(h(1, 1), 8);
}

TEST(MatrixTest, Apply)
{
    Matrix a{{1, 4}, {9, 16}};
    Matrix s = a.apply([](double x) { return std::sqrt(x); });
    EXPECT_DOUBLE_EQ(s(0, 1), 2);
    EXPECT_DOUBLE_EQ(s(1, 1), 4);
}

TEST(MatrixTest, FrobeniusNorm)
{
    Matrix a{{3, 0}, {0, 4}};
    EXPECT_DOUBLE_EQ(a.frobeniusNorm(), 5.0);
}

TEST(MatrixTest, RandomRespectsBounds)
{
    Rng rng(2);
    const Matrix m = Matrix::random(10, 10, rng, -0.25, 0.25);
    for (double v : m.data()) {
        EXPECT_GE(v, -0.25);
        EXPECT_LT(v, 0.25);
    }
}

TEST(MatrixTest, ToStringFormat)
{
    Matrix m{{1, 2}, {3, 4}};
    EXPECT_EQ(m.toString(), "1 2\n3 4\n");
}

TEST(VectorOpsTest, DotAndNorm)
{
    EXPECT_DOUBLE_EQ(wcnn::numeric::dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(wcnn::numeric::norm({3, 4}), 5.0);
}

TEST(VectorOpsTest, AddSubScale)
{
    EXPECT_EQ(wcnn::numeric::add({1, 2}, {3, 4}), (Vector{4, 6}));
    EXPECT_EQ(wcnn::numeric::sub({3, 4}, {1, 2}), (Vector{2, 2}));
    EXPECT_EQ(wcnn::numeric::scale({1, 2}, 3.0), (Vector{3, 6}));
}

TEST(VectorOpsTest, OuterProduct)
{
    const Matrix m = wcnn::numeric::outer({1, 2}, {3, 4, 5});
    ASSERT_EQ(m.rows(), 2u);
    ASSERT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 3);
    EXPECT_DOUBLE_EQ(m(1, 2), 10);
}

/** Property sweep over random shapes: algebraic identities. */
class MatrixPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatrixPropertyTest, TransposeOfProduct)
{
    const auto [r, k, c] = GetParam();
    Rng rng(static_cast<std::uint64_t>(r * 100 + k * 10 + c));
    const Matrix a = Matrix::random(r, k, rng, -2, 2);
    const Matrix b = Matrix::random(k, c, rng, -2, 2);
    const Matrix lhs = (a * b).transposed();
    const Matrix rhs = b.transposed() * a.transposed();
    ASSERT_EQ(lhs.rows(), rhs.rows());
    ASSERT_EQ(lhs.cols(), rhs.cols());
    for (std::size_t i = 0; i < lhs.rows(); ++i)
        for (std::size_t j = 0; j < lhs.cols(); ++j)
            EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
}

TEST_P(MatrixPropertyTest, DistributiveLaw)
{
    const auto [r, k, c] = GetParam();
    Rng rng(static_cast<std::uint64_t>(r + k + c));
    const Matrix a = Matrix::random(r, k, rng, -1, 1);
    const Matrix b = Matrix::random(k, c, rng, -1, 1);
    const Matrix d = Matrix::random(k, c, rng, -1, 1);
    const Matrix lhs = a * (b + d);
    const Matrix rhs = a * b + a * d;
    for (std::size_t i = 0; i < lhs.rows(); ++i)
        for (std::size_t j = 0; j < lhs.cols(); ++j)
            EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
}

TEST_P(MatrixPropertyTest, MatVecMatchesMatMat)
{
    const auto [r, k, c] = GetParam();
    (void)c;
    Rng rng(static_cast<std::uint64_t>(r * 7 + k));
    const Matrix a = Matrix::random(r, k, rng, -1, 1);
    const Matrix v = Matrix::random(k, 1, rng, -1, 1);
    const Vector prod = a * v.col(0);
    const Matrix ref = a * v;
    for (std::size_t i = 0; i < prod.size(); ++i)
        EXPECT_NEAR(prod[i], ref(i, 0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 5, 5), std::make_tuple(1, 7, 2),
                      std::make_tuple(8, 2, 8)));
