/**
 * @file
 * Unit tests for the paper's error metric and its companions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.hh"

namespace dm = wcnn::data;
using wcnn::numeric::Matrix;
using wcnn::numeric::Vector;

TEST(MetricsTest, RelativeErrorsKnown)
{
    const auto errs = dm::relativeErrors({10, 20}, {11, 18});
    ASSERT_EQ(errs.size(), 2u);
    EXPECT_NEAR(errs[0], 0.1, 1e-12);
    EXPECT_NEAR(errs[1], 0.1, 1e-12);
}

TEST(MetricsTest, RelativeErrorsSkipNearZeroActuals)
{
    const auto errs = dm::relativeErrors({0.0, 10.0}, {5.0, 11.0});
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NEAR(errs[0], 0.1, 1e-12);
}

TEST(MetricsTest, HarmonicRelativeErrorKnown)
{
    // errors 0.1 and 0.3 -> harmonic mean = 2/(10 + 10/3) = 0.15.
    const double e =
        dm::harmonicRelativeError({10, 10}, {11, 13});
    EXPECT_NEAR(e, 0.15, 1e-12);
}

TEST(MetricsTest, PerfectPredictionGivesTinyError)
{
    const double e = dm::harmonicRelativeError({1, 2, 3}, {1, 2, 3});
    EXPECT_LT(e, 1e-9);
}

TEST(MetricsTest, MapeIsArithmeticMean)
{
    EXPECT_NEAR(dm::mape({10, 10}, {11, 13}), 0.2, 1e-12);
}

TEST(MetricsTest, RmseKnown)
{
    EXPECT_NEAR(dm::rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(dm::rmse({}, {}), 0.0);
}

TEST(MetricsTest, MaeKnown)
{
    EXPECT_NEAR(dm::meanAbsoluteError({1, 2}, {2, 0}), 1.5, 1e-12);
}

TEST(MetricsTest, HarmonicLeqMape)
{
    // Harmonic mean never exceeds the arithmetic mean.
    const Vector actual{5, 10, 20, 40};
    const Vector pred{6, 10.5, 26, 41};
    EXPECT_LE(dm::harmonicRelativeError(actual, pred),
              dm::mape(actual, pred) + 1e-12);
}

TEST(MetricsTest, EvaluateBuildsPerColumnReport)
{
    Matrix actual{{10, 100}, {20, 200}};
    Matrix pred{{11, 100}, {22, 200}};
    const dm::ErrorReport report =
        dm::evaluate({"rt", "tput"}, actual, pred);
    ASSERT_EQ(report.names.size(), 2u);
    EXPECT_NEAR(report.harmonicError[0], 0.1, 1e-12);
    EXPECT_LT(report.harmonicError[1], 1e-9);
    EXPECT_NEAR(report.mape[0], 0.1, 1e-12);
    EXPECT_NEAR(report.rmse[1], 0.0, 1e-12);
    EXPECT_NEAR(report.r2[1], 1.0, 1e-12);
}

TEST(MetricsTest, ReportAverages)
{
    Matrix actual{{10, 10}, {10, 10}};
    Matrix pred{{11, 10}, {11, 10}};
    const dm::ErrorReport report =
        dm::evaluate({"a", "b"}, actual, pred);
    EXPECT_NEAR(report.averageHarmonicError(), 0.05, 1e-9);
    EXPECT_NEAR(report.averageAccuracy(), 0.95, 1e-9);
}
