/**
 * @file
 * Unit and property tests for the MLP: forward semantics (the paper's
 * perceptron formula) and exact backpropagated gradients checked
 * against finite differences.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/loss.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"

using wcnn::nn::Activation;
using wcnn::nn::Gradients;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

TEST(MlpTest, SinglePerceptronMatchesPaperFormula)
{
    // y = f(sum_i w_i x_i + b) with a logistic f (paper section 2.1;
    // our bias convention is +b where the paper writes -w0).
    Rng rng(1);
    Mlp net(2, {LayerSpec{1, Activation::logistic(1.0)}},
            InitRule::Zero, rng);
    net.weights(0)(0, 0) = 0.5;
    net.weights(0)(0, 1) = -1.0;
    net.biases(0)[0] = 0.25;

    const Vector x{2.0, 1.0};
    const double pre = 0.5 * 2.0 + (-1.0) * 1.0 + 0.25;
    const double expected = 1.0 / (1.0 + std::exp(-pre));
    EXPECT_NEAR(net.forward(x)[0], expected, 1e-12);
}

TEST(MlpTest, ShapesAndCounts)
{
    Rng rng(2);
    Mlp net(4,
            {LayerSpec{16, Activation::logistic(1.0)},
             LayerSpec{5, Activation::identity()}},
            InitRule::SmallUniform, rng);
    EXPECT_EQ(net.inputDim(), 4u);
    EXPECT_EQ(net.outputDim(), 5u);
    EXPECT_EQ(net.depth(), 2u);
    // (4*16 + 16) + (16*5 + 5)
    EXPECT_EQ(net.parameterCount(), 80u + 85u);
    EXPECT_EQ(net.forward({1, 2, 3, 4}).size(), 5u);
}

TEST(MlpTest, DescribeListsTopology)
{
    Rng rng(3);
    Mlp net(4,
            {LayerSpec{16, Activation::logistic(1.0)},
             LayerSpec{5, Activation::identity()}},
            InitRule::SmallUniform, rng);
    EXPECT_EQ(net.describe(), "4 -> 16 logistic(a=1) -> 5 identity");
}

TEST(MlpTest, CachedForwardMatchesPlainForward)
{
    Rng rng(4);
    Mlp net(3,
            {LayerSpec{7, Activation::tanh()},
             LayerSpec{2, Activation::identity()}},
            InitRule::Xavier, rng);
    const Vector x{0.3, -0.7, 1.2};
    Mlp::Cache cache;
    const Vector with_cache = net.forward(x, cache);
    const Vector plain = net.forward(x);
    ASSERT_EQ(with_cache.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_DOUBLE_EQ(with_cache[i], plain[i]);
    EXPECT_EQ(cache.activations.size(), 2u);
    EXPECT_EQ(cache.activations.back(), plain);
}

TEST(MlpTest, IdentityNetworkComputesAffineMap)
{
    Rng rng(5);
    Mlp net(2, {LayerSpec{2, Activation::identity()}}, InitRule::Zero,
            rng);
    net.weights(0) = wcnn::numeric::Matrix{{1, 2}, {3, 4}};
    net.biases(0) = {10, 20};
    const Vector y = net.forward(Vector{1, 1});
    EXPECT_DOUBLE_EQ(y[0], 13);
    EXPECT_DOUBLE_EQ(y[1], 27);
}

TEST(MlpTest, ApplyUpdateSubtractsStep)
{
    Rng rng(6);
    Mlp net(1, {LayerSpec{1, Activation::identity()}}, InitRule::Zero,
            rng);
    Gradients step = net.zeroGradients();
    step.weightGrads[0](0, 0) = 0.25;
    step.biasGrads[0][0] = -0.5;
    net.applyUpdate(step);
    EXPECT_DOUBLE_EQ(net.weights(0)(0, 0), -0.25);
    EXPECT_DOUBLE_EQ(net.biases(0)[0], 0.5);
}

TEST(GradientsTest, AddScaleAndNorm)
{
    Rng rng(7);
    Mlp net(2, {LayerSpec{2, Activation::identity()}}, InitRule::Zero,
            rng);
    Gradients a = net.zeroGradients();
    a.weightGrads[0](0, 0) = 3.0;
    a.biasGrads[0][1] = 4.0;
    Gradients b = net.zeroGradients();
    b.weightGrads[0](0, 0) = 1.0;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.weightGrads[0](0, 0), 4.0);
    a.scale(0.5);
    EXPECT_DOUBLE_EQ(a.weightGrads[0](0, 0), 2.0);
    EXPECT_DOUBLE_EQ(a.biasGrads[0][1], 2.0);
    EXPECT_DOUBLE_EQ(a.squaredNorm(), 8.0);
}

namespace {

/** Central-difference gradient of the MSE loss w.r.t. one parameter. */
double
numericGradient(Mlp &net, const Vector &x, const Vector &target,
                double &param)
{
    const double h = 1e-6;
    const double saved = param;
    param = saved + h;
    const double up = wcnn::nn::mseLoss(net.forward(x), target);
    param = saved - h;
    const double down = wcnn::nn::mseLoss(net.forward(x), target);
    param = saved;
    return (up - down) / (2 * h);
}

struct Topology
{
    std::vector<LayerSpec> layers;
    const char *label;
};

} // namespace

/** Exhaustive gradient check across topologies and activations. */
class MlpGradientTest : public ::testing::TestWithParam<int>
{
  protected:
    static std::vector<Topology> topologies()
    {
        return {
            {{LayerSpec{1, Activation::identity()}}, "linear"},
            {{LayerSpec{4, Activation::logistic(1.0)},
              LayerSpec{2, Activation::identity()}},
             "logistic-hidden"},
            {{LayerSpec{5, Activation::tanh()},
              LayerSpec{3, Activation::tanh()},
              LayerSpec{2, Activation::identity()}},
             "deep-tanh"},
            {{LayerSpec{4, Activation::logarithmic(1.0)},
              LayerSpec{1, Activation::identity()}},
             "logarithmic"},
            {{LayerSpec{6, Activation::logistic(2.5)},
              LayerSpec{2, Activation::logistic(1.0)}},
             "sigmoid-output"},
        };
    }
};

TEST_P(MlpGradientTest, BackwardMatchesFiniteDifferences)
{
    const Topology topo = topologies()[GetParam()];
    Rng rng(100 + GetParam());
    const std::size_t input_dim = 3;
    Mlp net(input_dim, topo.layers, InitRule::Xavier, rng);

    Vector x(input_dim), target(net.outputDim());
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    for (auto &v : target)
        v = rng.uniform(-1, 1);

    Mlp::Cache cache;
    const Vector out = net.forward(x, cache);
    const Gradients grads =
        net.backward(cache, wcnn::nn::mseGradient(out, target));

    for (std::size_t l = 0; l < net.depth(); ++l) {
        auto &w = net.weights(l);
        for (std::size_t i = 0; i < w.rows(); ++i) {
            for (std::size_t j = 0; j < w.cols(); ++j) {
                const double expected =
                    numericGradient(net, x, target, w(i, j));
                EXPECT_NEAR(grads.weightGrads[l](i, j), expected, 1e-5)
                    << topo.label << " W[" << l << "](" << i << ","
                    << j << ")";
            }
        }
        auto &b = net.biases(l);
        for (std::size_t i = 0; i < b.size(); ++i) {
            const double expected =
                numericGradient(net, x, target, b[i]);
            EXPECT_NEAR(grads.biasGrads[l][i], expected, 1e-5)
                << topo.label << " b[" << l << "][" << i << "]";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, MlpGradientTest,
                         ::testing::Range(0, 5));
