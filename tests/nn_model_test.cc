/**
 * @file
 * Tests for the paper's NN-backed performance model, including the
 * standardization recipe of section 3.1.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "data/metrics.hh"
#include "model/linear_model.hh"
#include "model/nn_model.hh"
#include "model/rbf_model.hh"
#include "nn/serialize.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::NnModel;
using wcnn::model::NnModelOptions;
using wcnn::numeric::Rng;

namespace {

/**
 * Non-linear 2-in/2-out synthetic workload with heterogeneous input
 * and output magnitudes — exactly the situation the standardization
 * rules target.
 */
Dataset
bumpyDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds({"threads", "rate"}, {"rt", "tput"});
    for (std::size_t i = 0; i < n; ++i) {
        const double threads = rng.uniform(1, 20);
        const double rate = rng.uniform(400, 600);
        const double rt =
            1.0 + 4.0 * std::exp(-0.5 * (threads - 10) * (threads - 10) /
                                 9.0) +
            rate / 400.0;
        const double tput = rate * (1.0 - std::exp(-threads / 5.0));
        ds.add({threads, rate}, {rt, tput});
    }
    return ds;
}

NnModelOptions
quickOptions()
{
    NnModelOptions opts;
    opts.hiddenUnits = {10};
    opts.train.maxEpochs = 2000;
    opts.train.targetLoss = 0.01;
    opts.seed = 5;
    return opts;
}

} // namespace

TEST(NnModelTest, LifecycleAndMetadata)
{
    NnModel mdl(quickOptions());
    EXPECT_FALSE(mdl.fitted());
    EXPECT_EQ(mdl.name(), "neural-network");
    const Dataset ds = bumpyDataset(40, 1);
    mdl.fit(ds);
    EXPECT_TRUE(mdl.fitted());
    EXPECT_GT(mdl.lastTraining().epochs, 0u);
    EXPECT_EQ(mdl.network().inputDim(), 2u);
    EXPECT_EQ(mdl.network().outputDim(), 2u);
}

TEST(NnModelTest, FitsNonLinearSurfaceWell)
{
    const Dataset ds = bumpyDataset(80, 2);
    NnModel mdl(quickOptions());
    mdl.fit(ds);
    const auto report = wcnn::data::evaluate(
        ds.outputs(), ds.yMatrix(), mdl.predictAll(ds));
    // Loose fit by design, but clearly in the right ballpark.
    EXPECT_LT(report.mape[0], 0.10);
    EXPECT_LT(report.mape[1], 0.10);
}

TEST(NnModelTest, BeatsLinearBaselineOnBump)
{
    const Dataset train = bumpyDataset(80, 3);
    const Dataset test = bumpyDataset(40, 4);

    NnModel nn(quickOptions());
    nn.fit(train);
    wcnn::model::LinearModel lin;
    lin.fit(train);

    const double nn_err = wcnn::data::harmonicRelativeError(
        test.yColumn(0), nn.predictAll(test).col(0));
    const double lin_err = wcnn::data::harmonicRelativeError(
        test.yColumn(0), lin.predictAll(test).col(0));
    EXPECT_LT(nn_err, lin_err);
}

TEST(NnModelTest, StandardizersReflectTrainingData)
{
    const Dataset ds = bumpyDataset(50, 5);
    NnModel mdl(quickOptions());
    mdl.fit(ds);
    // Input means should sit inside the sampled ranges.
    const auto &mu = mdl.inputTransform().means();
    EXPECT_GT(mu[0], 1.0);
    EXPECT_LT(mu[0], 20.0);
    EXPECT_GT(mu[1], 400.0);
    EXPECT_LT(mu[1], 600.0);
    EXPECT_TRUE(mdl.outputTransform().fitted());
}

TEST(NnModelTest, DisablingStandardizationDegradesUnscaledFit)
{
    // With raw inputs around 500 and small init weights, gradient
    // descent struggles (the paper's local-minimum argument).
    const Dataset ds = bumpyDataset(60, 6);

    NnModelOptions with = quickOptions();
    NnModelOptions without = quickOptions();
    without.standardizeInputs = false;
    without.standardizeOutputs = false;

    NnModel a(with), b(without);
    a.fit(ds);
    b.fit(ds);
    const double err_with = wcnn::data::mape(
        ds.yColumn(1), a.predictAll(ds).col(1));
    const double err_without = wcnn::data::mape(
        ds.yColumn(1), b.predictAll(ds).col(1));
    EXPECT_LT(err_with, err_without);
}

TEST(NnModelTest, DeterministicGivenSeed)
{
    const Dataset ds = bumpyDataset(30, 7);
    NnModel a(quickOptions()), b(quickOptions());
    a.fit(ds);
    b.fit(ds);
    const auto pa = a.predict({10, 500});
    const auto pb = b.predict({10, 500});
    EXPECT_DOUBLE_EQ(pa[0], pb[0]);
    EXPECT_DOUBLE_EQ(pa[1], pb[1]);
}

TEST(NnModelTest, SeedChangesInitialization)
{
    const Dataset ds = bumpyDataset(30, 8);
    NnModelOptions o1 = quickOptions();
    NnModelOptions o2 = quickOptions();
    o2.seed = o1.seed + 1;
    NnModel a(o1), b(o2);
    a.fit(ds);
    b.fit(ds);
    EXPECT_NE(a.predict({10, 500})[0], b.predict({10, 500})[0]);
}

TEST(NnModelTest, LooseThresholdStopsEarlierThanTight)
{
    const Dataset ds = bumpyDataset(60, 9);
    NnModelOptions loose = quickOptions();
    loose.train.targetLoss = 0.05;
    NnModelOptions tight = quickOptions();
    tight.train.targetLoss = 0.002;
    NnModel a(loose), b(tight);
    a.fit(ds);
    b.fit(ds);
    EXPECT_LE(a.lastTraining().epochs, b.lastTraining().epochs);
}

TEST(NnModelTest, SaveLoadRoundTripsExactly)
{
    const Dataset ds = bumpyDataset(40, 11);
    NnModel original(quickOptions());
    original.fit(ds);

    std::stringstream ss;
    original.save(ss);
    const NnModel loaded = NnModel::load(ss);
    ASSERT_TRUE(loaded.fitted());

    Rng rng(12);
    for (int t = 0; t < 20; ++t) {
        const wcnn::numeric::Vector x{rng.uniform(1, 20),
                                      rng.uniform(400, 600)};
        const auto a = original.predict(x);
        const auto b = loaded.predict(x);
        for (std::size_t j = 0; j < a.size(); ++j)
            EXPECT_DOUBLE_EQ(a[j], b[j]);
    }
}

TEST(NnModelTest, SaveLoadFile)
{
    const std::string path = ::testing::TempDir() + "/wcnn_model.txt";
    const Dataset ds = bumpyDataset(30, 13);
    NnModel original(quickOptions());
    original.fit(ds);
    original.save(path);
    const NnModel loaded = NnModel::load(path);
    EXPECT_DOUBLE_EQ(loaded.predict({10, 500})[0],
                     original.predict({10, 500})[0]);
    std::remove(path.c_str());
}

TEST(NnModelTest, LoadRejectsGarbage)
{
    std::stringstream ss("definitely-not-a-model 9");
    EXPECT_THROW(NnModel::load(ss), wcnn::nn::SerializeError);
}

TEST(RbfModelTest, FitsBumpAndExposesNetwork)
{
    const Dataset ds = bumpyDataset(80, 10);
    wcnn::model::RbfModel mdl(
        wcnn::nn::RbfNetwork::Options{.centers = 20}, 3);
    EXPECT_EQ(mdl.name(), "rbf");
    mdl.fit(ds);
    ASSERT_TRUE(mdl.fitted());
    EXPECT_GE(mdl.network().centerCount(), 1u);
    const auto report = wcnn::data::evaluate(
        ds.outputs(), ds.yMatrix(), mdl.predictAll(ds));
    EXPECT_LT(report.mape[0], 0.15);
}
