/**
 * @file
 * Bit-identity of every parallelized hot path.
 *
 * The parallel layer's contract (core/parallel.hh) is that thread
 * count changes wall time only: cross validation, grid search, surface
 * sweeps and sample collection must produce bit-identical results at
 * any thread count, and must match an inline re-implementation of the
 * historical serial algorithm. Comparisons below use exact double
 * equality on purpose — "close" would hide a broken seed discipline.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <memory>

#include "data/metrics.hh"
#include "data/split.hh"
#include "model/cross_validation.hh"
#include "model/grid_search.hh"
#include "model/nn_model.hh"
#include "model/surface.hh"
#include "numeric/rng.hh"
#include "numeric/stats.hh"
#include "sim/sample_space.hh"

using wcnn::data::Dataset;
using wcnn::model::CvOptions;
using wcnn::model::CvResult;
using wcnn::model::GridSearchOptions;
using wcnn::model::GridSearchResult;
using wcnn::model::NnModel;
using wcnn::model::NnModelOptions;
using wcnn::model::SurfaceRequest;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

namespace {

/** Thread counts every path is checked at (1 is the serial baseline). */
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/** Fast, fully deterministic sample collection (analytic source). */
Dataset
makeDataset(std::size_t n = 24)
{
    Rng rng(2026);
    const auto configs = wcnn::sim::latinHypercubeDesign(
        wcnn::sim::SampleSpace::paperLike(), n, rng);
    return wcnn::sim::collectAnalytic(
        configs, wcnn::sim::WorkloadParams::defaults());
}

/** Small network so each trial trains in milliseconds. */
NnModelOptions
fastNn()
{
    NnModelOptions opts;
    opts.hiddenUnits = {6};
    opts.train.maxEpochs = 250;
    opts.train.targetLoss = 0.05;
    return opts;
}

void
expectSameMatrix(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
}

void
expectSameDataset(const Dataset &a, const Dataset &b)
{
    ASSERT_EQ(a.size(), b.size());
    expectSameMatrix(a.xMatrix(), b.xMatrix());
    expectSameMatrix(a.yMatrix(), b.yMatrix());
}

CvResult
runCv(const Dataset &ds, std::size_t threads)
{
    CvOptions cv;
    cv.folds = 5;
    cv.seed = 7;
    cv.threads = threads;
    const NnModelOptions nn = fastNn();
    return wcnn::model::crossValidate(
        [&nn]() { return std::make_unique<NnModel>(nn); }, ds, cv);
}

} // namespace

TEST(ParallelDeterminismTest, CrossValidationIdenticalAtEveryThreadCount)
{
    const Dataset ds = makeDataset();
    const CvResult serial = runCv(ds, 1);
    for (std::size_t threads : kThreadCounts) {
        const CvResult parallel = runCv(ds, threads);
        ASSERT_EQ(parallel.trials.size(), serial.trials.size());
        for (std::size_t f = 0; f < serial.trials.size(); ++f) {
            const auto &st = serial.trials[f];
            const auto &pt = parallel.trials[f];
            EXPECT_EQ(pt.fold, st.fold);
            EXPECT_EQ(pt.validation.harmonicError,
                      st.validation.harmonicError);
            EXPECT_EQ(pt.training.harmonicError,
                      st.training.harmonicError);
            expectSameMatrix(pt.validationPredicted,
                             st.validationPredicted);
            expectSameMatrix(pt.trainPredicted, st.trainPredicted);
            expectSameDataset(pt.validationSet, st.validationSet);
        }
        EXPECT_EQ(parallel.averageValidationError(),
                  serial.averageValidationError());
    }
}

TEST(ParallelDeterminismTest, CrossValidationMatchesInlineSerialReference)
{
    // Re-implement the pre-parallel algorithm by hand: a plain fold
    // loop with per-sample predict() calls. The engine must reproduce
    // it exactly, batched predictAll() included.
    const Dataset ds = makeDataset();
    const CvResult engine = runCv(ds, 8);

    CvOptions cv;
    cv.folds = 5;
    cv.seed = 7;
    Rng rng(cv.seed);
    const wcnn::data::KFold kfold(ds.size(), cv.folds, rng);
    const NnModelOptions nn = fastNn();
    for (std::size_t f = 0; f < cv.folds; ++f) {
        const wcnn::data::Split split = kfold.split(ds, f);
        NnModel mdl(nn);
        mdl.fit(split.train);
        Matrix val_pred(split.validation.size(), ds.outputDim());
        for (std::size_t i = 0; i < split.validation.size(); ++i)
            val_pred.setRow(i, mdl.predict(split.validation[i].x));
        const wcnn::data::ErrorReport reference = wcnn::data::evaluate(
            ds.outputs(), split.validation.yMatrix(), val_pred);
        EXPECT_EQ(engine.trials[f].validation.harmonicError,
                  reference.harmonicError);
        expectSameMatrix(engine.trials[f].validationPredicted, val_pred);
    }
}

TEST(ParallelDeterminismTest, GridSearchIdenticalAtEveryThreadCount)
{
    const Dataset ds = makeDataset();
    const auto run = [&ds](std::size_t threads) {
        GridSearchOptions opts;
        opts.hiddenUnits = {4, 6};
        opts.targetLosses = {0.08, 0.05};
        opts.seed = 11;
        opts.threads = threads;
        NnModelOptions base = fastNn();
        return wcnn::model::gridSearch(base, ds, opts);
    };
    const GridSearchResult serial = run(1);
    for (std::size_t threads : kThreadCounts) {
        const GridSearchResult parallel = run(threads);
        EXPECT_EQ(parallel.bestIndex, serial.bestIndex);
        ASSERT_EQ(parallel.entries.size(), serial.entries.size());
        for (std::size_t c = 0; c < serial.entries.size(); ++c) {
            EXPECT_EQ(parallel.entries[c].hiddenUnits,
                      serial.entries[c].hiddenUnits);
            EXPECT_EQ(parallel.entries[c].targetLoss,
                      serial.entries[c].targetLoss);
            EXPECT_EQ(parallel.entries[c].validationError,
                      serial.entries[c].validationError);
        }
    }
}

TEST(ParallelDeterminismTest, GridSearchMatchesInlineSerialReference)
{
    // The historical serial protocol: one holdout split, candidates in
    // units-major order, running strict-< winner update.
    const Dataset ds = makeDataset();
    GridSearchOptions opts;
    opts.hiddenUnits = {4, 6};
    opts.targetLosses = {0.08, 0.05};
    opts.seed = 11;
    opts.threads = 8;
    const NnModelOptions base = fastNn();
    const GridSearchResult engine = wcnn::model::gridSearch(base, ds, opts);

    Rng rng(opts.seed);
    const wcnn::data::Split split =
        wcnn::data::trainValidationSplit(ds, opts.trainFraction, rng);
    std::size_t c = 0;
    std::size_t best_index = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t units : opts.hiddenUnits) {
        for (double target : opts.targetLosses) {
            NnModelOptions candidate_opts = base;
            candidate_opts.hiddenUnits = {units};
            candidate_opts.train.targetLoss = target;
            NnModel candidate(candidate_opts);
            candidate.fit(split.train);
            const wcnn::data::ErrorReport report = wcnn::data::evaluate(
                ds.outputs(), split.validation.yMatrix(),
                candidate.predictAll(split.validation));
            const double score =
                wcnn::numeric::mean(report.harmonicError);
            ASSERT_LT(c, engine.entries.size());
            EXPECT_EQ(engine.entries[c].hiddenUnits, units);
            EXPECT_EQ(engine.entries[c].targetLoss, target);
            EXPECT_EQ(engine.entries[c].validationError, score);
            if (score < best) {
                best = score;
                best_index = c;
            }
            ++c;
        }
    }
    EXPECT_EQ(engine.entries.size(), c);
    EXPECT_EQ(engine.bestIndex, best_index);
}

TEST(ParallelDeterminismTest, SurfaceSweepIdenticalAtEveryThreadCount)
{
    const Dataset ds = makeDataset();
    NnModel mdl(fastNn());
    mdl.fit(ds);

    SurfaceRequest req;
    req.axisA = 1;
    req.axisB = 3;
    req.indicator = 0;
    req.fixed = {560.0, 0.0, 16.0, 0.0};
    req.loA = 0.0;
    req.hiA = 20.0;
    req.loB = 14.0;
    req.hiB = 20.0;
    req.pointsA = 9;
    req.pointsB = 7;

    req.threads = 1;
    const auto serial = wcnn::model::sweepSurface(mdl, req, ds);
    for (std::size_t threads : kThreadCounts) {
        req.threads = threads;
        const auto parallel = wcnn::model::sweepSurface(mdl, req, ds);
        EXPECT_EQ(parallel.aValues, serial.aValues);
        EXPECT_EQ(parallel.bValues, serial.bValues);
        expectSameMatrix(parallel.z, serial.z);
    }

    // And against the obvious reference: one predict() per grid point.
    for (std::size_t i = 0; i < serial.aValues.size(); ++i) {
        for (std::size_t j = 0; j < serial.bValues.size(); ++j) {
            Vector probe = req.fixed;
            probe[req.axisA] = serial.aValues[i];
            probe[req.axisB] = serial.bValues[j];
            EXPECT_EQ(serial.z(i, j), mdl.predict(probe)[req.indicator]);
        }
    }
}

TEST(ParallelDeterminismTest, SimulatedCollectionIdenticalAtEveryThreadCount)
{
    // Replicate seeds derive from the configuration index, so the
    // stochastic simulator also collects bit-identically in parallel.
    Rng rng(99);
    auto configs = wcnn::sim::randomDesign(
        wcnn::sim::SampleSpace::paperLike(), 4, rng);
    for (auto &cfg : configs) {
        cfg.warmup = 4.0; // short windows: identity, not fidelity
        cfg.measure = 20.0;
    }
    const auto params = wcnn::sim::WorkloadParams::defaults();
    const Dataset serial =
        wcnn::sim::collectSimulated(configs, params, 500, 2, 1);
    for (std::size_t threads : kThreadCounts) {
        const Dataset parallel =
            wcnn::sim::collectSimulated(configs, params, 500, 2, threads);
        expectSameDataset(parallel, serial);
    }
}
