/**
 * @file
 * Tests for PCA and the Jacobi symmetric eigen-solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/pca.hh"
#include "numeric/rng.hh"

using wcnn::numeric::Matrix;
using wcnn::numeric::Pca;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

TEST(JacobiTest, DiagonalMatrixEigenvalues)
{
    Matrix a{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
    Vector values;
    Matrix vectors;
    wcnn::numeric::jacobiEigenSymmetric(a, values, vectors);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_NEAR(values[0], 3.0, 1e-12);
    EXPECT_NEAR(values[1], 2.0, 1e-12);
    EXPECT_NEAR(values[2], 1.0, 1e-12);
}

TEST(JacobiTest, Known2x2)
{
    // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
    Matrix a{{2, 1}, {1, 2}};
    Vector values;
    Matrix vectors;
    wcnn::numeric::jacobiEigenSymmetric(a, values, vectors);
    EXPECT_NEAR(values[0], 3.0, 1e-10);
    EXPECT_NEAR(values[1], 1.0, 1e-10);
    // First eigenvector is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiTest, ReconstructsMatrix)
{
    Rng rng(1);
    const Matrix b = Matrix::random(5, 5, rng, -1, 1);
    const Matrix a = b + b.transposed(); // symmetric
    Vector values;
    Matrix vectors;
    wcnn::numeric::jacobiEigenSymmetric(a, values, vectors);
    // A = V diag(values) V^T.
    Matrix diag(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        diag(i, i) = values[i];
    const Matrix recon = vectors * diag * vectors.transposed();
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
}

TEST(JacobiTest, EigenvectorsOrthonormal)
{
    Rng rng(2);
    const Matrix b = Matrix::random(6, 6, rng, -1, 1);
    const Matrix a = b + b.transposed();
    Vector values;
    Matrix vectors;
    wcnn::numeric::jacobiEigenSymmetric(a, values, vectors);
    const Matrix gram = vectors.transposed() * vectors;
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

namespace {

/** Samples stretched along a known direction. */
Matrix
anisotropicCloud(std::size_t n, Rng &rng)
{
    // Dominant direction (1, 1)/sqrt(2) with sd 3, minor sd 0.3.
    Matrix samples(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
        const double major = rng.normal(0, 3.0);
        const double minor = rng.normal(0, 0.3);
        samples(i, 0) = (major + minor) / std::sqrt(2.0) + 10.0;
        samples(i, 1) = (major - minor) / std::sqrt(2.0) - 5.0;
    }
    return samples;
}

} // namespace

TEST(PcaTest, FindsDominantDirection)
{
    Rng rng(3);
    const Matrix samples = anisotropicCloud(400, rng);
    Pca pca;
    Pca::Options opts;
    opts.standardize = false;
    pca.fit(samples, opts);
    const Vector first = pca.component(0);
    // (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(first[0]), 1.0 / std::sqrt(2.0), 0.03);
    EXPECT_NEAR(std::fabs(first[1]), 1.0 / std::sqrt(2.0), 0.03);
    EXPECT_GT(first[0] * first[1], 0.0); // same sign
}

TEST(PcaTest, ExplainedVarianceConcentrates)
{
    Rng rng(4);
    const Matrix samples = anisotropicCloud(400, rng);
    Pca pca;
    Pca::Options opts;
    opts.standardize = false;
    pca.fit(samples, opts);
    const Vector ratio = pca.explainedVarianceRatio();
    EXPECT_GT(ratio[0], 0.98);
    EXPECT_NEAR(ratio[0] + ratio[1], 1.0, 1e-9);
    EXPECT_EQ(pca.componentsFor(0.95), 1u);
    EXPECT_EQ(pca.componentsFor(1.0), 2u);
}

TEST(PcaTest, TransformInverseRoundTripFullRank)
{
    Rng rng(5);
    Matrix samples(50, 3);
    for (std::size_t i = 0; i < 50; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            samples(i, j) =
                rng.uniform(-2, 2) * (static_cast<double>(j) + 1.0);
    Pca pca;
    pca.fit(samples);
    for (std::size_t i = 0; i < 5; ++i) {
        const Vector x = samples.row(i);
        const Vector back = pca.inverse(pca.transform(x, 3));
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(back[j], x[j], 1e-8);
    }
}

TEST(PcaTest, TruncatedReconstructionLosesLittleOnLowRankData)
{
    Rng rng(6);
    const Matrix samples = anisotropicCloud(200, rng);
    Pca pca;
    Pca::Options opts;
    opts.standardize = false;
    pca.fit(samples, opts);
    double worst = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
        const Vector x = samples.row(i);
        const Vector back = pca.inverse(pca.transform(x, 1));
        worst = std::max(worst, std::fabs(back[0] - x[0]));
        worst = std::max(worst, std::fabs(back[1] - x[1]));
    }
    // Minor-axis sd is 0.3; 1-component reconstruction errs on that
    // order, far below the 3.0 major spread.
    EXPECT_LT(worst, 1.2);
}

TEST(PcaTest, StandardizationEqualizesUnits)
{
    // One feature in "milliseconds" (x1000 scale): without
    // standardization it dominates; with it, both matter equally.
    Rng rng(7);
    Matrix samples(300, 2);
    for (std::size_t i = 0; i < 300; ++i) {
        samples(i, 0) = rng.normal(0, 1);
        samples(i, 1) = rng.normal(0, 1) * 1000.0;
    }
    Pca raw, std_;
    Pca::Options no_std;
    no_std.standardize = false;
    raw.fit(samples, no_std);
    std_.fit(samples);
    EXPECT_GT(raw.explainedVarianceRatio()[0], 0.99);
    EXPECT_LT(std_.explainedVarianceRatio()[0], 0.65);
}

TEST(PcaTest, FittedFlag)
{
    Pca pca;
    EXPECT_FALSE(pca.fitted());
    Matrix samples{{1, 2}, {3, 4}, {5, 6}};
    pca.fit(samples);
    EXPECT_TRUE(pca.fitted());
    EXPECT_EQ(pca.dim(), 2u);
}
