/**
 * @file
 * Property-based round-trip tests over seeded random inputs. The two
 * persistence formats must satisfy:
 *
 *  - csv:   write(ds) parses back to an equal dataset, and
 *           write(read(write(ds))) is a byte-for-byte fixpoint;
 *  - model: write(net) loads to a network with bit-identical forward
 *           behavior and parameters, and the text form is a fixpoint.
 *
 * Generators draw shapes, names, magnitudes, and activations from a
 * seeded Rng so each run covers many structures reproducibly. The
 * suites also pin the rejection properties: non-finite values, empty
 * fields, and truncated payloads must raise the typed wcnn::IoError
 * family, never a contract abort or silent acceptance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hh"
#include "data/csv.hh"
#include "nn/serialize.hh"
#include "numeric/rng.hh"

using wcnn::data::CsvError;
using wcnn::data::Dataset;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::nn::SerializeError;
using wcnn::nn::Serializer;
using wcnn::numeric::Rng;

namespace {

/** A value whose magnitude spans ~60 decades, sign included. */
double
wildDouble(Rng &rng)
{
    const double mantissa = rng.uniform(-1.0, 1.0);
    const double scale = rng.uniform(-30.0, 30.0);
    return mantissa * std::pow(10.0, scale);
}

/** Random dataset: 1-5 inputs, 1-3 outputs, 0-40 rows. */
Dataset
randomDataset(std::uint64_t seed)
{
    Rng rng(seed);
    const auto n_in = static_cast<std::size_t>(rng.uniform(1.0, 5.999));
    const auto n_out = static_cast<std::size_t>(rng.uniform(1.0, 3.999));
    const auto rows = static_cast<std::size_t>(rng.uniform(0.0, 40.999));
    std::vector<std::string> in_names, out_names;
    for (std::size_t i = 0; i < n_in; ++i)
        in_names.push_back("in" + std::to_string(i));
    for (std::size_t i = 0; i < n_out; ++i)
        out_names.push_back("out" + std::to_string(i));
    Dataset ds(in_names, out_names);
    for (std::size_t r = 0; r < rows; ++r) {
        wcnn::numeric::Vector x(n_in), y(n_out);
        for (auto &v : x)
            v = wildDouble(rng);
        for (auto &v : y)
            v = wildDouble(rng);
        ds.add(std::move(x), std::move(y));
    }
    return ds;
}

/** Random network: 1-3 hidden layers, mixed activations. */
Mlp
randomNet(std::uint64_t seed)
{
    Rng rng(seed);
    const auto input_dim =
        static_cast<std::size_t>(rng.uniform(1.0, 6.999));
    const auto hidden = static_cast<std::size_t>(rng.uniform(1.0, 3.999));
    std::vector<LayerSpec> layers;
    for (std::size_t l = 0; l < hidden; ++l) {
        const auto units =
            static_cast<std::size_t>(rng.uniform(1.0, 9.999));
        const int pick = static_cast<int>(rng.uniform(0.0, 3.999));
        Activation act = Activation::identity();
        if (pick == 0)
            act = Activation::logistic(rng.uniform(0.5, 4.0));
        else if (pick == 1)
            act = Activation::tanh();
        else if (pick == 2)
            act = Activation::relu();
        layers.push_back(LayerSpec{units, act});
    }
    layers.push_back(LayerSpec{1, Activation::identity()});
    return Mlp(input_dim, std::move(layers), InitRule::Xavier, rng);
}

} // namespace

TEST(PropertyRoundTrip, CsvWriteReadPreservesEveryBit)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const Dataset original = randomDataset(seed);
        std::stringstream ss;
        wcnn::data::writeCsv(original, ss);
        const Dataset loaded = wcnn::data::readCsv(ss);

        ASSERT_EQ(loaded.size(), original.size()) << "seed " << seed;
        EXPECT_EQ(loaded.inputs(), original.inputs());
        EXPECT_EQ(loaded.outputs(), original.outputs());
        for (std::size_t i = 0; i < original.size(); ++i) {
            EXPECT_EQ(loaded[i].x, original[i].x)
                << "seed " << seed << " row " << i;
            EXPECT_EQ(loaded[i].y, original[i].y)
                << "seed " << seed << " row " << i;
        }
    }
}

TEST(PropertyRoundTrip, CsvWriteIsAFixpointOfReadWrite)
{
    // write(read(text)) == text: one round trip canonicalizes, further
    // trips change nothing.
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        std::stringstream first;
        wcnn::data::writeCsv(randomDataset(seed), first);
        const std::string text = first.str();

        std::stringstream reread(text);
        std::stringstream second;
        wcnn::data::writeCsv(wcnn::data::readCsv(reread), second);
        EXPECT_EQ(second.str(), text) << "seed " << seed;
    }
}

TEST(PropertyRoundTrip, CsvRejectsNonFiniteValues)
{
    // A dataset that reaches disk with NaN/Inf cells would poison every
    // consumer downstream; the reader refuses them with a typed error.
    const char *cells[] = {"nan",  "NaN",  "inf",
                           "-inf", "INF",  "infinity"};
    for (const char *cell : cells) {
        std::stringstream ss("x:a,y:b\n1," + std::string(cell) + "\n");
        try {
            (void)wcnn::data::readCsv(ss);
            FAIL() << "accepted non-finite cell " << cell;
        } catch (const CsvError &e) {
            EXPECT_EQ(e.kind(), "io.csv") << cell;
        }
    }
}

TEST(PropertyRoundTrip, CsvRejectsEmptyFields)
{
    const char *rows[] = {"1,\n", ",1\n", "1,,2\n"};
    for (const char *row : rows) {
        std::stringstream ss("x:a,y:b\n" + std::string(row));
        EXPECT_THROW((void)wcnn::data::readCsv(ss), CsvError) << row;
    }
}

TEST(PropertyRoundTrip, CsvErrorsAreIoErrors)
{
    // The whole csv error family is catchable as wcnn::IoError (and as
    // wcnn::Error) so callers can treat persistence failures uniformly.
    std::stringstream ss("x:a,y:b\n1\n");
    try {
        (void)wcnn::data::readCsv(ss);
        FAIL() << "ragged row accepted";
    } catch (const wcnn::IoError &e) {
        EXPECT_EQ(e.kind(), "io.csv");
    }
}

TEST(PropertyRoundTrip, ModelLoadHasBitIdenticalForwardBehavior)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const Mlp net = randomNet(seed);
        std::stringstream ss;
        Serializer::write(net, ss);
        const Mlp loaded = Serializer::read(ss);

        ASSERT_EQ(loaded.inputDim(), net.inputDim()) << "seed " << seed;
        EXPECT_EQ(loaded.describe(), net.describe());
        for (std::size_t l = 0; l < net.depth(); ++l) {
            EXPECT_TRUE(loaded.weights(l) == net.weights(l))
                << "seed " << seed << " layer " << l;
            EXPECT_EQ(loaded.biases(l), net.biases(l));
        }

        Rng probe(seed * 1000 + 7);
        for (int trial = 0; trial < 5; ++trial) {
            wcnn::numeric::Vector x(net.inputDim());
            for (auto &v : x)
                v = probe.uniform(-3, 3);
            EXPECT_EQ(net.forward(x), loaded.forward(x))
                << "seed " << seed;
        }
    }
}

TEST(PropertyRoundTrip, ModelWriteIsAFixpointOfReadWrite)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        std::stringstream first;
        Serializer::write(randomNet(seed), first);
        const std::string text = first.str();

        std::stringstream reread(text);
        std::stringstream second;
        Serializer::write(Serializer::read(reread), second);
        EXPECT_EQ(second.str(), text) << "seed " << seed;
    }
}

TEST(PropertyRoundTrip, ModelRejectsNonFiniteWeights)
{
    // Corrupt one weight of a valid payload to nan/inf; the reader
    // must refuse rather than load a poisoned network.
    std::stringstream ss;
    Serializer::write(randomNet(1), ss);
    const std::string text = ss.str();
    for (const char *bad : {"nan", "inf", "-inf"}) {
        // Replace the final numeric token (a bias value).
        const std::string trimmed =
            text.substr(0, text.find_last_not_of(" \n") + 1);
        const auto cut = trimmed.find_last_of(" \n");
        std::stringstream corrupted(trimmed.substr(0, cut + 1) + bad
                                    + "\n");
        try {
            (void)Serializer::read(corrupted);
            FAIL() << "accepted non-finite weight " << bad;
        } catch (const SerializeError &e) {
            EXPECT_EQ(e.kind(), "io.model") << bad;
        }
    }
}

TEST(PropertyRoundTrip, EveryTruncationOfAModelFileIsRejected)
{
    // Chop a valid payload at every prefix length up to the start of
    // the final token (a shorter prefix of the last number would still
    // parse); each prefix must raise SerializeError — never crash or
    // mis-load.
    std::stringstream ss;
    Serializer::write(randomNet(2), ss);
    const std::string text = ss.str();
    const std::string trimmed =
        text.substr(0, text.find_last_not_of(" \n") + 1);
    const std::size_t last_token = trimmed.find_last_of(" \n") + 1;
    for (std::size_t len = 0; len <= last_token; len += 7) {
        std::stringstream cut(text.substr(0, len));
        EXPECT_THROW((void)Serializer::read(cut), SerializeError)
            << "prefix length " << len;
    }
}
