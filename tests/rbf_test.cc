/**
 * @file
 * Tests for the RBF network (paper section 2.1's other approximator).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/rbf.hh"
#include "numeric/rng.hh"

using wcnn::nn::RbfNetwork;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

TEST(RbfTest, UnfittedReportsNotFitted)
{
    RbfNetwork net;
    EXPECT_FALSE(net.fitted());
}

TEST(RbfTest, FitsConstantFunction)
{
    Rng rng(1);
    Matrix x(20, 1), y(20, 1);
    for (std::size_t i = 0; i < 20; ++i) {
        x(i, 0) = rng.uniform(-1, 1);
        y(i, 0) = 7.5;
    }
    RbfNetwork net;
    RbfNetwork::Options opts;
    opts.centers = 5;
    net.fit(x, y, opts, rng);
    ASSERT_TRUE(net.fitted());
    EXPECT_NEAR(net.predict({0.0})[0], 7.5, 1e-6);
    EXPECT_NEAR(net.predict({0.9})[0], 7.5, 1e-6);
}

TEST(RbfTest, ApproximatesSmoothFunction)
{
    Rng rng(2);
    const std::size_t n = 60;
    Matrix x(n, 1), y(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = -2.0 + 4.0 * static_cast<double>(i) / (n - 1);
        x(i, 0) = xi;
        y(i, 0) = std::sin(xi) + 0.5 * xi;
    }
    RbfNetwork net;
    RbfNetwork::Options opts;
    opts.centers = 15;
    net.fit(x, y, opts, rng);
    double max_err = 0.0;
    for (double probe = -1.8; probe <= 1.8; probe += 0.2) {
        const double expected = std::sin(probe) + 0.5 * probe;
        max_err = std::max(
            max_err, std::fabs(net.predict({probe})[0] - expected));
    }
    EXPECT_LT(max_err, 0.1);
}

TEST(RbfTest, MultiOutputShapes)
{
    Rng rng(3);
    Matrix x(30, 2), y(30, 3);
    for (std::size_t i = 0; i < 30; ++i) {
        x(i, 0) = rng.uniform(-1, 1);
        x(i, 1) = rng.uniform(-1, 1);
        y(i, 0) = x(i, 0);
        y(i, 1) = x(i, 1);
        y(i, 2) = x(i, 0) * x(i, 1);
    }
    RbfNetwork net;
    RbfNetwork::Options opts;
    opts.centers = 12;
    net.fit(x, y, opts, rng);
    EXPECT_EQ(net.predict({0.5, 0.5}).size(), 3u);
    EXPECT_LE(net.centerCount(), 12u);
    EXPECT_GE(net.centerCount(), 1u);
}

TEST(RbfTest, CentersClampedToSampleCount)
{
    Rng rng(4);
    Matrix x(3, 1), y(3, 1);
    for (std::size_t i = 0; i < 3; ++i) {
        x(i, 0) = static_cast<double>(i);
        y(i, 0) = static_cast<double>(i * i);
    }
    RbfNetwork net;
    RbfNetwork::Options opts;
    opts.centers = 50;
    net.fit(x, y, opts, rng);
    EXPECT_LE(net.centerCount(), 3u);
}

TEST(RbfTest, DeterministicGivenSeed)
{
    Matrix x(10, 1), y(10, 1);
    for (std::size_t i = 0; i < 10; ++i) {
        x(i, 0) = static_cast<double>(i) / 10;
        y(i, 0) = std::cos(x(i, 0));
    }
    const auto fit_once = [&](std::uint64_t seed) {
        Rng rng(seed);
        RbfNetwork net;
        RbfNetwork::Options opts;
        opts.centers = 4;
        net.fit(x, y, opts, rng);
        return net.predict({0.33})[0];
    };
    EXPECT_DOUBLE_EQ(fit_once(9), fit_once(9));
}
