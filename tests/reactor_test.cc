/**
 * @file
 * Unit tests for the epoll Reactor and the TimerWheel — the two
 * pieces of src/serve/net/reactor.hh the EventServer trusts blindly
 * from its shard loops. The wheel tests drive time by hand (the
 * wheel never reads a clock; callers pass now_ns), which makes the
 * nastiest case deterministic: SubTickSurvivorIsNotLostForARotation
 * pins a real bug where an entry due later within the tick being
 * swept stayed in a slot the cursor had just passed and was silently
 * parked for a full rotation (~51 s at serving configuration — long
 * past any idle timeout).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/net/reactor.hh"

using wcnn::serve::net::Reactor;
using wcnn::serve::net::TimerWheel;

namespace {

std::vector<int>
collectAt(TimerWheel &wheel, std::int64_t now_ns)
{
    std::vector<int> due;
    wheel.collect(now_ns, due);
    return due;
}

} // namespace

TEST(TimerWheelTest, FiresAtTheDeadlineNotBefore)
{
    TimerWheel wheel(/*tick_ns=*/100, /*slot_count=*/8,
                     /*now_ns=*/0);
    wheel.schedule(7, 250);
    EXPECT_TRUE(collectAt(wheel, 100).empty());
    EXPECT_TRUE(collectAt(wheel, 249).empty());
    // Never early; at most one tick late (the 249 sweep re-bucketed
    // the sub-tick survivor into the next tick's slot).
    const std::vector<int> due = collectAt(wheel, 310);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 7);
    // Fired entries are gone; nothing refires.
    EXPECT_TRUE(collectAt(wheel, 2000).empty());
}

TEST(TimerWheelTest, PastDeadlineFiresOnTheNextCollect)
{
    TimerWheel wheel(100, 8, /*now_ns=*/1000);
    wheel.schedule(3, 400); // already overdue at construction
    const std::vector<int> due = collectAt(wheel, 1000);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 3);
}

/** The regression: a deadline later within the tick being swept must
 *  survive INTO A FUTURE SWEEP, not stay behind the cursor. */
TEST(TimerWheelTest, SubTickSurvivorIsNotLostForARotation)
{
    TimerWheel wheel(100, 8, 0);
    wheel.schedule(42, 150);
    // Sweep mid-tick: tick 1 is visited at now=120, but the entry is
    // due at 150 — not yet. The broken wheel kept it in slot 1 while
    // the cursor advanced to tick 2, losing it until tick 9.
    EXPECT_TRUE(collectAt(wheel, 120).empty());
    const std::vector<int> due = collectAt(wheel, 230);
    ASSERT_EQ(due.size(), 1u) << "survivor was parked behind the cursor";
    EXPECT_EQ(due[0], 42);
}

TEST(TimerWheelTest, LazyReArmBehindTheCursorStillFires)
{
    TimerWheel wheel(100, 8, 0);
    // The EventServer's idle handling re-arms lazily: on fire, a
    // refreshed deadline is rescheduled, and that deadline's natural
    // tick can already be behind the sweep cursor.
    wheel.schedule(5, 100);
    std::vector<int> due = collectAt(wheel, 450);
    ASSERT_EQ(due.size(), 1u);
    wheel.schedule(5, 420); // behind cursorTick: clamps forward
    due = collectAt(wheel, 560);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 5);
}

TEST(TimerWheelTest, SweepLongerThanOneRotationVisitsEverySlot)
{
    TimerWheel wheel(100, 4, 0); // rotation = 400 ns
    wheel.schedule(1, 150);
    wheel.schedule(2, 250);
    wheel.schedule(3, 1150); // a later rotation of slot 3
    // One giant gap (a stalled loop) must still fire everything due.
    std::vector<int> due = collectAt(wheel, 5000);
    std::sort(due.begin(), due.end());
    ASSERT_EQ(due.size(), 3u);
    EXPECT_EQ(due[0], 1);
    EXPECT_EQ(due[1], 2);
    EXPECT_EQ(due[2], 3);
}

TEST(TimerWheelTest, DistantDeadlineWaitsItsRotations)
{
    TimerWheel wheel(100, 4, 0);
    wheel.schedule(9, 950); // more than two rotations out
    EXPECT_TRUE(collectAt(wheel, 120).empty());
    EXPECT_TRUE(collectAt(wheel, 520).empty());
    EXPECT_TRUE(collectAt(wheel, 900).empty());
    // The 900 sweep re-bucketed the survivor one tick forward:
    // never early, at most one tick late.
    const std::vector<int> due = collectAt(wheel, 1050);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 9);
}

TEST(ReactorTest, WaitTimesOutEmptyWithNothingRegistered)
{
    Reactor reactor;
    std::vector<Reactor::Event> events;
    reactor.wait(events, 10);
    EXPECT_TRUE(events.empty());
}

TEST(ReactorTest, WakeupInterruptsWaitWithoutAnEvent)
{
    Reactor reactor;
    std::thread waker([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        reactor.wakeup();
    });
    std::vector<Reactor::Event> events;
    // Far below the 5 s timeout: only the wakeup can end the wait
    // this fast, and the wakeup descriptor itself is filtered out.
    reactor.wait(events, 5000);
    EXPECT_TRUE(events.empty());
    waker.join();
}

TEST(ReactorTest, CoalescedWakeupsNeverBlockTheNextWait)
{
    Reactor reactor;
    for (int i = 0; i < 3; ++i)
        reactor.wakeup();
    std::vector<Reactor::Event> events;
    reactor.wait(events, 1000); // drains the counter, returns
    EXPECT_TRUE(events.empty());
    // The counter was fully drained: this wait must time out idle
    // rather than spin on a stale wakeup.
    reactor.wait(events, 10);
    EXPECT_TRUE(events.empty());
}
