/**
 * @file
 * Tests for the configuration recommender (paper section 5.3).
 */

#include <gtest/gtest.h>

#include "model/recommender.hh"
#include "model/feature_models.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::IndicatorGoal;
using wcnn::model::Recommendation;
using wcnn::model::Recommender;
using wcnn::model::ScoringFunction;
using wcnn::model::SearchAxis;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

namespace {

/** rt is a bowl with minimum at (3, 4); tput is a dome peaking there. */
Dataset
bowlDataset()
{
    Rng rng(1);
    Dataset ds({"a", "b"}, {"rt", "tput"});
    for (int i = 0; i < 80; ++i) {
        const double a = rng.uniform(0, 10);
        const double b = rng.uniform(0, 10);
        const double bowl =
            (a - 3) * (a - 3) + (b - 4) * (b - 4);
        ds.add({a, b}, {1.0 + bowl, 100.0 - bowl});
    }
    return ds;
}

} // namespace

TEST(ScoringFunctionTest, LowerIsBetterByDefault)
{
    ScoringFunction fn;
    fn.goals.push_back(IndicatorGoal{});
    EXPECT_GT(fn.score({1.0}), fn.score({2.0}));
}

TEST(ScoringFunctionTest, HigherIsBetterForThroughput)
{
    ScoringFunction fn;
    IndicatorGoal goal;
    goal.higherIsBetter = true;
    fn.goals.push_back(goal);
    EXPECT_GT(fn.score({200.0}), fn.score({100.0}));
}

TEST(ScoringFunctionTest, ViolationPenaltyApplies)
{
    ScoringFunction fn;
    IndicatorGoal goal;
    goal.limit = 2.0;
    fn.goals.push_back(goal);
    fn.violationPenalty = 100.0;
    // Within the limit: plain weighted score.
    EXPECT_NEAR(fn.score({1.0}) - fn.score({1.5}), 0.5, 1e-12);
    // Beyond the limit: the penalty dwarfs the linear term.
    EXPECT_LT(fn.score({2.1}), fn.score({1.5}) - 50.0);
}

TEST(ScoringFunctionTest, HigherIsBetterLimitIsAFloor)
{
    ScoringFunction fn;
    IndicatorGoal goal;
    goal.higherIsBetter = true;
    goal.limit = 100.0;
    fn.goals.push_back(goal);
    EXPECT_GT(fn.score({150.0}), fn.score({50.0}) + fn.violationPenalty / 2);
}

TEST(ScoringFunctionTest, ScaleNormalizesMagnitudes)
{
    ScoringFunction fn;
    IndicatorGoal rt;
    rt.scale = 1.0;
    IndicatorGoal tput;
    tput.higherIsBetter = true;
    tput.scale = 100.0;
    fn.goals = {rt, tput};
    // One unit of rt (scale 1) outweighs one unit of tput (scale 100).
    const double a = fn.score({1.0, 100.0});
    const double b = fn.score({2.0, 101.0});
    EXPECT_GT(a, b);
}

TEST(ScoringFunctionTest, ForWorkloadTreatsLastColumnAsThroughput)
{
    const Dataset ds = bowlDataset();
    const ScoringFunction fn = ScoringFunction::forWorkload(ds);
    ASSERT_EQ(fn.goals.size(), 2u);
    EXPECT_FALSE(fn.goals[0].higherIsBetter);
    EXPECT_TRUE(fn.goals[1].higherIsBetter);
    EXPECT_GT(fn.goals[1].scale, fn.goals[0].scale);
}

TEST(RecommenderTest, FindsTheBowlOptimum)
{
    const Dataset ds = bowlDataset();
    wcnn::model::PolynomialModel mdl(2);
    mdl.fit(ds);

    Recommender rec(mdl, {SearchAxis{0, 10, 21}, SearchAxis{0, 10, 21}});
    const auto best =
        rec.recommend(ScoringFunction::forWorkload(ds), 1);
    ASSERT_EQ(best.size(), 1u);
    EXPECT_NEAR(best[0].config[0], 3.0, 0.51);
    EXPECT_NEAR(best[0].config[1], 4.0, 0.51);
}

TEST(RecommenderTest, TopKIsSortedByScore)
{
    const Dataset ds = bowlDataset();
    wcnn::model::PolynomialModel mdl(2);
    mdl.fit(ds);
    Recommender rec(mdl, {SearchAxis{0, 10, 11}, SearchAxis{0, 10, 11}});
    const auto top =
        rec.recommend(ScoringFunction::forWorkload(ds), 5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].score, top[i].score);
}

TEST(RecommenderTest, SinglePointAxisPinsValue)
{
    const Dataset ds = bowlDataset();
    wcnn::model::PolynomialModel mdl(2);
    mdl.fit(ds);
    Recommender rec(mdl,
                    {SearchAxis{7.0, 7.0, 1}, SearchAxis{0, 10, 11}});
    const auto best =
        rec.recommend(ScoringFunction::forWorkload(ds), 3);
    for (const auto &r : best)
        EXPECT_DOUBLE_EQ(r.config[0], 7.0);
}

TEST(RecommenderTest, PredictionsAccompanyConfigs)
{
    const Dataset ds = bowlDataset();
    wcnn::model::PolynomialModel mdl(2);
    mdl.fit(ds);
    Recommender rec(mdl, {SearchAxis{0, 10, 5}, SearchAxis{0, 10, 5}});
    const auto best =
        rec.recommend(ScoringFunction::forWorkload(ds), 2);
    for (const auto &r : best) {
        ASSERT_EQ(r.predicted.size(), 2u);
        const Vector direct = mdl.predict(r.config);
        EXPECT_DOUBLE_EQ(r.predicted[0], direct[0]);
    }
}
