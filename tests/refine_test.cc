/**
 * @file
 * Tests for adaptive model-guided tuning.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "model/feature_models.hh"
#include "model/refine.hh"

using namespace wcnn;
using model::AdaptiveResult;
using model::AdaptiveTunerOptions;
using model::ScoringFunction;

namespace {

/**
 * Cheap synthetic objective: throughput is a dome peaking at
 * (default=12, web=18); response times are flat so the score is
 * driven by the dome.
 */
sim::PerfSample
domeObjective(const sim::ThreeTierConfig &cfg)
{
    sim::PerfSample s;
    const double dd = (cfg.defaultQueue - 12.0) / 8.0;
    const double dw = (cfg.webQueue - 18.0) / 3.0;
    s.manufacturingRt = 1.0;
    s.dealerPurchaseRt = 1.0;
    s.dealerManageRt = 1.0;
    s.dealerBrowseRt = 1.0;
    s.throughput = 500.0 - 120.0 * (dd * dd + dw * dw);
    return s;
}

ScoringFunction
throughputScore()
{
    ScoringFunction fn;
    for (int j = 0; j < 5; ++j) {
        model::IndicatorGoal goal;
        goal.higherIsBetter = j == 4;
        goal.weight = j == 4 ? 1.0 : 0.0;
        goal.scale = j == 4 ? 500.0 : 1.0;
        fn.goals.push_back(goal);
    }
    return fn;
}

AdaptiveTunerOptions
quickOptions()
{
    AdaptiveTunerOptions opts;
    opts.initialSamples = 10;
    opts.rounds = 3;
    opts.batchPerRound = 4;
    opts.gridPointsPerAxis = 5;
    // The dome is exactly quadratic: a polynomial surrogate converges
    // with very few samples (the NN default suits the real workload).
    opts.surrogateFactory = [] {
        return std::make_unique<model::PolynomialModel>(2);
    };
    opts.seed = 5;
    return opts;
}

} // namespace

TEST(AdaptiveTuneTest, HistoryTracksRoundsAndMeasurements)
{
    const AdaptiveResult result =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    ASSERT_EQ(result.history.size(), 4u); // round 0 + 3 rounds
    EXPECT_EQ(result.history[0].totalMeasurements, 10u);
    EXPECT_EQ(result.history.back().totalMeasurements,
              result.measurements.size());
    EXPECT_LE(result.measurements.size(), 10u + 3u * 4u);
    EXPECT_GE(result.measurements.size(), 10u + 3u * 2u);
}

TEST(AdaptiveTuneTest, BestScoreNeverDecreases)
{
    const AdaptiveResult result =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    for (std::size_t r = 1; r < result.history.size(); ++r) {
        EXPECT_GE(result.history[r].bestScore,
                  result.history[r - 1].bestScore);
    }
    EXPECT_DOUBLE_EQ(result.history.back().bestScore,
                     result.bestScore);
}

TEST(AdaptiveTuneTest, ConvergesTowardTheDome)
{
    const AdaptiveResult result =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    // The dome peaks at 500; random 10-point designs rarely land
    // within 2% of it, the guided loop should.
    sim::ThreeTierConfig best_cfg;
    best_cfg.injectionRate = result.bestConfig[0];
    best_cfg.defaultQueue = result.bestConfig[1];
    best_cfg.mfgQueue = result.bestConfig[2];
    best_cfg.webQueue = result.bestConfig[3];
    const double best_tput = domeObjective(best_cfg).throughput;
    EXPECT_GT(best_tput, 480.0);
}

TEST(AdaptiveTuneTest, GuidedBeatsInitialDesign)
{
    // A finer recommender grid lets the guided rounds outdo the
    // 10-point initial design on this smooth objective.
    AdaptiveTunerOptions opts = quickOptions();
    opts.gridPointsPerAxis = 9;
    const AdaptiveResult result =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(), opts);
    EXPECT_GT(result.history.back().bestScore,
              result.history[0].bestScore);
}

TEST(AdaptiveTuneTest, NoDuplicateMeasurements)
{
    const AdaptiveResult result =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    std::set<std::vector<long long>> keys;
    for (const auto &sample : result.measurements) {
        std::vector<long long> key;
        for (double v : sample.x)
            key.push_back(std::llround(v));
        EXPECT_TRUE(keys.insert(key).second)
            << "duplicate measured configuration";
    }
}

TEST(AdaptiveTuneTest, DeterministicGivenSeed)
{
    const AdaptiveResult a =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    const AdaptiveResult b =
        model::adaptiveTune(sim::SampleSpace::paperLike(),
                            domeObjective, throughputScore(),
                            quickOptions());
    EXPECT_EQ(a.measurements.size(), b.measurements.size());
    EXPECT_DOUBLE_EQ(a.bestScore, b.bestScore);
    EXPECT_EQ(a.bestConfig, b.bestConfig);
}
