/**
 * @file
 * Unit and property tests for numeric::Rng.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "numeric/rng.hh"
#include "numeric/stats.hh"

using wcnn::numeric::Rng;

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(RngTest, CopyContinuesIndependently)
{
    Rng a(7);
    a.next();
    Rng b = a;
    EXPECT_EQ(a.next(), b.next());
    a.next();
    Rng c = a;
    EXPECT_EQ(a.next(), c.next());
}

TEST(RngTest, SplitIsIndependentOfParentContinuation)
{
    Rng parent(99);
    Rng child = parent.split();
    // Child and parent streams should not collide.
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitDeterministic)
{
    Rng a(5), b(5);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(12);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = rng.uniform();
    EXPECT_NEAR(wcnn::numeric::mean(xs), 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusive)
{
    Rng rng(14);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 8);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 8);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntDegenerateRange)
{
    Rng rng(15);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntApproximatelyUniform)
{
    Rng rng(16);
    std::vector<int> counts(10, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(rng.uniformInt(0, 9))];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    std::vector<double> xs(40000);
    for (auto &x : xs)
        x = rng.normal();
    EXPECT_NEAR(wcnn::numeric::mean(xs), 0.0, 0.02);
    EXPECT_NEAR(wcnn::numeric::stddev(xs), 1.0, 0.02);
}

TEST(RngTest, NormalShifted)
{
    Rng rng(18);
    std::vector<double> xs(40000);
    for (auto &x : xs)
        x = rng.normal(10.0, 2.0);
    EXPECT_NEAR(wcnn::numeric::mean(xs), 10.0, 0.05);
    EXPECT_NEAR(wcnn::numeric::stddev(xs), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanAndPositivity)
{
    Rng rng(19);
    std::vector<double> xs(40000);
    for (auto &x : xs) {
        x = rng.exponential(0.25);
        ASSERT_GT(x, 0.0);
    }
    EXPECT_NEAR(wcnn::numeric::mean(xs), 0.25, 0.01);
}

TEST(RngTest, LognormalMeanAndCov)
{
    Rng rng(20);
    std::vector<double> xs(80000);
    for (auto &x : xs) {
        x = rng.lognormal(2.0, 0.5);
        ASSERT_GT(x, 0.0);
    }
    const double mu = wcnn::numeric::mean(xs);
    const double cov = wcnn::numeric::stddev(xs) / mu;
    EXPECT_NEAR(mu, 2.0, 0.05);
    EXPECT_NEAR(cov, 0.5, 0.03);
}

TEST(RngTest, LognormalZeroCovIsDeterministic)
{
    Rng rng(21);
    EXPECT_DOUBLE_EQ(rng.lognormal(3.5, 0.0), 3.5);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(22);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights)
{
    Rng rng(23);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, PermutationIsValid)
{
    Rng rng(24);
    const auto perm = rng.permutation(100);
    ASSERT_EQ(perm.size(), 100u);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne)
{
    Rng rng(25);
    EXPECT_TRUE(rng.permutation(0).empty());
    const auto one = rng.permutation(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, PermutationFirstElementUniform)
{
    Rng rng(26);
    std::vector<int> counts(5, 0);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.permutation(5)[0]];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
}

/** Seed-parameterized determinism sweep. */
class RngSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedTest, DistributionHelpersAreReproducible)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 200; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
        EXPECT_DOUBLE_EQ(a.normal(), b.normal());
        EXPECT_DOUBLE_EQ(a.exponential(1.0), b.exponential(1.0));
        EXPECT_DOUBLE_EQ(a.lognormal(1.0, 0.5), b.lognormal(1.0, 0.5));
    }
}

TEST_P(RngSeedTest, UniformBoundsHold)
{
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform(2.0, 2.5);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 2.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           ~0ull));
