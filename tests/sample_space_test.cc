/**
 * @file
 * Tests for experiment designs and dataset collection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "numeric/rng.hh"
#include "sim/sample_space.hh"

using namespace wcnn::sim;
using wcnn::numeric::Rng;

TEST(GridDesignTest, SizeIsProductOfAxes)
{
    const auto configs =
        gridDesign(SampleSpace::paperLike(), {2, 3, 4, 5});
    EXPECT_EQ(configs.size(), 2u * 3u * 4u * 5u);
}

TEST(GridDesignTest, SinglePointAxisUsesMidpoint)
{
    SampleSpace space;
    space.injectionRate = {500, 600, false};
    const auto configs = gridDesign(space, {1, 1, 1, 1});
    ASSERT_EQ(configs.size(), 1u);
    EXPECT_DOUBLE_EQ(configs[0].injectionRate, 550.0);
}

TEST(GridDesignTest, EndpointsIncluded)
{
    SampleSpace space;
    space.webQueue = {14, 20, true};
    const auto configs = gridDesign(space, {1, 1, 1, 4});
    std::set<double> webs;
    for (const auto &c : configs)
        webs.insert(c.webQueue);
    EXPECT_TRUE(webs.count(14.0));
    EXPECT_TRUE(webs.count(20.0));
}

TEST(RandomDesignTest, RespectsRangesAndIntegrality)
{
    Rng rng(1);
    const SampleSpace space = SampleSpace::paperLike();
    const auto configs = randomDesign(space, 100, rng);
    ASSERT_EQ(configs.size(), 100u);
    for (const auto &c : configs) {
        EXPECT_GE(c.injectionRate, space.injectionRate.lo);
        EXPECT_LE(c.injectionRate, space.injectionRate.hi);
        EXPECT_GE(c.defaultQueue, space.defaultQueue.lo);
        EXPECT_LE(c.defaultQueue, space.defaultQueue.hi);
        // Thread-count axes are integral.
        EXPECT_DOUBLE_EQ(c.defaultQueue, std::round(c.defaultQueue));
        EXPECT_DOUBLE_EQ(c.mfgQueue, std::round(c.mfgQueue));
        EXPECT_DOUBLE_EQ(c.webQueue, std::round(c.webQueue));
    }
}

TEST(LatinHypercubeTest, StratifiesContinuousAxes)
{
    Rng rng(2);
    SampleSpace space;
    space.injectionRate = {0.0, 100.0, false};
    const std::size_t n = 10;
    const auto configs = latinHypercubeDesign(space, n, rng);
    ASSERT_EQ(configs.size(), n);
    // Exactly one sample per 10-unit stratum of the injection axis.
    std::set<int> strata;
    for (const auto &c : configs) {
        strata.insert(static_cast<int>(c.injectionRate / 10.0));
    }
    EXPECT_EQ(strata.size(), n);
}

TEST(LatinHypercubeTest, DeterministicGivenSeed)
{
    const SampleSpace space = SampleSpace::paperLike();
    Rng a(3), b(3);
    const auto ca = latinHypercubeDesign(space, 8, a);
    const auto cb = latinHypercubeDesign(space, 8, b);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(ca[i].injectionRate, cb[i].injectionRate);
        EXPECT_DOUBLE_EQ(ca[i].webQueue, cb[i].webQueue);
    }
}

TEST(FactorialDesignTest, SixteenCornersPlusCenters)
{
    const SampleSpace space = SampleSpace::paperLike();
    const auto configs = factorialDesign(space, 3);
    ASSERT_EQ(configs.size(), 19u);
    // Every corner is an extreme of each axis.
    std::set<std::vector<double>> corners;
    for (std::size_t i = 0; i < 16; ++i) {
        const auto &c = configs[i];
        EXPECT_TRUE(c.injectionRate == space.injectionRate.lo ||
                    c.injectionRate == space.injectionRate.hi);
        EXPECT_TRUE(c.webQueue == space.webQueue.lo ||
                    c.webQueue == space.webQueue.hi);
        corners.insert(c.toVector());
    }
    EXPECT_EQ(corners.size(), 16u); // all distinct
    // Centers sit at the midpoints.
    for (std::size_t i = 16; i < 19; ++i) {
        EXPECT_DOUBLE_EQ(configs[i].injectionRate,
                         (space.injectionRate.lo +
                          space.injectionRate.hi) / 2.0);
    }
}

TEST(CollectTest, DatasetHasPaperColumnNames)
{
    Rng rng(4);
    const auto configs =
        latinHypercubeDesign(SampleSpace::paperLike(), 5, rng);
    const auto ds = collectAnalytic(configs,
                                    WorkloadParams::defaults());
    EXPECT_EQ(ds.size(), 5u);
    EXPECT_EQ(ds.inputs(), ThreeTierConfig::parameterNames());
    EXPECT_EQ(ds.outputs(), PerfSample::indicatorNames());
}

TEST(CollectTest, CollectDatasetAppliesFunctor)
{
    std::vector<ThreeTierConfig> configs(3);
    configs[1].injectionRate = 999;
    std::size_t calls = 0;
    const auto ds =
        collectDataset(configs, [&](const ThreeTierConfig &cfg) {
            ++calls;
            PerfSample s;
            s.throughput = cfg.injectionRate;
            return s;
        });
    EXPECT_EQ(calls, 3u);
    EXPECT_DOUBLE_EQ(ds[1].y[4], 999.0);
    EXPECT_DOUBLE_EQ(ds[1].x[0], 999.0);
}

TEST(CollectTest, SimulatedCollectionIsDeterministic)
{
    std::vector<ThreeTierConfig> configs(2);
    for (auto &c : configs) {
        c.warmup = 5.0;
        c.measure = 15.0;
    }
    configs[1].webQueue = 15;
    const auto params = WorkloadParams::defaults();
    const auto a = collectSimulated(configs, params, 7, 2);
    const auto b = collectSimulated(configs, params, 7, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].y, b[i].y);
}

TEST(CollectTest, ReplicationReducesVariance)
{
    // The spread of repeated 1-replicate measurements should exceed
    // the spread of 4-replicate averages for the same configuration.
    ThreeTierConfig cfg;
    cfg.warmup = 5.0;
    cfg.measure = 15.0;
    const auto params = WorkloadParams::defaults();
    std::vector<double> single, averaged;
    for (std::uint64_t s = 0; s < 6; ++s) {
        single.push_back(
            collectSimulated({cfg}, params, 1000 + s, 1)[0].y[4]);
        averaged.push_back(
            collectSimulated({cfg}, params, 2000 + 10 * s, 4)[0].y[4]);
    }
    const double spread_single =
        *std::max_element(single.begin(), single.end()) -
        *std::min_element(single.begin(), single.end());
    const double spread_avg =
        *std::max_element(averaged.begin(), averaged.end()) -
        *std::min_element(averaged.begin(), averaged.end());
    EXPECT_LT(spread_avg, spread_single * 1.05);
}
