/**
 * @file
 * Unit tests of the scenario DSL's lexical and syntactic layer: token
 * positions, statement/value shapes, the canonical printer, and the
 * parse-time diagnostics (typed ScenarioError with a 1-based source
 * location — never a contract trip, which the fuzz corpus re-checks
 * under the sanitizer and no-contracts presets).
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/parser.hh"
#include "scenario/printer.hh"

namespace {

using namespace wcnn::scenario;

/** Parse text expecting one "scenario.parse" fault; return it. */
ScenarioError
parseFailure(const std::string &source)
{
    try {
        (void)parse(source);
    } catch (const ScenarioError &e) {
        EXPECT_EQ(std::string(e.kind()), "scenario.parse");
        return e;
    }
    ADD_FAILURE() << "parser accepted: " << source;
    return ScenarioError("scenario.parse", SourceLoc{}, "unreached");
}

} // namespace

TEST(ScenarioParserTest, LeafStatementCarriesKeywordAndArgs)
{
    const Document doc = parse("pool mfg 3 \"hi\";");
    ASSERT_EQ(doc.statements.size(), 1u);
    const Statement &s = doc.statements[0];
    EXPECT_EQ(s.keyword, "pool");
    EXPECT_FALSE(s.hasBlock);
    ASSERT_EQ(s.args.size(), 3u);
    EXPECT_EQ(s.args[0].kind, ValueKind::Ident);
    EXPECT_EQ(s.args[0].text, "mfg");
    EXPECT_EQ(s.args[1].kind, ValueKind::Number);
    EXPECT_EQ(s.args[1].number, 3.0);
    EXPECT_EQ(s.args[2].kind, ValueKind::String);
    EXPECT_EQ(s.args[2].text, "hi");
}

TEST(ScenarioParserTest, BlocksNestAndKeepSourceOrder)
{
    const Document doc =
        parse("host {\n  cores 8;\n  gc { pause_mean 0.1; }\n}\n");
    ASSERT_EQ(doc.statements.size(), 1u);
    const Statement &host = doc.statements[0];
    EXPECT_TRUE(host.hasBlock);
    ASSERT_EQ(host.block.size(), 2u);
    EXPECT_EQ(host.block[0].keyword, "cores");
    EXPECT_EQ(host.block[1].keyword, "gc");
    ASSERT_EQ(host.block[1].block.size(), 1u);
    EXPECT_EQ(host.block[1].block[0].keyword, "pause_mean");
}

TEST(ScenarioParserTest, NumbersFollowStrtodSyntax)
{
    const Document doc = parse("k 1e-3 -2.5 +40 .5 6E2;");
    ASSERT_EQ(doc.statements[0].args.size(), 5u);
    EXPECT_DOUBLE_EQ(doc.statements[0].args[0].number, 1e-3);
    EXPECT_DOUBLE_EQ(doc.statements[0].args[1].number, -2.5);
    EXPECT_DOUBLE_EQ(doc.statements[0].args[2].number, 40.0);
    EXPECT_DOUBLE_EQ(doc.statements[0].args[3].number, 0.5);
    EXPECT_DOUBLE_EQ(doc.statements[0].args[4].number, 600.0);
}

TEST(ScenarioParserTest, ListsHoldNestedValues)
{
    const Document doc = parse("rates [380, 900, [1, 2]];");
    const Value &list = doc.statements[0].args[0];
    ASSERT_EQ(list.kind, ValueKind::List);
    ASSERT_EQ(list.items.size(), 3u);
    EXPECT_EQ(list.items[0].number, 380.0);
    EXPECT_EQ(list.items[2].kind, ValueKind::List);
    ASSERT_EQ(list.items[2].items.size(), 2u);

    const Document empty = parse("rates [];");
    EXPECT_TRUE(empty.statements[0].args[0].items.empty());
}

TEST(ScenarioParserTest, LetLowersToNameAndValue)
{
    const Document doc = parse("let baseline = 380;");
    const Statement &s = doc.statements[0];
    EXPECT_EQ(s.keyword, "let");
    ASSERT_EQ(s.args.size(), 2u);
    EXPECT_EQ(s.args[0].kind, ValueKind::Ident);
    EXPECT_EQ(s.args[0].text, "baseline");
    EXPECT_EQ(s.args[1].number, 380.0);
}

TEST(ScenarioParserTest, CommentsRunToEndOfLine)
{
    const Document doc =
        parse("# leading comment\nscenario \"x\"; # trailing\n");
    ASSERT_EQ(doc.statements.size(), 1u);
    EXPECT_EQ(doc.statements[0].keyword, "scenario");
}

TEST(ScenarioParserTest, DiagnosticsPointAtTheOffendingToken)
{
    // Missing ';' after `warmup 5` — the '}' on line 2, column 16.
    const ScenarioError e =
        parseFailure("scenario \"x\";\nrun { warmup 5 }\n");
    EXPECT_EQ(e.loc().line, 2u);
    EXPECT_EQ(e.loc().column, 16u);
    EXPECT_NE(std::string(e.what()).find("line 2, column 16"),
              std::string::npos);

    // Unterminated string points at its opening quote.
    const ScenarioError str = parseFailure("describe \"oops\n");
    EXPECT_EQ(str.loc().line, 1u);
    EXPECT_EQ(str.loc().column, 10u);

    // Unexpected byte.
    const ScenarioError bad = parseFailure("rate @5;");
    EXPECT_EQ(bad.loc().line, 1u);
    EXPECT_EQ(bad.loc().column, 6u);
}

TEST(ScenarioParserTest, NonFiniteLiteralsAreLexicalFaults)
{
    const ScenarioError e = parseFailure("rate 1e999;");
    EXPECT_NE(std::string(e.what()).find("overflows"),
              std::string::npos);
}

TEST(ScenarioParserTest, NestingDepthIsBounded)
{
    // Exactly at the bound parses; one deeper is a typed fault, not a
    // stack overflow.
    std::string at_bound = "a ";
    for (std::size_t i = 0; i < maxNestingDepth; ++i)
        at_bound += "{ a ";
    at_bound += ";";
    for (std::size_t i = 0; i < maxNestingDepth; ++i)
        at_bound += " }";
    EXPECT_NO_THROW((void)parse(at_bound));

    std::string too_deep = "v ";
    for (std::size_t i = 0; i <= maxNestingDepth; ++i)
        too_deep += "[";
    const ScenarioError e = parseFailure(too_deep);
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
}

TEST(ScenarioParserTest, PrinterEmitsCanonicalForm)
{
    const Document doc = parse(
        "scenario   \"x\" ;\n"
        "# comment vanishes\n"
        "let r=[380,900];\n"
        "arrivals mmpp { rates r; switch [0.05, 0.25]; }");
    EXPECT_EQ(print(doc),
              "scenario \"x\";\n"
              "let r = [380, 900];\n"
              "arrivals mmpp {\n"
              "    rates r;\n"
              "    switch [0.050000000000000003, 0.25];\n"
              "}\n");
}

TEST(ScenarioParserTest, PrintedFormReparsesToTheSamePrint)
{
    // The printer's one normal form: print(parse(print(parse(s))))
    // == print(parse(s)) even for inputs full of comments, odd
    // whitespace and non-canonical number spellings.
    const char *sources[] = {
        "scenario \"x\"; run { warmup 5; measure 2e1; }",
        "let a = 1; let b = a;\narrivals poisson { rate b; }",
        "host { service lognormal 0.80000; }\n# tail comment",
    };
    for (const char *s : sources) {
        const std::string once = print(parse(s));
        EXPECT_EQ(print(parse(once)), once) << s;
    }
}
