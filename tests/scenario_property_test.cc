/**
 * @file
 * Statistical and structural properties of the scenario layer.
 *
 * The arrival generators are pure with respect to their Rng, so their
 * declared statistics are directly checkable: Poisson inter-arrival
 * means, MMPP stationary state shares and switch frequencies, diurnal
 * envelope periodicity and realized mean rate. Sample sizes put the
 * estimators' 3-sigma bands well inside the asserted tolerances, so
 * the checks are deterministic in practice (fixed seeds) and
 * diagnostic in failure (a broken generator misses by far more).
 *
 * The structural half pins the printer fixpoint over the shipped
 * library: for every file under scenarios/, print(parse(s)) is a
 * normal form — reparsing and reprinting reproduces it byte for byte
 * — and printing does not change resolved semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "numeric/rng.hh"
#include "scenario/library.hh"
#include "scenario/parser.hh"
#include "scenario/printer.hh"
#include "scenario/resolve.hh"
#include "sim/arrival.hh"

#ifndef WCNN_SCENARIO_SRC_DIR
#error "build must define WCNN_SCENARIO_SRC_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace wcnn;

/** Read one shipped scenario source file; missing files fail. */
std::string
slurpScenario(const std::string &name)
{
    const std::string path =
        std::string(WCNN_SCENARIO_SRC_DIR) + "/" + name + ".wcnn";
    std::ifstream is(path);
    if (!is)
        ADD_FAILURE() << "scenario file missing: " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Draw n gaps; return the realized mean rate n / elapsed. */
double
realizedRate(sim::ArrivalProcess &process, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        (void)process.nextGap();
    return static_cast<double>(n) / process.elapsed();
}

} // namespace

TEST(ScenarioPropertyTest, PoissonInterArrivalMeanMatchesTheRate)
{
    sim::ArrivalSpec spec;
    spec.kind = sim::ArrivalKind::Poisson;
    spec.nominalRate = 560.0;

    sim::ArrivalProcess process(spec, 560.0, numeric::Rng(11));
    const std::size_t n = 1000000;
    // Relative 3-sigma of the mean estimator is 3/sqrt(n) = 0.3 %.
    EXPECT_NEAR(realizedRate(process, n), 560.0, 560.0 * 0.01);

    // The envelope scales to whatever mean rate the sweep asks for.
    sim::ArrivalProcess scaled(spec, 1120.0, numeric::Rng(12));
    EXPECT_NEAR(realizedRate(scaled, n), 1120.0, 1120.0 * 0.01);
}

TEST(ScenarioPropertyTest, MmppMatchesItsStationaryLaw)
{
    sim::ArrivalSpec spec;
    spec.kind = sim::ArrivalKind::Mmpp;
    spec.stateRates = {380.0, 900.0};
    spec.switchRates = {0.5, 2.5};

    // Cyclic 2-state chain: expected sojourns 2.0 s and 0.4 s, so the
    // state-0 time share is 2.0/2.4 and the mean rate is the
    // share-weighted mix.
    const double share0 = 2.0 / 2.4;
    const double mean =
        380.0 * share0 + 900.0 * (1.0 - share0);
    EXPECT_DOUBLE_EQ(spec.meanRate(), mean);

    sim::ArrivalProcess process(spec, mean, numeric::Rng(13));
    const std::size_t n = 1000000;
    EXPECT_NEAR(realizedRate(process, n), mean, mean * 0.02);

    // Time-in-state bookkeeping is exhaustive...
    const double elapsed = process.elapsed();
    EXPECT_NEAR(process.timeInState(0) + process.timeInState(1),
                elapsed, elapsed * 1e-9);
    // ...and the realized share matches the stationary law.
    EXPECT_NEAR(process.timeInState(0) / elapsed, share0,
                share0 * 0.02);

    // Switch frequency: 2 switches per cycle of expected length 2.4 s.
    // ~1800 switch events here, so 3 sigma is ~7 %.
    const double switches_per_s =
        static_cast<double>(process.switches()) / elapsed;
    EXPECT_NEAR(switches_per_s, 2.0 / 2.4, (2.0 / 2.4) * 0.10);
}

TEST(ScenarioPropertyTest, DiurnalEnvelopeIsPeriodic)
{
    sim::ArrivalSpec spec;
    spec.kind = sim::ArrivalKind::Diurnal;
    spec.nominalRate = 520.0;
    spec.amplitude = 0.35;
    spec.period = 60.0;

    // One period later the envelope repeats (to sin() roundoff, far
    // below any physical meaning), and the swing stays inside the
    // declared amplitude band.
    for (double t = 0.0; t < 180.0; t += 7.5) {
        EXPECT_NEAR(spec.envelopeRate(t + spec.period),
                    spec.envelopeRate(t), 1e-9);
        EXPECT_GE(spec.envelopeRate(t), 520.0 * (1.0 - 0.35) - 1e-9);
        EXPECT_LE(spec.envelopeRate(t), 520.0 * (1.0 + 0.35) + 1e-9);
    }
    EXPECT_DOUBLE_EQ(spec.envelopeRate(0.0), 520.0);
    EXPECT_DOUBLE_EQ(spec.meanRate(), 520.0);
}

TEST(ScenarioPropertyTest, DiurnalThinningRealizesTheMeanRate)
{
    sim::ArrivalSpec spec;
    spec.kind = sim::ArrivalKind::Diurnal;
    spec.nominalRate = 520.0;
    spec.amplitude = 0.35;
    spec.period = 60.0;

    // Over many whole periods the sinusoid averages out, so the
    // realized rate converges on the declared mean.
    sim::ArrivalProcess process(spec, 520.0, numeric::Rng(14));
    EXPECT_NEAR(realizedRate(process, 1000000), 520.0, 520.0 * 0.02);
}

TEST(ScenarioPropertyTest, EveryShippedScenarioHitsThePrinterFixpoint)
{
    for (const std::string &name : scenario::libraryNames()) {
        const std::string source = slurpScenario(name);
        const std::string once = scenario::print(scenario::parse(source));
        const std::string twice = scenario::print(scenario::parse(once));
        EXPECT_EQ(twice, once) << name << ": print is not a fixpoint";
    }
}

TEST(ScenarioPropertyTest, PrintingPreservesResolvedSemantics)
{
    for (const std::string &name : scenario::libraryNames()) {
        const std::string source = slurpScenario(name);
        const scenario::ResolvedScenario direct =
            scenario::resolveText(source);
        const scenario::ResolvedScenario reprinted =
            scenario::resolveText(
                scenario::print(scenario::parse(source)));

        EXPECT_EQ(reprinted.name, direct.name);
        EXPECT_EQ(reprinted.base.injectionRate,
                  direct.base.injectionRate)
            << name;
        EXPECT_EQ(reprinted.base.arrival.kind, direct.base.arrival.kind)
            << name;
        EXPECT_EQ(reprinted.base.warmup, direct.base.warmup) << name;
        EXPECT_EQ(reprinted.base.measure, direct.base.measure) << name;
        EXPECT_EQ(reprinted.space.injectionRate.lo,
                  direct.space.injectionRate.lo)
            << name;
        EXPECT_EQ(reprinted.space.injectionRate.hi,
                  direct.space.injectionRate.hi)
            << name;
        EXPECT_EQ(reprinted.params.serviceCov, direct.params.serviceCov)
            << name;
    }
}

TEST(ScenarioPropertyTest, LibraryDirMatchesTheSourceTree)
{
    // The tests above read scenarios/ straight from the source tree;
    // the library must be reading the same place (unless the user
    // points WCNN_SCENARIO_DIR elsewhere, which test runs do not).
    if (std::getenv("WCNN_SCENARIO_DIR") != nullptr)
        GTEST_SKIP() << "WCNN_SCENARIO_DIR overrides the default";
    EXPECT_EQ(scenario::libraryDir(),
              std::string(WCNN_SCENARIO_SRC_DIR));
}
