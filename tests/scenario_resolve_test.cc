/**
 * @file
 * Unit tests of the scenario resolver: lowering onto the simulator
 * types, defaulting, `let` indirection, and the semantic diagnostics.
 * The headline guarantee sits first: the shipped paper_3tier scenario
 * resolves to exactly the compiled-in defaults, field by field, so the
 * DSL path and the hard-coded path are the same experiment.
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/library.hh"
#include "scenario/resolve.hh"
#include "sim/three_tier.hh"
#include "sim/workload.hh"

namespace {

using namespace wcnn;
using namespace wcnn::scenario;

/** Resolve text expecting one "scenario.resolve" fault; return it. */
ScenarioError
resolveFailure(const std::string &source)
{
    try {
        (void)resolveText(source);
    } catch (const ScenarioError &e) {
        EXPECT_EQ(std::string(e.kind()), "scenario.resolve") << source;
        return e;
    }
    ADD_FAILURE() << "resolver accepted: " << source;
    return ScenarioError("scenario.resolve", SourceLoc{}, "unreached");
}

void
expectSameRange(const sim::ParameterRange &got,
                const sim::ParameterRange &want, const char *axis)
{
    EXPECT_EQ(got.lo, want.lo) << axis;
    EXPECT_EQ(got.hi, want.hi) << axis;
    EXPECT_EQ(got.integral, want.integral) << axis;
}

void
expectCompiledDefaults(const ResolvedScenario &rs)
{
    const sim::ThreeTierConfig cfg;
    EXPECT_EQ(rs.base.injectionRate, cfg.injectionRate);
    EXPECT_EQ(rs.base.defaultQueue, cfg.defaultQueue);
    EXPECT_EQ(rs.base.mfgQueue, cfg.mfgQueue);
    EXPECT_EQ(rs.base.webQueue, cfg.webQueue);
    EXPECT_EQ(rs.base.warmup, cfg.warmup);
    EXPECT_EQ(rs.base.measure, cfg.measure);
    EXPECT_EQ(rs.base.loadModel, sim::LoadModel::Open);
    EXPECT_EQ(rs.base.arrival.kind, sim::ArrivalKind::Poisson);
    EXPECT_EQ(rs.base.arrival.nominalRate, cfg.injectionRate);

    const sim::WorkloadParams def = sim::WorkloadParams::defaults();
    EXPECT_EQ(rs.params.cores, def.cores);
    EXPECT_EQ(rs.params.threadOverhead, def.threadOverhead);
    EXPECT_EQ(rs.params.csOverhead, def.csOverhead);
    EXPECT_EQ(rs.params.dbConnections, def.dbConnections);
    EXPECT_EQ(rs.params.dbLockFactor, def.dbLockFactor);
    EXPECT_EQ(rs.params.backlogCap, def.backlogCap);
    EXPECT_EQ(rs.params.defaultBacklogCap, def.defaultBacklogCap);
    EXPECT_EQ(rs.params.networkLatency, def.networkLatency);
    EXPECT_EQ(rs.params.serviceDist, def.serviceDist);
    EXPECT_EQ(rs.params.serviceCov, def.serviceCov);
    EXPECT_EQ(rs.params.gcTxnInterval, def.gcTxnInterval);
    EXPECT_EQ(rs.params.gcPauseMean, def.gcPauseMean);
    for (sim::TxnClass cls : sim::allTxnClasses) {
        const sim::TxnProfile &got = rs.params.profile(cls);
        const sim::TxnProfile &want = def.profile(cls);
        const auto i = static_cast<int>(cls);
        EXPECT_EQ(got.mix, want.mix) << "class " << i;
        EXPECT_EQ(got.cpuPre, want.cpuPre) << "class " << i;
        EXPECT_EQ(got.cpuPost, want.cpuPost) << "class " << i;
        EXPECT_EQ(got.dbDemand, want.dbDemand) << "class " << i;
        EXPECT_EQ(got.hasAuxHop, want.hasAuxHop) << "class " << i;
        EXPECT_EQ(got.auxCpu, want.auxCpu) << "class " << i;
        EXPECT_EQ(got.auxDb, want.auxDb) << "class " << i;
        EXPECT_EQ(got.rtLimit, want.rtLimit) << "class " << i;
    }

    const sim::SampleSpace paper = sim::SampleSpace::paperLike();
    expectSameRange(rs.space.injectionRate, paper.injectionRate,
                    "injection_rate");
    expectSameRange(rs.space.defaultQueue, paper.defaultQueue,
                    "default_queue");
    expectSameRange(rs.space.mfgQueue, paper.mfgQueue, "mfg_queue");
    expectSameRange(rs.space.webQueue, paper.webQueue, "web_queue");
}

} // namespace

TEST(ScenarioResolveTest, MinimalScenarioInheritsAllDefaults)
{
    // Declaring nothing but the name must mean "the paper's setup".
    const ResolvedScenario rs = resolveText("scenario \"minimal\";");
    EXPECT_EQ(rs.name, "minimal");
    EXPECT_TRUE(rs.description.empty());
    expectCompiledDefaults(rs);
}

TEST(ScenarioResolveTest, ShippedPaperScenarioEqualsCompiledDefaults)
{
    // The keystone of the byte-identity chain: paper_3tier.wcnn spells
    // every default out explicitly, and must land on the exact same
    // values bit for bit. collectSimulated over equal configs/params
    // is deterministic, so equal inputs here mean equal datasets.
    const ResolvedScenario rs = loadNamed("paper_3tier");
    EXPECT_EQ(rs.name, "paper_3tier");
    EXPECT_FALSE(rs.description.empty());
    expectCompiledDefaults(rs);
}

TEST(ScenarioResolveTest, SectionsLowerOntoSimulatorTypes)
{
    const ResolvedScenario rs = resolveText(
        "scenario \"custom\";\n"
        "host { cores 8; service exponential; gc { txn_interval 0; } }\n"
        "pool mfg { threads 4; }\n"
        "pool web { threads 6; }\n"
        "class manufacturing { mix 0.5; db 0.040; aux { cpu 0.002; "
        "db 0.010; } }\n"
        "class dealer_browse { no_aux; }\n"
        "arrivals diurnal { rate 200; amplitude 0.3; period 90; }\n"
        "run { warmup 2; measure 11; }\n"
        "space { injection_rate 100 300; mfg_queue 2 8 integer; }\n");
    EXPECT_EQ(rs.params.cores, 8u);
    EXPECT_EQ(rs.params.serviceDist, sim::ServiceDist::Exponential);
    EXPECT_EQ(rs.params.gcTxnInterval, 0u);
    EXPECT_EQ(rs.base.mfgQueue, 4.0);
    EXPECT_EQ(rs.base.webQueue, 6.0);
    // Untouched pool keeps its default.
    EXPECT_EQ(rs.base.defaultQueue, sim::ThreeTierConfig{}.defaultQueue);

    const sim::TxnProfile &mfg =
        rs.params.profile(sim::TxnClass::Manufacturing);
    EXPECT_EQ(mfg.mix, 0.5);
    EXPECT_EQ(mfg.dbDemand, 0.040);
    EXPECT_TRUE(mfg.hasAuxHop);
    EXPECT_EQ(mfg.auxCpu, 0.002);
    EXPECT_EQ(mfg.auxDb, 0.010);
    // Unmentioned keys keep their defaults.
    EXPECT_EQ(mfg.cpuPre,
              sim::WorkloadParams::defaults()
                  .profile(sim::TxnClass::Manufacturing)
                  .cpuPre);
    EXPECT_FALSE(
        rs.params.profile(sim::TxnClass::DealerBrowse).hasAuxHop);

    EXPECT_EQ(rs.base.arrival.kind, sim::ArrivalKind::Diurnal);
    EXPECT_EQ(rs.base.arrival.nominalRate, 200.0);
    EXPECT_EQ(rs.base.arrival.amplitude, 0.3);
    EXPECT_EQ(rs.base.arrival.period, 90.0);
    EXPECT_EQ(rs.base.injectionRate, 200.0);
    EXPECT_EQ(rs.base.warmup, 2.0);
    EXPECT_EQ(rs.base.measure, 11.0);
    EXPECT_EQ(rs.space.injectionRate.lo, 100.0);
    EXPECT_EQ(rs.space.injectionRate.hi, 300.0);
    EXPECT_EQ(rs.space.mfgQueue.lo, 2.0);
    EXPECT_TRUE(rs.space.mfgQueue.integral);
    // Undeclared axes keep the paper-like range.
    EXPECT_EQ(rs.space.webQueue.lo,
              sim::SampleSpace::paperLike().webQueue.lo);
}

TEST(ScenarioResolveTest, MmppLowersRatesAndSetsMeanInjection)
{
    const ResolvedScenario rs = resolveText(
        "scenario \"b\";\n"
        "arrivals mmpp { rates [380, 900]; switch [0.05, 0.25]; }\n"
        "space { injection_rate 400 600; }\n");
    EXPECT_EQ(rs.base.arrival.kind, sim::ArrivalKind::Mmpp);
    ASSERT_EQ(rs.base.arrival.stateRates.size(), 2u);
    EXPECT_EQ(rs.base.arrival.stateRates[1], 900.0);
    EXPECT_EQ(rs.base.arrival.switchRates[0], 0.05);
    // injectionRate is the stationary mean: time shares proportional
    // to 1/switch, so (380/0.05 + 900/0.25) / (1/0.05 + 1/0.25).
    const double expected =
        (380.0 / 0.05 + 900.0 / 0.25) / (1.0 / 0.05 + 1.0 / 0.25);
    EXPECT_DOUBLE_EQ(rs.base.injectionRate, expected);
    EXPECT_DOUBLE_EQ(rs.base.arrival.meanRate(), expected);
}

TEST(ScenarioResolveTest, ClosedArrivalsSwitchTheLoadModel)
{
    const ResolvedScenario rs = resolveText(
        "scenario \"c\";\n"
        "arrivals closed { population 250; think 1.5; }\n");
    EXPECT_EQ(rs.base.loadModel, sim::LoadModel::Closed);
    EXPECT_EQ(rs.base.population, 250u);
    EXPECT_EQ(rs.base.thinkTime, 1.5);
}

TEST(ScenarioResolveTest, LetReferencesResolveThroughChains)
{
    const ResolvedScenario rs = resolveText(
        "let base = 300;\n"
        "let alias = base;\n"
        "scenario \"lets\";\n"
        "arrivals poisson { rate alias; }\n");
    EXPECT_EQ(rs.base.injectionRate, 300.0);
}

TEST(ScenarioResolveTest, DiagnosticsCoverTheSemanticFaults)
{
    // Each fault names the offending construct and carries a location.
    EXPECT_NE(std::string(resolveFailure("pool mfg { threads 4; }")
                              .what())
                  .find("scenario"),
              std::string::npos);
    EXPECT_NE(std::string(resolveFailure("scenario \"x\";\n"
                                         "arrivals warp { rate 1; }")
                              .what())
                  .find("warp"),
              std::string::npos);
    EXPECT_NE(std::string(resolveFailure("scenario \"x\";\n"
                                         "host { cores 2.5; }")
                              .what())
                  .find("whole number"),
              std::string::npos);
    EXPECT_NE(std::string(resolveFailure("scenario \"x\";\n"
                                         "run { measure 0; }")
                              .what())
                  .find("positive"),
              std::string::npos);
    EXPECT_NE(
        std::string(
            resolveFailure("scenario \"x\";\n"
                           "space { injection_rate 600 500; }")
                .what())
            .find("out of order"),
        std::string::npos);
    EXPECT_NE(std::string(resolveFailure("scenario \"Bad Name\";")
                              .what())
                  .find("[a-z0-9_]+"),
              std::string::npos);
    // Zeroing the whole mix is caught at the end, not by the
    // simulator's contracts.
    EXPECT_NE(
        std::string(resolveFailure("scenario \"x\";\n"
                                   "class manufacturing { mix 0; }\n"
                                   "class dealer_purchase { mix 0; }\n"
                                   "class dealer_manage { mix 0; }\n"
                                   "class dealer_browse { mix 0; }\n")
                        .what())
            .find("mix"),
        std::string::npos);

    const ScenarioError dup = resolveFailure(
        "scenario \"x\";\nrun { warmup 1; }\nrun { warmup 2; }");
    EXPECT_NE(std::string(dup.what()).find("duplicate"),
              std::string::npos);
    EXPECT_EQ(dup.loc().line, 3u);
}

TEST(ScenarioResolveTest, EveryLibraryNameLoadsAndMatchesItsFile)
{
    // The catalog is hard-coded so a missing file fails loudly; this
    // is that loud failure, plus the name<->stem convention.
    for (const std::string &name : libraryNames()) {
        const ResolvedScenario rs = loadNamed(name);
        EXPECT_EQ(rs.name, name);
        EXPECT_FALSE(rs.description.empty()) << name;
    }
}
