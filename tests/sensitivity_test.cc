/**
 * @file
 * Tests for the model sensitivity analysis.
 */

#include <gtest/gtest.h>

#include "model/linear_model.hh"
#include "model/sensitivity.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::analyzeSensitivity;
using wcnn::model::SensitivityReport;
using wcnn::numeric::Rng;

namespace {

/** y1 driven by a, y2 driven by b (with opposite sign). */
Dataset
separableDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds({"a", "b"}, {"y1", "y2"});
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(0, 10);
        const double b = rng.uniform(0, 10);
        ds.add({a, b}, {5.0 * a + 0.01 * b, 100.0 - 3.0 * b});
    }
    return ds;
}

} // namespace

TEST(SensitivityTest, IdentifiesDominantInputs)
{
    const Dataset ds = separableDataset(60, 1);
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SensitivityReport report = analyzeSensitivity(mdl, ds);
    EXPECT_EQ(report.dominantInput(0), 0u); // y1 <- a
    EXPECT_EQ(report.dominantInput(1), 1u); // y2 <- b
}

TEST(SensitivityTest, DirectionsCarrySigns)
{
    const Dataset ds = separableDataset(60, 2);
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SensitivityReport report = analyzeSensitivity(mdl, ds);
    EXPECT_GT(report.direction(0, 0), 0.0); // y1 grows with a
    EXPECT_LT(report.direction(1, 1), 0.0); // y2 falls with b
}

TEST(SensitivityTest, ElasticityIsRangeNormalized)
{
    // y = 5a over a in [0,10]: a full input swing moves y across its
    // whole range, so the elasticity should be ~1.
    const Dataset ds = separableDataset(60, 3);
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SensitivityReport report = analyzeSensitivity(mdl, ds);
    EXPECT_NEAR(report.elasticity(0, 0), 1.0, 0.05);
    // And the near-irrelevant cross term stays near zero.
    EXPECT_LT(report.elasticity(1, 0), 0.05);
}

TEST(SensitivityTest, TableFormatting)
{
    const Dataset ds = separableDataset(30, 4);
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SensitivityReport report = analyzeSensitivity(mdl, ds);
    const std::string text = report.toText();
    EXPECT_NE(text.find("y1"), std::string::npos);
    EXPECT_NE(text.find("a"), std::string::npos);
    EXPECT_NE(text.find("(+)"), std::string::npos);
    EXPECT_NE(text.find("(-)"), std::string::npos);
}

TEST(SensitivityTest, ConstantInputContributesNothing)
{
    Rng rng(5);
    Dataset ds({"a", "frozen"}, {"y"});
    for (int i = 0; i < 30; ++i) {
        const double a = rng.uniform(0, 1);
        ds.add({a, 7.0}, {2.0 * a});
    }
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SensitivityReport report = analyzeSensitivity(mdl, ds);
    EXPECT_DOUBLE_EQ(report.elasticity(1, 0), 0.0);
}

TEST(SensitivityTest, ProbeBudgetRespected)
{
    const Dataset ds = separableDataset(100, 6);
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    wcnn::model::SensitivityOptions opts;
    opts.maxProbes = 4; // coarse but still unbiased for a linear model
    const SensitivityReport report =
        analyzeSensitivity(mdl, ds, opts);
    EXPECT_NEAR(report.elasticity(0, 0), 1.0, 0.1);
}
