/**
 * @file
 * Tests for MLP text serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/serialize.hh"
#include "numeric/rng.hh"

using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::nn::SerializeError;
using wcnn::nn::Serializer;
using wcnn::numeric::Rng;

namespace {

Mlp
randomNet(std::uint64_t seed)
{
    Rng rng(seed);
    return Mlp(4,
               {LayerSpec{9, Activation::logistic(2.0)},
                LayerSpec{6, Activation::tanh()},
                LayerSpec{5, Activation::identity()}},
               InitRule::Xavier, rng);
}

} // namespace

TEST(SerializeTest, RoundTripPreservesExactBehaviour)
{
    const Mlp net = randomNet(1);
    std::stringstream ss;
    Serializer::write(net, ss);
    const Mlp loaded = Serializer::read(ss);

    EXPECT_EQ(loaded.inputDim(), net.inputDim());
    EXPECT_EQ(loaded.outputDim(), net.outputDim());
    EXPECT_EQ(loaded.depth(), net.depth());
    EXPECT_EQ(loaded.describe(), net.describe());

    Rng probe(2);
    for (int trial = 0; trial < 20; ++trial) {
        wcnn::numeric::Vector x(4);
        for (auto &v : x)
            v = probe.uniform(-3, 3);
        const auto a = net.forward(x);
        const auto b = loaded.forward(x);
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_DOUBLE_EQ(a[i], b[i]);
    }
}

TEST(SerializeTest, RoundTripPreservesExactParameters)
{
    const Mlp net = randomNet(3);
    std::stringstream ss;
    Serializer::write(net, ss);
    const Mlp loaded = Serializer::read(ss);
    for (std::size_t l = 0; l < net.depth(); ++l) {
        EXPECT_TRUE(loaded.weights(l) == net.weights(l));
        EXPECT_EQ(loaded.biases(l), net.biases(l));
    }
}

TEST(SerializeTest, FileSaveAndLoad)
{
    const std::string path = ::testing::TempDir() + "/wcnn_mlp.txt";
    const Mlp net = randomNet(4);
    Serializer::save(net, path);
    const Mlp loaded = Serializer::load(path);
    EXPECT_EQ(loaded.describe(), net.describe());
    std::remove(path.c_str());
}

TEST(SerializeTest, RejectsBadMagic)
{
    std::stringstream ss("not-a-model 1\n");
    EXPECT_THROW(Serializer::read(ss), SerializeError);
}

TEST(SerializeTest, RejectsBadVersion)
{
    std::stringstream ss("wcnn-mlp 99\ninput_dim 1\ndepth 1\n");
    EXPECT_THROW(Serializer::read(ss), SerializeError);
}

TEST(SerializeTest, RejectsTruncatedFile)
{
    const Mlp net = randomNet(5);
    std::ostringstream os;
    Serializer::write(net, os);
    const std::string full = os.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(Serializer::read(truncated), SerializeError);
}

TEST(SerializeTest, RejectsUnknownActivation)
{
    std::stringstream ss(
        "wcnn-mlp 1\ninput_dim 1\ndepth 1\nlayer 1 blorp\n");
    EXPECT_THROW(Serializer::read(ss), SerializeError);
}

TEST(SerializeTest, MissingFileThrows)
{
    EXPECT_THROW(Serializer::load("/nonexistent/net.txt"),
                 SerializeError);
}
