/**
 * @file
 * MicroBatcher determinism and admission control. The central claim —
 * a batched run is bit-identical to per-request ModelBundle::predict,
 * at every batch composition and thread count — is checked under real
 * concurrency (many client threads hammering one batcher) with exact
 * double equality, at pool sizes 1 and 4. Also pins: group atomicity
 * (a group larger than maxBatch still runs whole), typed admission
 * failures (Overloaded / NoModelError / BadRequest / stopped),
 * drain-on-stop, and counter arithmetic.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/batcher.hh"
#include "serve/bundle.hh"
#include "serve/error.hh"
#include "serve/registry.hh"

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BadRequest;
using wcnn::serve::BatcherOptions;
using wcnn::serve::BundlePtr;
using wcnn::serve::BundleRegistry;
using wcnn::serve::MicroBatcher;
using wcnn::serve::ModelBundle;
using wcnn::serve::NoModelError;
using wcnn::serve::Overloaded;
using wcnn::serve::PredictionFuture;
using wcnn::serve::ServeError;

namespace {

BundlePtr
makeBundle(std::uint64_t seed = 1)
{
    Rng rng(seed);
    Mlp net(3,
            {LayerSpec{8, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(net),
        Standardizer::fromMoments({1.0, 2.0, 3.0}, {0.5, 1.5, 2.0}),
        Standardizer::fromMoments({0.1, -0.2}, {2.0, 3.0}),
        {"a", "b", "c"}, {"u", "v"}, "batching"));
}

Vector
randomInput(Rng &rng)
{
    return {rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
}

/**
 * Hammer the batcher from `clients` threads and demand exact equality
 * with the direct (unbatched) bundle predict for every request.
 */
void
checkBitIdentityUnderLoad(std::size_t pool_threads, std::size_t clients,
                          std::size_t per_client)
{
    BundleRegistry registry;
    const BundlePtr bundle = makeBundle();
    registry.swap(bundle);

    BatcherOptions opts;
    opts.maxBatch = 16;
    opts.maxDelayUs = 500;
    opts.threads = pool_threads;
    MicroBatcher batcher(registry, opts);

    std::vector<std::thread> threads;
    std::vector<std::string> failures(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Rng rng = Rng::stream(99, c);
            for (std::size_t i = 0; i < per_client; ++i) {
                const Vector x = randomInput(rng);
                const Vector got = batcher.predictOne(x);
                const Vector want = bundle->predict(x);
                if (got.size() != want.size()) {
                    failures[c] = "size mismatch";
                    return;
                }
                for (std::size_t j = 0; j < want.size(); ++j)
                    if (got[j] != want[j]) { // exact, not approximate
                        failures[c] = "bit mismatch at output " +
                                      std::to_string(j);
                        return;
                    }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t c = 0; c < clients; ++c)
        EXPECT_EQ(failures[c], "") << "client " << c;

    const MicroBatcher::Stats s = batcher.stats();
    EXPECT_EQ(s.rows, clients * per_client);
    EXPECT_EQ(s.groups, clients * per_client);
    EXPECT_GE(s.batches, 1u);
    EXPECT_LE(s.batches, s.groups);
    EXPECT_GE(s.maxBatchRows, 1u);
    EXPECT_LE(s.maxBatchRows, opts.maxBatch);
}

} // namespace

TEST(ServeBatchingTest, BitIdenticalToDirectPredictSingleThreadPool)
{
    checkBitIdentityUnderLoad(1, 4, 40);
}

TEST(ServeBatchingTest, BitIdenticalToDirectPredictFourThreadPool)
{
    checkBitIdentityUnderLoad(4, 4, 40);
}

TEST(ServeBatchingTest, SubmitManyKeepsRowOrder)
{
    BundleRegistry registry;
    const BundlePtr bundle = makeBundle(2);
    registry.swap(bundle);
    MicroBatcher batcher(registry);

    Rng rng(5);
    Matrix xs(9, 3);
    for (std::size_t i = 0; i < xs.rows(); ++i)
        xs.setRow(i, randomInput(rng));
    const Matrix ys = batcher.submitMany(xs).get();
    ASSERT_EQ(ys.rows(), xs.rows());
    for (std::size_t i = 0; i < xs.rows(); ++i) {
        const Vector want = bundle->predict(xs.row(i));
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(ys(i, j), want[j]) << "row " << i;
    }
}

TEST(ServeBatchingTest, GroupLargerThanMaxBatchRunsWhole)
{
    BundleRegistry registry;
    const BundlePtr bundle = makeBundle(3);
    registry.swap(bundle);

    BatcherOptions opts;
    opts.maxBatch = 4; // group of 11 rows exceeds it
    MicroBatcher batcher(registry, opts);

    Rng rng(6);
    Matrix xs(11, 3);
    for (std::size_t i = 0; i < xs.rows(); ++i)
        xs.setRow(i, randomInput(rng));
    const Matrix ys = batcher.submitMany(xs).get();
    ASSERT_EQ(ys.rows(), 11u);
    for (std::size_t i = 0; i < xs.rows(); ++i) {
        const Vector want = bundle->predict(xs.row(i));
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(ys(i, j), want[j]) << "row " << i;
    }
}

TEST(ServeBatchingTest, MaxBatchOneStillAnswersExactly)
{
    BundleRegistry registry;
    const BundlePtr bundle = makeBundle(4);
    registry.swap(bundle);

    BatcherOptions opts;
    opts.maxBatch = 1; // per-request baseline configuration
    opts.maxDelayUs = 0;
    MicroBatcher batcher(registry, opts);

    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        const Vector x = randomInput(rng);
        const Vector got = batcher.predictOne(x);
        const Vector want = bundle->predict(x);
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(got[j], want[j]);
    }
}

TEST(ServeBatchingTest, NoModelDeployedThrowsTyped)
{
    BundleRegistry registry; // never swapped
    MicroBatcher batcher(registry);
    EXPECT_THROW((void)batcher.predictOne({1.0, 2.0, 3.0}),
                 NoModelError);
}

TEST(ServeBatchingTest, ArityMismatchThrowsBadRequest)
{
    BundleRegistry registry;
    registry.swap(makeBundle());
    MicroBatcher batcher(registry);
    EXPECT_THROW((void)batcher.predictOne({1.0, 2.0}), BadRequest);
    Matrix wide(2, 5);
    EXPECT_THROW((void)batcher.submitMany(wide), BadRequest);
}

TEST(ServeBatchingTest, EmptyGroupThrowsBadRequest)
{
    BundleRegistry registry;
    registry.swap(makeBundle());
    MicroBatcher batcher(registry);
    Matrix empty(0, 3);
    EXPECT_THROW((void)batcher.submitMany(empty), BadRequest);
}

TEST(ServeBatchingTest, QueueBoundRejectsWithOverloaded)
{
    BundleRegistry registry;
    registry.swap(makeBundle());

    BatcherOptions opts;
    opts.maxQueueRows = 8;
    opts.maxBatch = 4;
    opts.maxDelayUs = 50000; // keep the dispatcher waiting
    MicroBatcher batcher(registry, opts);

    // Flood with more queued rows than the bound allows; at least one
    // submit must be rejected typed (exact count is timing-dependent,
    // the stats must agree with whatever happened).
    Rng rng(8);
    std::vector<PredictionFuture> accepted;
    std::uint64_t rejected = 0;
    for (int g = 0; g < 64; ++g) {
        Matrix xs(3, 3);
        for (std::size_t i = 0; i < xs.rows(); ++i)
            xs.setRow(i, randomInput(rng));
        try {
            accepted.push_back(batcher.submitMany(std::move(xs)));
        } catch (const Overloaded &) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u);
    for (PredictionFuture &f : accepted)
        EXPECT_EQ(f.get().rows(), 3u);
    EXPECT_EQ(batcher.stats().rejected, rejected);
    EXPECT_EQ(batcher.stats().groups, accepted.size());
}

TEST(ServeBatchingTest, StopDrainsQueuedGroupsThenRefuses)
{
    BundleRegistry registry;
    const BundlePtr bundle = makeBundle(9);
    registry.swap(bundle);

    BatcherOptions opts;
    opts.maxDelayUs = 20000; // queued groups linger until stop()
    MicroBatcher batcher(registry, opts);

    Rng rng(9);
    std::vector<Vector> inputs;
    std::vector<PredictionFuture> futures;
    for (int g = 0; g < 6; ++g) {
        Matrix xs(1, 3);
        const Vector x = randomInput(rng);
        xs.setRow(0, x);
        inputs.push_back(x);
        futures.push_back(batcher.submitMany(std::move(xs)));
    }
    batcher.stop(); // must drain: every future resolves with a result
    for (std::size_t g = 0; g < futures.size(); ++g) {
        const Matrix ys = futures[g].get();
        const Vector want = bundle->predict(inputs[g]);
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(ys(0, j), want[j]) << "group " << g;
    }
    EXPECT_THROW((void)batcher.predictOne({1.0, 2.0, 3.0}), ServeError);
    batcher.stop(); // idempotent
}

TEST(ServeBatchingTest, IncompatibleSwapFailsPendingGroupTyped)
{
    // A group queued for a 3-input bundle must fail typed — not crash,
    // not answer garbage — when a 2-input bundle is swapped in before
    // the dispatcher reaches it. Enqueue while stopped-ish is not
    // possible, so use a long batch window to widen the race-free
    // ordering: queue, swap, then wait.
    BundleRegistry registry;
    registry.swap(makeBundle());

    BatcherOptions opts;
    opts.maxDelayUs = 100000;
    opts.maxBatch = 64;
    MicroBatcher batcher(registry, opts);

    Matrix xs(1, 3);
    xs.setRow(0, {1.0, 2.0, 3.0});
    PredictionFuture f = batcher.submitMany(std::move(xs));

    Rng rng(10);
    Mlp small(2, {LayerSpec{2, Activation::identity()}},
              InitRule::SmallUniform, rng);
    registry.swap(std::make_shared<const ModelBundle>(
        ModelBundle::fromParts(std::move(small),
                               Standardizer::identity(2),
                               Standardizer::identity(2), {"a", "b"},
                               {"u", "v"}, "narrow")));
    batcher.stop();
    // The queued group raced the swap: either it ran against the old
    // bundle snapshot (valid answer) or was revalidated against the
    // new one and failed typed. Both are correct; crashing or hanging
    // is not.
    try {
        const Matrix ys = f.get();
        EXPECT_EQ(ys.rows(), 1u);
    } catch (const BadRequest &) {
    }
}
