/**
 * @file
 * ModelBundle: the deployable artifact. Pins the prediction identity
 * (predict == yStd.inverse(net.forward(xStd.transform(x))) exactly),
 * the bit-exact save/load round trip of the `wcnn-bundle` format, the
 * legacy-format load paths (bare `wcnn-mlp` and `wcnn-nn-model`, both
 * with a deprecation loadNote), and typed failures on malformed
 * artifacts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "data/standardizer.hh"
#include "model/nn_model.hh"
#include "nn/mlp.hh"
#include "nn/serialize.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"

using wcnn::data::Dataset;
using wcnn::data::Standardizer;
using wcnn::model::NnModel;
using wcnn::model::NnModelOptions;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::nn::SerializeError;
using wcnn::nn::Serializer;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::ModelBundle;

namespace {

Mlp
makeNet(std::uint64_t seed)
{
    Rng rng(seed);
    return Mlp(3,
               {LayerSpec{8, Activation::logistic(1.0)},
                LayerSpec{2, Activation::identity()}},
               InitRule::SmallUniform, rng);
}

ModelBundle
makeBundle(std::uint64_t seed = 1)
{
    return ModelBundle::fromParts(
        makeNet(seed),
        Standardizer::fromMoments({1.0, 2.0, 3.0}, {0.5, 1.5, 2.0}),
        Standardizer::fromMoments({0.1, -0.2}, {2.0, 3.0}),
        {"a", "b", "c"}, {"u", "v"}, "test-tag");
}

} // namespace

TEST(ServeBundleTest, ExposesSchemaAndTag)
{
    const ModelBundle bundle = makeBundle();
    EXPECT_TRUE(bundle.fitted());
    EXPECT_EQ(bundle.inputDim(), 3u);
    EXPECT_EQ(bundle.outputDim(), 2u);
    EXPECT_EQ(bundle.inputNames(),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(bundle.outputNames(),
              (std::vector<std::string>{"u", "v"}));
    EXPECT_EQ(bundle.tag(), "test-tag");
    EXPECT_TRUE(bundle.loadNote().empty());
}

TEST(ServeBundleTest, PredictComposesStandardizersAndNetwork)
{
    const ModelBundle bundle = makeBundle();
    const Vector x{0.7, -1.3, 5.5};
    const Vector expected = bundle.outputTransform().inverse(
        bundle.network().forward(bundle.inputTransform().transform(x)));
    const Vector got = bundle.predict(x);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], expected[j]) << "output " << j;
}

TEST(ServeBundleTest, PredictAllBitIdenticalToPerRow)
{
    const ModelBundle bundle = makeBundle();
    Rng rng(7);
    wcnn::numeric::Matrix xs(17, 3);
    for (std::size_t i = 0; i < xs.rows(); ++i)
        xs.setRow(i, {rng.uniform(-3, 3), rng.uniform(-3, 3),
                      rng.uniform(-3, 3)});
    const wcnn::numeric::Matrix ys = bundle.predictAll(xs);
    ASSERT_EQ(ys.rows(), xs.rows());
    for (std::size_t i = 0; i < xs.rows(); ++i) {
        const Vector yi = bundle.predict(xs.row(i));
        for (std::size_t j = 0; j < yi.size(); ++j)
            EXPECT_EQ(ys(i, j), yi[j]) << "row " << i;
    }
}

TEST(ServeBundleTest, SaveLoadRoundTripsBitExact)
{
    const ModelBundle bundle = makeBundle(3);
    std::stringstream ss;
    bundle.save(ss);
    const ModelBundle loaded = ModelBundle::load(ss);

    EXPECT_EQ(loaded.inputNames(), bundle.inputNames());
    EXPECT_EQ(loaded.outputNames(), bundle.outputNames());
    EXPECT_EQ(loaded.tag(), bundle.tag());
    EXPECT_TRUE(loaded.loadNote().empty());

    const Vector x{2.25, -0.5, 1.0};
    const Vector a = bundle.predict(x);
    const Vector b = loaded.predict(x);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j)
        EXPECT_EQ(a[j], b[j]) << "output " << j;
}

TEST(ServeBundleTest, FromModelMatchesNnModelPredict)
{
    // A real (tiny) training run: the bundle must answer exactly like
    // the NnModel it was cut from.
    Dataset ds({"a", "b"}, {"y"});
    Rng rng(11);
    for (int i = 0; i < 24; ++i) {
        const double a = rng.uniform(0, 4);
        const double b = rng.uniform(0, 4);
        ds.add({a, b}, {a + 0.5 * b});
    }
    NnModelOptions opts;
    opts.hiddenUnits = {4};
    opts.train.maxEpochs = 50;
    opts.seed = 5;
    NnModel mdl(opts);
    mdl.fit(ds);

    const ModelBundle bundle =
        ModelBundle::fromModel(mdl, ds.inputs(), ds.outputs(), "cut");
    EXPECT_EQ(bundle.inputNames(), ds.inputs());
    EXPECT_EQ(bundle.outputNames(), ds.outputs());

    const Vector x{1.5, 2.5};
    const Vector want = mdl.predict(x);
    const Vector got = bundle.predict(x);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
}

TEST(ServeBundleTest, LegacyNnModelArtifactLoadsWithDeprecationNote)
{
    Dataset ds({"a", "b"}, {"y"});
    Rng rng(13);
    for (int i = 0; i < 16; ++i) {
        const double a = rng.uniform(0, 2);
        const double b = rng.uniform(0, 2);
        ds.add({a, b}, {2 * a - b});
    }
    NnModelOptions opts;
    opts.hiddenUnits = {3};
    opts.train.maxEpochs = 20;
    NnModel mdl(opts);
    mdl.fit(ds);

    std::stringstream legacy;
    mdl.save(legacy); // writes the wcnn-nn-model format, no schema
    const ModelBundle bundle = ModelBundle::load(legacy);

    EXPECT_FALSE(bundle.loadNote().empty());
    ASSERT_EQ(bundle.inputDim(), 2u); // synthesized x0.. names
    ASSERT_EQ(bundle.inputNames().size(), 2u);
    ASSERT_EQ(bundle.outputNames().size(), 1u);

    const Vector x{0.75, 1.25};
    const Vector want = mdl.predict(x);
    const Vector got = bundle.predict(x);
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
}

TEST(ServeBundleTest, LegacyBareMlpLoadsWithIdentityStandardizers)
{
    const Mlp net = makeNet(17);
    std::stringstream legacy;
    Serializer::write(net, legacy); // bare wcnn-mlp, weights only
    const ModelBundle bundle = ModelBundle::load(legacy);

    EXPECT_FALSE(bundle.loadNote().empty());
    // Identity standardizers: the bundle answers like the raw net.
    const Vector x{0.1, -0.4, 2.0};
    const Vector want = net.forward(x);
    const Vector got = bundle.predict(x);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]);
}

TEST(ServeBundleTest, MalformedArtifactThrowsTyped)
{
    std::stringstream garbage("not-an-artifact 42\njunk\n");
    EXPECT_THROW((void)ModelBundle::load(garbage), SerializeError);

    std::stringstream empty;
    EXPECT_THROW((void)ModelBundle::load(empty), SerializeError);
}

TEST(ServeBundleTest, TruncatedBundleThrowsTyped)
{
    std::stringstream ss;
    makeBundle().save(ss);
    const std::string whole = ss.str();
    std::stringstream half(whole.substr(0, whole.size() / 2));
    EXPECT_THROW((void)ModelBundle::load(half), SerializeError);
}

TEST(ServeBundleTest, WhitespaceSchemaNamesRefuseToSave)
{
    const ModelBundle bundle = ModelBundle::fromParts(
        makeNet(19), Standardizer::identity(3),
        Standardizer::identity(2), {"a", "bad name", "c"}, {"u", "v"},
        "t");
    std::stringstream ss;
    EXPECT_THROW(bundle.save(ss), SerializeError);
}
