/**
 * @file
 * PredictionCache: exact-key semantics (bit-pattern equality, so
 * -0.0 and 0.0 are distinct keys and NaN inputs hit themselves), LRU
 * eviction order per shard, exact hit/miss/eviction/invalidation
 * accounting, the disabled (capacity 0) mode, and thread-safety of
 * concurrent mixed lookups/inserts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "serve/cache.hh"

using wcnn::numeric::Vector;
using wcnn::serve::CacheOptions;
using wcnn::serve::hashVector;
using wcnn::serve::PredictionCache;

TEST(ServeCacheTest, MissThenInsertThenHitExactBits)
{
    PredictionCache cache;
    const Vector x{1.0, -2.5, 3.25};
    const Vector y{0.125, 42.0};
    Vector out;
    EXPECT_FALSE(cache.lookup(x, out));
    cache.insert(x, y);
    ASSERT_TRUE(cache.lookup(x, out));
    ASSERT_EQ(out.size(), y.size());
    for (std::size_t j = 0; j < y.size(); ++j)
        EXPECT_EQ(out[j], y[j]);

    const PredictionCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hitRatio(), 0.5);
}

TEST(ServeCacheTest, LruEvictionDropsLeastRecentlyUsed)
{
    CacheOptions opts;
    opts.capacity = 2;
    opts.shards = 1; // one shard so the LRU order is global
    PredictionCache cache(opts);

    const Vector a{1.0}, b{2.0}, c{3.0};
    Vector out;
    cache.insert(a, {10.0});
    cache.insert(b, {20.0});
    ASSERT_TRUE(cache.lookup(a, out)); // a becomes MRU, b is LRU
    cache.insert(c, {30.0});           // evicts b

    EXPECT_FALSE(cache.lookup(b, out));
    EXPECT_TRUE(cache.lookup(a, out));
    EXPECT_TRUE(cache.lookup(c, out));
    const PredictionCache::Stats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(ServeCacheTest, InsertRefreshesExistingKey)
{
    CacheOptions opts;
    opts.capacity = 4;
    opts.shards = 1;
    PredictionCache cache(opts);
    const Vector x{7.0};
    cache.insert(x, {1.0});
    cache.insert(x, {2.0}); // refresh, not a second entry
    Vector out;
    ASSERT_TRUE(cache.lookup(x, out));
    EXPECT_EQ(out[0], 2.0);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ServeCacheTest, SignedZeroAndNanAreExactKeys)
{
    PredictionCache cache;
    const Vector pos{0.0};
    const Vector neg{-0.0};
    const Vector nan{std::numeric_limits<double>::quiet_NaN()};
    Vector out;

    cache.insert(pos, {1.0});
    ASSERT_TRUE(cache.lookup(pos, out));
    // -0.0 == 0.0 as doubles, but the key is the bit pattern:
    EXPECT_FALSE(cache.lookup(neg, out));

    cache.insert(nan, {3.0});
    // NaN != NaN as doubles, but the bit pattern hits itself:
    ASSERT_TRUE(cache.lookup(nan, out));
    EXPECT_EQ(out[0], 3.0);

    EXPECT_NE(hashVector(pos), hashVector(neg));
    EXPECT_EQ(hashVector(nan), hashVector(nan));
}

TEST(ServeCacheTest, ClearInvalidatesButKeepsHistory)
{
    PredictionCache cache;
    const Vector x{5.0};
    Vector out;
    cache.insert(x, {1.0});
    ASSERT_TRUE(cache.lookup(x, out));
    cache.clear();
    EXPECT_FALSE(cache.lookup(x, out));

    const PredictionCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_GE(s.invalidations, 1u);
    EXPECT_EQ(s.hits, 1u); // history survives the clear
    EXPECT_EQ(s.insertions, 1u);
}

TEST(ServeCacheTest, DisabledCacheIsInert)
{
    CacheOptions opts;
    opts.capacity = 0;
    PredictionCache cache(opts);
    EXPECT_FALSE(cache.enabled());
    const Vector x{1.0};
    Vector out;
    cache.insert(x, {2.0});
    EXPECT_FALSE(cache.lookup(x, out));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ServeCacheTest, ShardCountClampsToCapacity)
{
    CacheOptions opts;
    opts.capacity = 3;
    opts.shards = 64;
    PredictionCache cache(opts);
    EXPECT_GE(cache.shardCount(), 1u);
    EXPECT_LE(cache.shardCount(), 3u);
    EXPECT_EQ(cache.capacity(), 3u);
}

TEST(ServeCacheTest, CapacityBoundHoldsUnderChurn)
{
    CacheOptions opts;
    opts.capacity = 16;
    opts.shards = 4;
    PredictionCache cache(opts);
    for (int i = 0; i < 500; ++i)
        cache.insert({static_cast<double>(i)},
                     {static_cast<double>(2 * i)});
    const PredictionCache::Stats s = cache.stats();
    EXPECT_LE(s.entries, 16u);
    EXPECT_EQ(s.insertions, 500u);
    EXPECT_EQ(s.insertions - s.evictions, s.entries);
}

TEST(ServeCacheTest, ConcurrentMixedAccessStaysConsistent)
{
    CacheOptions opts;
    opts.capacity = 64;
    opts.shards = 8;
    PredictionCache cache(opts);

    const std::size_t kThreads = 4;
    const int kOps = 400;
    std::vector<std::thread> threads;
    std::vector<int> wrong(kThreads, 0);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kOps; ++i) {
                const double k = static_cast<double>(i % 50);
                const Vector x{k};
                Vector out;
                if (cache.lookup(x, out) && out[0] != 3 * k)
                    ++wrong[t]; // a hit must return what was inserted
                cache.insert(x, {3 * k});
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(wrong[t], 0) << "thread " << t;

    const PredictionCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, kThreads * kOps);
    EXPECT_LE(s.entries, 64u);
}
