/**
 * @file
 * The serving equivalence gate: epoll engine vs threaded reference.
 *
 * The repo's discipline for fast paths is "admitted only through an
 * equivalence gate" (kernel_equivalence_test pins the SIMD kernels to
 * the reference kernels bit-for-bit). This suite is the serving
 * counterpart: the epoll EventServer earns its place by producing
 * BYTE-IDENTICAL response streams to the thread-per-connection
 * InferenceServer on the same scripted traffic — binary framing and
 * JSON lines, pipelined bursts under different TCP fragmentations,
 * typed per-request errors, wire garbage, connection-limit
 * rejections, and hot swap under load. Where hard byte-identity
 * would require fixing TCP segmentation itself (queue-overload
 * timing), the suite pins the ordering *semantics* instead: every
 * request gets an in-order typed outcome on both engines.
 *
 * The scripted clients write raw protocol bytes, half-close, and
 * slurp the response stream to EOF — no client-library smarts hide a
 * server-side difference. Identical per-client streams across
 * engines (and across chunkings of the same frames) is the whole
 * assertion.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"
#include "serve/engine.hh"
#include "serve/error.hh"
#include "serve/net/client.hh"
#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"

namespace net = wcnn::serve::net;

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BundlePtr;
using wcnn::serve::EngineKind;
using wcnn::serve::makeServer;
using wcnn::serve::ModelBundle;
using wcnn::serve::Overloaded;
using wcnn::serve::ServeOptions;

namespace {

constexpr const char *kHost = "127.0.0.1";

const EngineKind kEngines[] = {EngineKind::Threaded,
                               EngineKind::Epoll};

BundlePtr
makeBundle(std::uint64_t seed = 7)
{
    Rng rng(seed);
    Mlp mlp(3,
            {LayerSpec{6, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(mlp), Standardizer::identity(3),
        Standardizer::identity(2), {"a", "b", "c"}, {"u", "v"},
        "equivalence-" + std::to_string(seed)));
}

/** One scripted client: raw byte chunks written in order, with an
 *  optional pause between chunks to force separate server reads. */
struct ClientScript
{
    std::vector<net::Bytes> chunks;
    int interChunkDelayMs = 0;
};

/** Append-concatenate. */
void
append(net::Bytes &to, const net::Bytes &piece)
{
    to.insert(to.end(), piece.begin(), piece.end());
}

net::Bytes
fromString(const std::string &text)
{
    return net::Bytes(text.begin(), text.end());
}

/** Split a byte string into fixed-size pieces. */
std::vector<net::Bytes>
splitChunks(const net::Bytes &all, std::size_t piece)
{
    std::vector<net::Bytes> out;
    for (std::size_t off = 0; off < all.size(); off += piece) {
        const std::size_t end = std::min(off + piece, all.size());
        out.emplace_back(all.begin() + static_cast<std::ptrdiff_t>(off),
                         all.begin() + static_cast<std::ptrdiff_t>(end));
    }
    return out;
}

/**
 * Run every script concurrently against a fresh server of the given
 * engine: write the chunks, half-close, slurp the response stream to
 * EOF. Returns one raw byte stream per client.
 */
std::vector<net::Bytes>
runScripts(EngineKind kind, const ServeOptions &opts,
           const BundlePtr &bundle,
           const std::vector<ClientScript> &scripts)
{
    auto server = makeServer(kind, opts);
    server->deploy(bundle);
    server->start();

    std::vector<net::Bytes> streams(scripts.size());
    std::vector<std::thread> threads;
    threads.reserve(scripts.size());
    for (std::size_t i = 0; i < scripts.size(); ++i) {
        threads.emplace_back([&, i] {
            net::TcpStream stream =
                net::TcpStream::connect(kHost, server->port());
            for (const net::Bytes &chunk : scripts[i].chunks) {
                stream.writeAll(chunk.data(), chunk.size());
                if (scripts[i].interChunkDelayMs > 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            scripts[i].interChunkDelayMs));
            }
            stream.shutdownWrite();
            std::uint8_t buf[4096];
            std::size_t n = 0;
            while (stream.readSome(buf, sizeof(buf), n, 10000) ==
                   net::ReadStatus::Data)
                streams[i].insert(streams[i].end(), buf, buf + n);
        });
    }
    for (std::thread &t : threads)
        t.join();
    server->stop();
    return streams;
}

/** Decode a raw response stream into frames (must parse cleanly). */
std::vector<net::Frame>
decodeStream(const net::Bytes &stream)
{
    std::vector<net::Frame> frames;
    std::size_t off = 0;
    while (off < stream.size()) {
        const net::DecodeResult r =
            net::tryDecode(stream.data() + off, stream.size() - off);
        EXPECT_EQ(r.status, net::DecodeStatus::Frame)
            << "undecodable response stream at offset " << off;
        if (r.status != net::DecodeStatus::Frame)
            break;
        frames.push_back(r.frame);
        off += r.consumed;
    }
    return frames;
}

} // namespace

TEST(ServeEquivalenceTest,
     BinaryPipeliningIsChunkingInvariantAndByteIdentical)
{
    const BundlePtr bundle = makeBundle();

    // The same 8 pipelined requests, three TCP fragmentations: one
    // frame per write, everything in one write, and 7-byte shreds
    // (every length prefix split across segments).
    Rng rng(101);
    net::Bytes all;
    std::vector<net::Bytes> perFrame;
    for (int i = 0; i < 8; ++i) {
        const Vector x{rng.uniform(-2, 2), rng.uniform(-2, 2),
                       rng.uniform(-2, 2)};
        perFrame.push_back(net::encodeRequest(x));
        append(all, perFrame.back());
    }
    const std::vector<ClientScript> scripts = {
        ClientScript{perFrame, 1},
        ClientScript{{all}, 0},
        ClientScript{splitChunks(all, 7), 1},
    };

    std::vector<net::Bytes> reference;
    for (const EngineKind kind : kEngines) {
        const std::vector<net::Bytes> streams =
            runScripts(kind, ServeOptions{}, bundle, scripts);
        // Chunking invariance within one engine: the response stream
        // depends on the frames sent, never on TCP segmentation.
        EXPECT_EQ(streams[0], streams[1])
            << wcnn::serve::engineName(kind);
        EXPECT_EQ(streams[0], streams[2])
            << wcnn::serve::engineName(kind);
        ASSERT_EQ(decodeStream(streams[0]).size(), 8u);
        if (reference.empty())
            reference = streams;
        else
            EXPECT_EQ(streams, reference)
                << "epoll engine diverged from threaded reference";
    }
}

TEST(ServeEquivalenceTest, MixedPingsAndRequestsKeepArrivalOrder)
{
    const BundlePtr bundle = makeBundle();
    const Vector x0{0.5, -1.0, 1.5};
    const Vector x1{1.5, 0.25, -0.5};
    const Vector x2{-0.75, 2.0, 0.0};

    net::Bytes burst;
    append(burst, net::encodeRequest(x0));
    append(burst, net::encodePing());
    append(burst, net::encodeRequest(x1));
    append(burst, net::encodePing());
    append(burst, net::encodeRequest(x2));

    net::Bytes reference;
    for (const EngineKind kind : kEngines) {
        const std::vector<net::Bytes> streams = runScripts(
            kind, ServeOptions{}, bundle, {ClientScript{{burst}, 0}});
        const std::vector<net::Frame> frames =
            decodeStream(streams[0]);
        // Strict arrival order: a pong never overtakes the response
        // of a request received before it.
        ASSERT_EQ(frames.size(), 5u) << wcnn::serve::engineName(kind);
        EXPECT_EQ(frames[0].type, net::FrameType::Response);
        EXPECT_EQ(frames[1].type, net::FrameType::Pong);
        EXPECT_EQ(frames[2].type, net::FrameType::Response);
        EXPECT_EQ(frames[3].type, net::FrameType::Pong);
        EXPECT_EQ(frames[4].type, net::FrameType::Response);
        const Vector want0 = bundle->predict(x0);
        for (std::size_t j = 0; j < want0.size(); ++j)
            EXPECT_EQ(frames[0].values[j], want0[j]);
        if (reference.empty())
            reference = streams[0];
        else
            EXPECT_EQ(streams[0], reference);
    }
}

TEST(ServeEquivalenceTest, TypedErrorsAndGarbageAreByteIdentical)
{
    const BundlePtr bundle = makeBundle();

    // good, wrong-arity, good, then wire garbage: the responses and
    // the bad-request error keep arrival order, the protocol error
    // for the garbage comes last, then the connection closes.
    net::Bytes burst;
    append(burst, net::encodeRequest({1.0, 2.0, 3.0}));
    append(burst, net::encodeRequest({4.0, 5.0})); // arity 2 != 3
    append(burst, net::encodeRequest({6.0, 7.0, 8.0}));
    append(burst, fromString("zz")); // not a frame

    net::Bytes reference;
    for (const EngineKind kind : kEngines) {
        const std::vector<net::Bytes> streams = runScripts(
            kind, ServeOptions{}, bundle, {ClientScript{{burst}, 0}});
        const std::vector<net::Frame> frames =
            decodeStream(streams[0]);
        ASSERT_EQ(frames.size(), 4u) << wcnn::serve::engineName(kind);
        EXPECT_EQ(frames[0].type, net::FrameType::Response);
        EXPECT_EQ(frames[1].type, net::FrameType::Error);
        EXPECT_EQ(frames[1].errorKind, "serve.bad_request");
        EXPECT_EQ(frames[2].type, net::FrameType::Response);
        EXPECT_EQ(frames[3].type, net::FrameType::Error);
        EXPECT_EQ(frames[3].errorKind, "serve.protocol");
        if (reference.empty())
            reference = streams[0];
        else
            EXPECT_EQ(streams[0], reference);
    }
}

TEST(ServeEquivalenceTest, JsonLinesModeIsByteIdentical)
{
    const BundlePtr bundle = makeBundle();

    // Client 0: predict / ping / wrong-arity / predict — all valid
    // JSON, so the connection stays open until the half-close.
    net::Bytes lines0;
    append(lines0,
           fromString("{\"op\":\"predict\",\"x\":[0.5,-1.0,1.5]}\n"));
    append(lines0, fromString("{\"op\":\"ping\"}\n"));
    append(lines0, fromString("{\"op\":\"predict\",\"x\":[1.0]}\n"));
    append(lines0,
           fromString("{\"op\":\"predict\",\"x\":[2.0,0.25,-0.5]}\n"));

    // Client 1: one good line, then a line with an embedded NUL — a
    // protocol error that closes the connection.
    std::string nul_line = "{\"op\":\"predict\",";
    nul_line += '\0';
    nul_line += "\"x\":[1,2,3]}\n";
    net::Bytes lines1;
    append(lines1,
           fromString("{\"op\":\"predict\",\"x\":[1.0,1.0,1.0]}\n"));
    append(lines1, fromString(nul_line));

    const std::vector<ClientScript> scripts = {
        ClientScript{splitChunks(lines0, 11), 1}, // shredded lines
        ClientScript{{lines1}, 0},
    };

    std::vector<net::Bytes> reference;
    for (const EngineKind kind : kEngines) {
        const std::vector<net::Bytes> streams =
            runScripts(kind, ServeOptions{}, bundle, scripts);
        const std::string s0(streams[0].begin(), streams[0].end());
        EXPECT_NE(s0.find("\"pong\":true"), std::string::npos)
            << wcnn::serve::engineName(kind);
        EXPECT_NE(s0.find("serve.bad_request"), std::string::npos);
        const std::string s1(streams[1].begin(), streams[1].end());
        EXPECT_NE(s1.find("serve.protocol"), std::string::npos);
        if (reference.empty())
            reference = streams;
        else
            EXPECT_EQ(streams, reference);
    }
}

TEST(ServeEquivalenceTest, ConnectionLimitRejectionIsByteIdentical)
{
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.maxConnections = 1;

    net::Bytes reference;
    for (const EngineKind kind : kEngines) {
        auto server = makeServer(kind, opts);
        server->deploy(bundle);
        server->start();

        // Occupy the single slot, with a round trip to guarantee the
        // connection is fully registered on both engines.
        net::ServeClient occupant =
            net::ServeClient::connect(kHost, server->port());
        (void)occupant.predict({1.0, 2.0, 3.0});

        // The surplus connection gets the typed rejection, then EOF.
        net::TcpStream surplus =
            net::TcpStream::connect(kHost, server->port());
        net::Bytes stream;
        std::uint8_t buf[4096];
        std::size_t n = 0;
        while (surplus.readSome(buf, sizeof(buf), n, 10000) ==
               net::ReadStatus::Data)
            stream.insert(stream.end(), buf, buf + n);

        const std::vector<net::Frame> frames = decodeStream(stream);
        ASSERT_EQ(frames.size(), 1u) << wcnn::serve::engineName(kind);
        EXPECT_EQ(frames[0].type, net::FrameType::Error);
        EXPECT_EQ(frames[0].errorKind, "serve.overloaded");
        EXPECT_EQ(server->stats().rejectedConnections, 1u);
        if (reference.empty())
            reference = stream;
        else
            EXPECT_EQ(stream, reference);
        server->stop();
    }
}

TEST(ServeEquivalenceTest, HotSwapUnderLoadIsIdenticalOnBothEngines)
{
    const BundlePtr bundleA = makeBundle(21);
    const BundlePtr bundleB = makeBundle(22);

    // Deterministic request set, reused in both phases so the swap's
    // cache invalidation is also exercised.
    Rng rng(33);
    std::vector<Vector> xs;
    for (int i = 0; i < 6; ++i)
        xs.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)});

    for (const EngineKind kind : kEngines) {
        auto server = makeServer(kind, ServeOptions{});
        server->deploy(bundleA);
        server->start();

        // A churn client pipelines throughout the swap: every answer
        // must be bit-exact under SOME deployed bundle, and once B
        // appears, A never comes back (monotone transition).
        std::atomic<bool> churn_stop{false};
        std::string churn_failure;
        const Vector churn_x{0.125, -0.25, 0.5};
        std::thread churn([&] {
            const Vector wantA = bundleA->predict(churn_x);
            const Vector wantB = bundleB->predict(churn_x);
            bool saw_b = false;
            try {
                net::ServeClient client =
                    net::ServeClient::connect(kHost, server->port());
                while (!churn_stop.load()) {
                    const Vector got = client.predict(churn_x);
                    const bool is_a = got == wantA;
                    const bool is_b = got == wantB;
                    if (!is_a && !is_b) {
                        churn_failure = "answer under no bundle";
                        return;
                    }
                    if (is_b)
                        saw_b = true;
                    else if (saw_b && is_a) {
                        churn_failure = "bundle A after bundle B";
                        return;
                    }
                }
            } catch (const wcnn::Error &e) {
                churn_failure = e.what();
            }
        });

        net::ServeClient client =
            net::ServeClient::connect(kHost, server->port());
        for (const Vector &x : xs) {
            const Vector got = client.predict(x);
            const Vector want = bundleA->predict(x);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t j = 0; j < want.size(); ++j)
                EXPECT_EQ(got[j], want[j])
                    << wcnn::serve::engineName(kind) << " phase A";
        }

        server->deploy(bundleB);

        for (const Vector &x : xs) {
            const Vector got = client.predict(x);
            const Vector want = bundleB->predict(x);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t j = 0; j < want.size(); ++j)
                EXPECT_EQ(got[j], want[j])
                    << wcnn::serve::engineName(kind) << " phase B";
        }

        churn_stop.store(true);
        churn.join();
        EXPECT_EQ(churn_failure, "")
            << wcnn::serve::engineName(kind);
        server->stop();
    }
}

TEST(ServeEquivalenceTest, QueueOverloadKeepsOrderingSemantics)
{
    // Hard byte-identity here would require fixing TCP segmentation
    // itself (which read chunk a request lands in decides its batch
    // group). The pinned contract is the ordering SEMANTICS: every
    // pipelined request gets an in-order outcome — a bit-exact
    // response or a typed serve.overloaded error — and a queue this
    // small must overload on both engines.
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.cache.capacity = 0; // misses only: every request queues
    opts.batch.maxQueueRows = 2;
    opts.batch.maxBatch = 64;
    opts.batch.maxDelayUs = 250000; // hold groups: keep rows pending

    Rng rng(55);
    std::vector<Vector> xs;
    for (int i = 0; i < 16; ++i)
        xs.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)});

    for (const EngineKind kind : kEngines) {
        auto server = makeServer(kind, opts);
        server->deploy(bundle);
        server->start();

        net::ServeClient client =
            net::ServeClient::connect(kHost, server->port(), 30000);
        for (const Vector &x : xs)
            client.sendPredict(x);

        int overloaded = 0;
        int exact = 0;
        for (const Vector &x : xs) {
            try {
                const Vector got = client.readPrediction();
                const Vector want = bundle->predict(x);
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t j = 0; j < want.size(); ++j)
                    EXPECT_EQ(got[j], want[j])
                        << wcnn::serve::engineName(kind);
                ++exact;
            } catch (const Overloaded &) {
                ++overloaded;
            }
        }
        // Every request answered in order, and the 16-request burst
        // cannot fit a 2-row queue: overload must have fired.
        EXPECT_EQ(exact + overloaded, 16)
            << wcnn::serve::engineName(kind);
        EXPECT_GE(overloaded, 1) << wcnn::serve::engineName(kind);
        server->stop();
    }
}
