/**
 * @file
 * Wire protocol codec: binary frame round trips are bit-exact (NaN
 * and -0.0 payloads survive the wire), decoding is incremental
 * (NeedMore on every strict prefix), multi-frame buffers decode in
 * order, and every malformed frame in tests/corpus/wire_*.bin is
 * rejected as Malformed — never decoded, never crashing. Plus the
 * JSON-lines encoding: parseJsonLine, round-trip response precision,
 * and typed rejection of garbage lines.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "serve/error.hh"
#include "serve/net/protocol.hh"

namespace net = wcnn::serve::net;

using net::Bytes;
using net::DecodeStatus;
using net::Frame;
using net::FrameType;
using net::tryDecode;
using wcnn::numeric::Vector;
using wcnn::serve::ProtocolError;

namespace {

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** The checked-in malformed-frame corpus; missing files fail loudly. */
const char *const kWireCorpus[] = {
    "wire_bad_magic.bin",
    "wire_unknown_type.bin",
    "wire_type_zero.bin",
    "wire_oversize_body.bin",
    "wire_ping_nonempty.bin",
    "wire_request_short_body.bin",
    "wire_request_count_mismatch.bin",
    "wire_request_empty_vector.bin",
    "wire_error_kind_overrun.bin",
    "wire_error_msg_overrun.bin",
};

Bytes
slurp(const std::string &name)
{
    const std::string path = std::string(WCNN_CORPUS_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ADD_FAILURE() << "corpus file missing: " << path;
        return {};
    }
    return Bytes(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
}

} // namespace

TEST(ServeProtocolTest, RequestRoundTripsBitExact)
{
    const Vector x{1.5, -0.0, std::nan("0x7ff"), 6.02214076e23};
    const Bytes wire = net::encodeRequest(x);
    const net::DecodeResult r = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(r.status, DecodeStatus::Frame);
    EXPECT_EQ(r.consumed, wire.size());
    ASSERT_EQ(r.frame.type, FrameType::Request);
    ASSERT_EQ(r.frame.values.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(bits(r.frame.values[i]), bits(x[i])) << "value " << i;
}

TEST(ServeProtocolTest, ResponseRoundTripsBitExact)
{
    const Vector y{-123.456, 1e-308};
    const Bytes wire = net::encodeResponse(y);
    const net::DecodeResult r = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(r.status, DecodeStatus::Frame);
    ASSERT_EQ(r.frame.type, FrameType::Response);
    ASSERT_EQ(r.frame.values.size(), y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(bits(r.frame.values[i]), bits(y[i]));
}

TEST(ServeProtocolTest, ErrorFrameCarriesKindAndMessage)
{
    const Bytes wire =
        net::encodeError("serve.overloaded", "queue is full");
    const net::DecodeResult r = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(r.status, DecodeStatus::Frame);
    ASSERT_EQ(r.frame.type, FrameType::Error);
    EXPECT_EQ(r.frame.errorKind, "serve.overloaded");
    EXPECT_EQ(r.frame.errorMessage, "queue is full");
}

TEST(ServeProtocolTest, PingPongRoundTrip)
{
    const Bytes ping = net::encodePing();
    const Bytes pong = net::encodePong();
    EXPECT_EQ(tryDecode(ping.data(), ping.size()).frame.type,
              FrameType::Ping);
    EXPECT_EQ(tryDecode(pong.data(), pong.size()).frame.type,
              FrameType::Pong);
}

TEST(ServeProtocolTest, ObserveRoundTripsBitExact)
{
    const Vector x{1.5, -0.0, 6.02214076e23};
    const Vector y{-123.456, 1e-308};
    const Bytes wire = net::encodeObserve(x, y);
    const net::DecodeResult r = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(r.status, DecodeStatus::Frame);
    EXPECT_EQ(r.consumed, wire.size());
    ASSERT_EQ(r.frame.type, FrameType::Observe);
    ASSERT_EQ(r.frame.values.size(), x.size());
    ASSERT_EQ(r.frame.observed.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(bits(r.frame.values[i]), bits(x[i])) << "x " << i;
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(bits(r.frame.observed[i]), bits(y[i])) << "y " << i;
}

TEST(ServeProtocolTest, AckRoundTrips)
{
    const Bytes wire = net::encodeAck();
    const net::DecodeResult r = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(r.status, DecodeStatus::Frame);
    EXPECT_EQ(r.frame.type, FrameType::Ack);
    EXPECT_EQ(r.consumed, wire.size());
}

TEST(ServeProtocolTest, ObserveEveryStrictPrefixNeedsMore)
{
    const Bytes wire = net::encodeObserve({1.0, 2.0}, {3.0});
    for (std::size_t n = 0; n < wire.size(); ++n)
        EXPECT_EQ(tryDecode(wire.data(), n).status,
                  DecodeStatus::NeedMore)
            << "prefix of " << n << " bytes";
}

TEST(ServeProtocolTest, ObserveRejectsMalformedCounts)
{
    // Empty vectors are meaningless feedback: both sides rejected.
    Bytes wire = net::encodeObserve({1.0}, {2.0});
    // Patch xCount to 0 (first two body bytes, little-endian).
    wire[6] = 0;
    wire[7] = 0;
    EXPECT_EQ(tryDecode(wire.data(), wire.size()).status,
              DecodeStatus::Malformed);

    // Counts that disagree with the body length are malformed, not a
    // read past the buffer.
    Bytes oversize = net::encodeObserve({1.0}, {2.0});
    oversize[6] = 0xff;
    EXPECT_EQ(tryDecode(oversize.data(), oversize.size()).status,
              DecodeStatus::Malformed);
}

TEST(ServeProtocolTest, JsonObserveLineParses)
{
    const std::string line =
        "{\"op\":\"observe\",\"x\":[1.5,2.5],\"y\":[3.5]}";
    const net::Frame frame = net::parseJsonLine(line);
    EXPECT_EQ(frame.type, FrameType::Observe);
    ASSERT_EQ(frame.values.size(), 2u);
    ASSERT_EQ(frame.observed.size(), 1u);
    EXPECT_EQ(frame.values[0], 1.5);
    EXPECT_EQ(frame.observed[0], 3.5);
}

TEST(ServeProtocolTest, JsonObserveRequiresBothVectors)
{
    EXPECT_THROW(
        (void)net::parseJsonLine("{\"op\":\"observe\",\"x\":[1.0]}"),
        ProtocolError);
    EXPECT_THROW(
        (void)net::parseJsonLine("{\"op\":\"observe\",\"y\":[1.0]}"),
        ProtocolError);
}

TEST(ServeProtocolTest, JsonAckLineIsStable)
{
    EXPECT_EQ(net::formatJsonAck(),
              "{\"ok\":true,\"observed\":true}\n");
}

TEST(ServeProtocolTest, EveryStrictPrefixNeedsMore)
{
    const Bytes wire = net::encodeRequest({1.0, 2.0, 3.0});
    for (std::size_t n = 0; n < wire.size(); ++n)
        EXPECT_EQ(tryDecode(wire.data(), n).status,
                  DecodeStatus::NeedMore)
            << "prefix of " << n << " bytes";
    EXPECT_EQ(tryDecode(wire.data(), wire.size()).status,
              DecodeStatus::Frame);
}

TEST(ServeProtocolTest, MultipleFramesDecodeInOrder)
{
    Bytes wire = net::encodeRequest({1.0});
    const Bytes second = net::encodePing();
    wire.insert(wire.end(), second.begin(), second.end());

    const net::DecodeResult first = tryDecode(wire.data(), wire.size());
    ASSERT_EQ(first.status, DecodeStatus::Frame);
    EXPECT_EQ(first.frame.type, FrameType::Request);
    const net::DecodeResult next =
        tryDecode(wire.data() + first.consumed,
                  wire.size() - first.consumed);
    ASSERT_EQ(next.status, DecodeStatus::Frame);
    EXPECT_EQ(next.frame.type, FrameType::Ping);
}

TEST(ServeProtocolTest, CorpusFramesAreAllMalformed)
{
    for (const char *name : kWireCorpus) {
        const Bytes wire = slurp(name);
        if (wire.empty())
            continue; // slurp already failed the test
        const net::DecodeResult r = tryDecode(wire.data(), wire.size());
        EXPECT_EQ(r.status, DecodeStatus::Malformed) << name;
        EXPECT_FALSE(r.error.empty()) << name;
    }
}

TEST(ServeProtocolTest, CorpusFramesStayMalformedWithTrailingBytes)
{
    // Garbage followed by more bytes must not become decodable.
    for (const char *name : kWireCorpus) {
        Bytes wire = slurp(name);
        if (wire.empty())
            continue;
        wire.resize(wire.size() + 64, 0x00);
        EXPECT_EQ(tryDecode(wire.data(), wire.size()).status,
                  DecodeStatus::Malformed)
            << name;
    }
}

TEST(ServeProtocolTest, JsonPredictLineParses)
{
    const Frame f =
        net::parseJsonLine(R"({"op":"predict","x":[1.5,-2.0,3]})");
    ASSERT_EQ(f.type, FrameType::Request);
    ASSERT_EQ(f.values.size(), 3u);
    EXPECT_EQ(f.values[0], 1.5);
    EXPECT_EQ(f.values[1], -2.0);
    EXPECT_EQ(f.values[2], 3.0);
}

TEST(ServeProtocolTest, JsonPingLineParses)
{
    EXPECT_EQ(net::parseJsonLine(R"({"op":"ping"})").type,
              FrameType::Ping);
}

TEST(ServeProtocolTest, JsonGarbageThrowsTyped)
{
    EXPECT_THROW((void)net::parseJsonLine("not json"), ProtocolError);
    EXPECT_THROW((void)net::parseJsonLine("{"), ProtocolError);
    EXPECT_THROW((void)net::parseJsonLine(R"({"op":"launch"})"),
                 ProtocolError);
    EXPECT_THROW((void)net::parseJsonLine(R"({"op":"predict"})"),
                 ProtocolError);
    EXPECT_THROW(
        (void)net::parseJsonLine(R"({"op":"predict","x":["a"]})"),
        ProtocolError);
    EXPECT_THROW((void)net::parseJsonLine(""), ProtocolError);
}

TEST(ServeProtocolTest, JsonResponseRoundTripsAtFullPrecision)
{
    const Vector y{0.1, -1.0 / 3.0, 6.02214076e23};
    const std::string line = net::formatJsonResponse(y);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

    // %.17g round-trips doubles exactly: pull the numbers back out.
    const std::size_t open = line.find('[');
    const std::size_t close = line.find(']');
    ASSERT_NE(open, std::string::npos);
    ASSERT_NE(close, std::string::npos);
    std::string nums = line.substr(open + 1, close - open - 1);
    for (char &ch : nums)
        if (ch == ',')
            ch = ' ';
    const char *p = nums.c_str();
    for (std::size_t i = 0; i < y.size(); ++i) {
        char *end = nullptr;
        const double v = std::strtod(p, &end);
        ASSERT_NE(p, end);
        EXPECT_EQ(bits(v), bits(y[i])) << "value " << i;
        p = end;
    }
}

TEST(ServeProtocolTest, JsonErrorLineEscapesMessage)
{
    const std::string line =
        net::formatJsonError("serve.bad_request", "a \"quoted\" fault");
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("serve.bad_request"), std::string::npos);
    EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
}

TEST(ServeProtocolTest, LooksLikeJsonOnOpeningBrace)
{
    EXPECT_TRUE(net::looksLikeJson(static_cast<std::uint8_t>('{')));
    EXPECT_FALSE(net::looksLikeJson(net::kMagic));
    EXPECT_FALSE(net::looksLikeJson(static_cast<std::uint8_t>(' ')));
}
