/**
 * @file
 * InferenceServer end to end over localhost TCP: bit-identity of the
 * remote predict with the local bundle, pipelined order, both wire
 * encodings (binary frames and JSON lines on one port), typed remote
 * faults (no model, arity, overload, malformed bytes), hot swap with
 * cache invalidation, idle handling, graceful drain, and exact stats.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"
#include "serve/error.hh"
#include "serve/net/client.hh"
#include "serve/net/socket.hh"
#include "serve/server.hh"

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BadRequest;
using wcnn::serve::BundlePtr;
using wcnn::serve::InferenceServer;
using wcnn::serve::ModelBundle;
using wcnn::serve::NoModelError;
using wcnn::serve::Overloaded;
using wcnn::serve::ServeError;
using wcnn::serve::ServeOptions;

namespace net = wcnn::serve::net;

namespace {

constexpr const char *kHost = "127.0.0.1";

BundlePtr
makeBundle(std::uint64_t seed = 1, std::size_t inputs = 3)
{
    Rng rng(seed);
    Mlp mlp(inputs,
            {LayerSpec{6, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    std::vector<std::string> in_names;
    for (std::size_t i = 0; i < inputs; ++i)
        in_names.push_back("p" + std::to_string(i));
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(mlp), Standardizer::identity(inputs),
        Standardizer::identity(2), in_names, {"u", "v"}, "server"));
}

void
expectExactlyEqual(const Vector &got, const Vector &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], want[j]) << "output " << j;
}

/** Read JSON lines from a raw stream until `lines` have arrived. */
std::vector<std::string>
readJsonLines(net::TcpStream &stream, std::size_t lines)
{
    std::string buffer;
    std::uint8_t chunk[1024];
    std::vector<std::string> out;
    while (out.size() < lines) {
        std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            out.push_back(buffer.substr(0, newline));
            buffer.erase(0, newline + 1);
            continue;
        }
        std::size_t n = 0;
        const net::ReadStatus status =
            stream.readSome(chunk, sizeof(chunk), n, 5000);
        if (status != net::ReadStatus::Data)
            break; // EOF/timeout: return what we have, caller asserts
        buffer.append(reinterpret_cast<const char *>(chunk), n);
    }
    return out;
}

} // namespace

TEST(ServeServerTest, RemotePredictBitIdenticalToLocal)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    Rng rng(2);
    for (int i = 0; i < 25; ++i) {
        const Vector x{rng.uniform(-2, 2), rng.uniform(-2, 2),
                       rng.uniform(-2, 2)};
        expectExactlyEqual(client.predict(x), bundle->predict(x));
    }
    EXPECT_TRUE(client.ping());
    client.close();
    server.stop();

    const InferenceServer::Stats s = server.stats();
    EXPECT_EQ(s.accepted, 1u);
    EXPECT_EQ(s.requests, 25u);
    EXPECT_EQ(s.pings, 1u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(ServeServerTest, PipelinedRequestsAnswerInSendOrder)
{
    const BundlePtr bundle = makeBundle(3);
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const std::size_t kDepth = 32;
    std::vector<Vector> sent;
    for (std::size_t i = 0; i < kDepth; ++i) {
        const Vector x{static_cast<double>(i), 0.5, -0.25};
        sent.push_back(x);
        client.sendPredict(x);
    }
    for (std::size_t i = 0; i < kDepth; ++i)
        expectExactlyEqual(client.readPrediction(),
                           bundle->predict(sent[i]));
    server.stop();
    EXPECT_EQ(server.stats().requests, kDepth);
}

TEST(ServeServerTest, ConcurrentClientsAllGetExactAnswers)
{
    const BundlePtr bundle = makeBundle(4, 2);
    ServeOptions opts;
    opts.cache.capacity = 256; // mixed cache/batch paths
    InferenceServer server(opts);
    server.deploy(bundle);
    server.start();

    const std::size_t kClients = 4;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                net::ServeClient client =
                    net::ServeClient::connect(kHost, server.port());
                Rng rng = Rng::stream(77, c);
                for (int i = 0; i < 50; ++i) {
                    // Small key space: plenty of cache hits.
                    const Vector x{std::floor(rng.uniform(0, 8)),
                                   std::floor(rng.uniform(0, 8))};
                    const Vector got = client.predict(x);
                    const Vector want = bundle->predict(x);
                    for (std::size_t j = 0; j < want.size(); ++j)
                        if (got[j] != want[j]) {
                            failures[c] = "mismatch";
                            return;
                        }
                }
            } catch (const std::exception &e) {
                failures[c] = e.what();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    server.stop();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], "") << "client " << c;
    // The tiny key space must have produced real cache traffic.
    EXPECT_GT(server.cacheStats().hits, 0u);
    EXPECT_EQ(server.stats().requests, kClients * 50u);
}

TEST(ServeServerTest, JsonLinesShareThePort)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();

    net::TcpStream stream = net::TcpStream::connect(kHost, server.port());
    const std::string lines = "{\"op\":\"ping\"}\n"
                              "{\"op\":\"predict\",\"x\":[1,2,3]}\n"
                              "{\"op\":\"predict\",\"x\":[1,2]}\n";
    stream.writeAll(lines.data(), lines.size());
    const std::vector<std::string> replies = readJsonLines(stream, 3);
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_NE(replies[0].find("\"pong\""), std::string::npos);
    EXPECT_NE(replies[1].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(replies[1].find("\"y\":["), std::string::npos);
    EXPECT_NE(replies[2].find("\"ok\":false"), std::string::npos);
    EXPECT_NE(replies[2].find("serve.bad_request"), std::string::npos);
    stream.close();
    server.stop();
    EXPECT_EQ(server.stats().pings, 1u);
}

TEST(ServeServerTest, NoModelDeployedAnswersTyped)
{
    InferenceServer server; // no deploy()
    server.start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_THROW((void)client.predict({1.0, 2.0, 3.0}), NoModelError);
    // The connection survives a typed error:
    EXPECT_TRUE(client.ping());
    server.stop();
}

TEST(ServeServerTest, ArityMismatchAnswersTypedAndKeepsServing)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    server.start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_THROW((void)client.predict({1.0}), BadRequest);
    const Vector x{1.0, 2.0, 3.0};
    expectExactlyEqual(client.predict(x), bundle->predict(x));
    server.stop();
    EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ServeServerTest, ConnectionLimitRejectsSurplusTyped)
{
    ServeOptions opts;
    opts.maxConnections = 1;
    InferenceServer server(opts);
    server.deploy(makeBundle());
    server.start();

    net::ServeClient first =
        net::ServeClient::connect(kHost, server.port());
    ASSERT_TRUE(first.ping()); // the slot is definitely taken

    // The surplus connection is answered with an unsolicited typed
    // error frame and closed — read it without sending anything (a
    // send could race the server-side close into a transport error).
    net::ServeClient second =
        net::ServeClient::connect(kHost, server.port());
    const net::Frame rejection = second.readFrame();
    ASSERT_EQ(rejection.type, net::FrameType::Error);
    EXPECT_EQ(rejection.errorKind, "serve.overloaded");

    // Releasing the slot lets new connections in again.
    first.close();
    for (int attempt = 0;; ++attempt) {
        net::ServeClient retry =
            net::ServeClient::connect(kHost, server.port());
        try {
            expectExactlyEqual(retry.predict({1.0, 2.0, 3.0}),
                               server.active()->predict({1.0, 2.0, 3.0}));
            break;
        } catch (const Overloaded &) {
            // The server may not have reaped the first connection yet.
            ASSERT_LT(attempt, 100) << "slot never freed";
            std::this_thread::yield();
        }
    }
    server.stop();
    EXPECT_GE(server.stats().rejectedConnections, 1u);
}

TEST(ServeServerTest, MalformedBytesGetProtocolErrorThenClose)
{
    InferenceServer server;
    server.deploy(makeBundle());
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const std::uint8_t garbage[] = {0xB1, 0x42, 0x00, 0x00, 0x00, 0x00};
    client.rawSend(garbage, sizeof(garbage));
    const net::Frame frame = client.readFrame();
    ASSERT_EQ(frame.type, net::FrameType::Error);
    EXPECT_EQ(frame.errorKind, "serve.protocol");
    // The connection is closed after the error frame:
    EXPECT_THROW((void)client.readFrame(), ServeError);

    // ... and the server still serves new connections.
    net::ServeClient next =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_TRUE(next.ping());
    server.stop();
}

TEST(ServeServerTest, HotSwapServesNewModelAndInvalidatesCache)
{
    const BundlePtr first = makeBundle(100);
    const BundlePtr second = makeBundle(200);
    ServeOptions opts;
    opts.cache.capacity = 64;
    InferenceServer server(opts);
    server.deploy(first);
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const Vector x{0.5, -1.0, 2.0};
    expectExactlyEqual(client.predict(x), first->predict(x));
    // Warm hit on the first bundle:
    expectExactlyEqual(client.predict(x), first->predict(x));
    EXPECT_GE(server.cacheStats().hits, 1u);

    server.deploy(second);
    // Same key, new model: the swap must have dropped the cached
    // first-bundle answer.
    expectExactlyEqual(client.predict(x), second->predict(x));
    EXPECT_GE(server.cacheStats().invalidations, 1u);
    server.stop();
}

TEST(ServeServerTest, InProcessPredictMatchesWirePredict)
{
    const BundlePtr bundle = makeBundle(7);
    ServeOptions opts;
    opts.cache.capacity = 32;
    InferenceServer server(opts);
    server.deploy(bundle);
    server.start();

    const Vector x{1.25, 0.5, -0.75};
    const Vector local = server.predict(x);
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    expectExactlyEqual(client.predict(x), local);
    expectExactlyEqual(local, bundle->predict(x));
    server.stop();
}

TEST(ServeServerTest, PredictManyMixesCacheAndBatchCorrectly)
{
    const BundlePtr bundle = makeBundle(8);
    ServeOptions opts;
    opts.cache.capacity = 32;
    InferenceServer server(opts);
    server.deploy(bundle);

    // Warm two of four keys, then ask for all four in one call.
    const Vector a{1.0, 1.0, 1.0}, b{2.0, 2.0, 2.0};
    (void)server.predict(a);
    (void)server.predict(b);

    wcnn::numeric::Matrix xs(4, 3);
    xs.setRow(0, a);
    xs.setRow(1, {3.0, 3.0, 3.0});
    xs.setRow(2, b);
    xs.setRow(3, {4.0, 4.0, 4.0});
    const wcnn::numeric::Matrix ys = server.predictMany(xs);
    ASSERT_EQ(ys.rows(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        const Vector want = bundle->predict(xs.row(i));
        for (std::size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(ys(i, j), want[j]) << "row " << i;
    }
    EXPECT_GE(server.cacheStats().hits, 2u);
}

TEST(ServeServerTest, StopIsIdempotentAndDrains)
{
    InferenceServer server;
    server.deploy(makeBundle());
    server.start();
    EXPECT_TRUE(server.running());
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    client.sendPredict({1.0, 2.0, 3.0});
    // Graceful drain: the buffered request is still answered.
    const Vector y = client.readPrediction();
    EXPECT_EQ(y.size(), 2u);
    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // idempotent
    // A fresh server can bind again right away (no leaked listener).
    InferenceServer again;
    again.deploy(makeBundle());
    again.start();
    EXPECT_TRUE(again.running());
    again.stop();
}

TEST(ServeServerTest, PerRequestBaselineModeAnswersIdentically)
{
    // coalesceFrames=false is the bench baseline; it must change
    // performance only, never results.
    const BundlePtr bundle = makeBundle(9);
    ServeOptions opts;
    opts.coalesceFrames = false;
    opts.batch.maxBatch = 1;
    InferenceServer server(opts);
    server.deploy(bundle);
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    const std::size_t kDepth = 8;
    std::vector<Vector> sent;
    for (std::size_t i = 0; i < kDepth; ++i) {
        const Vector x{static_cast<double>(i), -1.0, 0.5};
        sent.push_back(x);
        client.sendPredict(x);
    }
    for (std::size_t i = 0; i < kDepth; ++i)
        expectExactlyEqual(client.readPrediction(),
                           bundle->predict(sent[i]));
    server.stop();
}

TEST(ServeServerTest, ObserveRoundTripsAndFeedsTheSink)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);

    // The sink sees (x, incumbent prediction, observation) for every
    // accepted record, in wire order.
    struct Seen
    {
        Vector x, predicted, observed;
    };
    std::vector<Seen> seen;
    server.setObservationSink([&seen](const Vector &x,
                                      const Vector &predicted,
                                      const Vector &observed) {
        seen.push_back({x, predicted, observed});
    });
    server.start();

    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    client.observe({1.0, 2.0, 3.0}, {4.0, 5.0});
    client.observe({0.5, 0.5, 0.5}, {1.0, 1.0});
    client.close();
    server.stop();

    ASSERT_EQ(seen.size(), 2u);
    expectExactlyEqual(seen[0].x, {1.0, 2.0, 3.0});
    expectExactlyEqual(seen[0].predicted,
                       bundle->predict({1.0, 2.0, 3.0}));
    expectExactlyEqual(seen[0].observed, {4.0, 5.0});
    expectExactlyEqual(seen[1].observed, {1.0, 1.0});
    const InferenceServer::Stats s = server.stats();
    EXPECT_EQ(s.observations, 2u);
    EXPECT_EQ(s.droppedObservations, 0u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(ServeServerTest, ObserveArityMismatchAnswersTypedAndKeepsServing)
{
    InferenceServer server;
    server.deploy(makeBundle());
    server.start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    // Wrong x arity, then wrong y arity: typed BadRequest both times,
    // and the connection keeps serving afterwards.
    EXPECT_THROW(client.observe({1.0}, {1.0, 2.0}), BadRequest);
    EXPECT_THROW(client.observe({1.0, 2.0, 3.0}, {1.0}), BadRequest);
    client.observe({1.0, 2.0, 3.0}, {1.0, 2.0});
    EXPECT_EQ(client.predict({1.0, 2.0, 3.0}).size(), 2u);
    server.stop();
    EXPECT_EQ(server.stats().observations, 1u);
}

TEST(ServeServerTest, ObserveWithoutModelAnswersTyped)
{
    InferenceServer server;
    server.start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    EXPECT_THROW(client.observe({1.0}, {1.0}), NoModelError);
    server.stop();
}

TEST(ServeServerTest, JsonObserveSharesThePort)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    std::vector<Vector> observed;
    server.setObservationSink(
        [&observed](const Vector &, const Vector &, const Vector &o) {
            observed.push_back(o);
        });
    server.start();

    net::TcpStream stream = net::TcpStream::connect(kHost, server.port());
    const std::string lines =
        "{\"op\":\"observe\",\"x\":[1,2,3],\"y\":[7.5,8.5]}\n"
        "{\"op\":\"predict\",\"x\":[1,2,3]}\n";
    stream.writeAll(lines.data(), lines.size());
    const std::vector<std::string> replies = readJsonLines(stream, 2);
    server.stop();

    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(replies[0], "{\"ok\":true,\"observed\":true}");
    EXPECT_EQ(replies[1].find("{\"ok\":true,\"y\":["), 0u);
    ASSERT_EQ(observed.size(), 1u);
    expectExactlyEqual(observed[0], {7.5, 8.5});
}

TEST(ServeServerTest, FaultedSinkDropsRecordButStillAcks)
{
    const BundlePtr bundle = makeBundle();
    InferenceServer server;
    server.deploy(bundle);
    std::size_t calls = 0;
    server.setObservationSink(
        [&calls](const Vector &, const Vector &, const Vector &) {
            if (++calls == 2)
                throw wcnn::serve::ServeError("sink exploded");
        });
    server.start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server.port());
    // All three observes are Acked; the middle record is dropped and
    // counted, invisible to the client.
    client.observe({1.0, 2.0, 3.0}, {1.0, 1.0});
    client.observe({2.0, 2.0, 3.0}, {1.0, 1.0});
    client.observe({3.0, 2.0, 3.0}, {1.0, 1.0});
    server.stop();
    EXPECT_EQ(calls, 3u);
    const InferenceServer::Stats s = server.stats();
    EXPECT_EQ(s.observations, 3u);
    EXPECT_EQ(s.droppedObservations, 1u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(ServeServerTest, MultiAcceptorServesEveryClientExactly)
{
    // SO_REUSEPORT fan-in: 4 accept loops share the port on the epoll
    // engine; every client still gets bit-exact answers regardless of
    // which listener the kernel hands it to.
    const BundlePtr bundle = makeBundle(6, 2);
    ServeOptions opts;
    opts.acceptors = 4;
    opts.shards = 2;
    auto server =
        wcnn::serve::makeServer(wcnn::serve::EngineKind::Epoll, opts);
    server->deploy(bundle);
    server->start();

    constexpr int kClients = 12;
    constexpr int kRequests = 20;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                net::ServeClient client =
                    net::ServeClient::connect(kHost, server->port());
                Rng rng(1000 + static_cast<std::uint64_t>(c));
                for (int i = 0; i < kRequests; ++i) {
                    const Vector x{rng.uniform(-1, 1),
                                   rng.uniform(-1, 1)};
                    const Vector want = bundle->predict(x);
                    const Vector got = client.predict(x);
                    if (got != want)
                        failures.fetch_add(1);
                }
            } catch (const std::exception &) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    server->stop();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server->stats().accepted,
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(server->stats().requests,
              static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(ServeServerTest, SingleAcceptorDefaultBehavesAsBefore)
{
    // acceptors=1 must not set SO_REUSEPORT or change observable
    // behaviour: one listener, same accept/stop semantics.
    ServeOptions opts;
    opts.acceptors = 1;
    auto server =
        wcnn::serve::makeServer(wcnn::serve::EngineKind::Epoll, opts);
    server->deploy(makeBundle());
    server->start();
    net::ServeClient client =
        net::ServeClient::connect(kHost, server->port());
    EXPECT_EQ(client.predict({1.0, 2.0, 3.0}).size(), 2u);
    server->stop();
    EXPECT_FALSE(server->running());
}
