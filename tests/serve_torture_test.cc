/**
 * @file
 * Protocol torture harness: hostile and degenerate clients against
 * BOTH serving engines. Where the equivalence suite proves the happy
 * paths byte-identical, this suite pins the ugly ones: byte-drip
 * feeds, length prefixes split across TCP segments, frames whose
 * declared lengths lie (oversized, zero), slow-loris connections
 * squatting past the idle timeout, and half-closed peers. The
 * contract is the same typed outcome on both engines — answered
 * exactly, answered with a typed error frame, or silently dropped at
 * the timeout — and never a hang and never a leaked file descriptor
 * (asserted by counting /proc/self/fd before and after each server's
 * full lifetime).
 *
 * One scenario is client-side: ClientDeadlineCoversDrippedFrames
 * pins the ServeClient regression where a per-read timeout let a
 * server dripping one byte per window hold the client forever (see
 * the decode-loop comment in src/serve/net/client.cc).
 */

#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/telemetry.hh"
#include "data/standardizer.hh"
#include "nn/mlp.hh"
#include "numeric/rng.hh"
#include "serve/bundle.hh"
#include "serve/engine.hh"
#include "serve/error.hh"
#include "serve/net/client.hh"
#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"

namespace net = wcnn::serve::net;

using wcnn::data::Standardizer;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;
using wcnn::serve::BundlePtr;
using wcnn::serve::EngineKind;
using wcnn::serve::makeServer;
using wcnn::serve::ModelBundle;
using wcnn::serve::ServeError;
using wcnn::serve::ServeOptions;
using wcnn::serve::ServerEngine;

namespace {

constexpr const char *kHost = "127.0.0.1";

/** Open descriptors of this process (the fd-leak oracle). */
int
countOpenFds()
{
    DIR *dir = opendir("/proc/self/fd");
    if (dir == nullptr)
        return -1;
    int count = 0;
    while (const dirent *entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..")
            ++count;
    }
    closedir(dir);
    return count;
}

BundlePtr
makeBundle(std::uint64_t seed = 9)
{
    Rng rng(seed);
    Mlp mlp(3,
            {LayerSpec{6, Activation::logistic(1.0)},
             LayerSpec{2, Activation::identity()}},
            InitRule::SmallUniform, rng);
    return std::make_shared<const ModelBundle>(ModelBundle::fromParts(
        std::move(mlp), Standardizer::identity(3),
        Standardizer::identity(2), {"a", "b", "c"}, {"u", "v"},
        "torture"));
}

const Vector kX{0.5, -1.25, 2.0};

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Slurp a connection's remaining bytes to EOF (bounded by timeout
 *  per read; a stall fails the test instead of hanging it). */
net::Bytes
readToEof(net::TcpStream &stream, int timeout_ms = 10000)
{
    net::Bytes out;
    std::uint8_t buf[4096];
    std::size_t n = 0;
    net::ReadStatus status;
    while ((status = stream.readSome(buf, sizeof(buf), n,
                                     timeout_ms)) ==
           net::ReadStatus::Data)
        out.insert(out.end(), buf, buf + n);
    EXPECT_EQ(status, net::ReadStatus::Eof)
        << "server stalled instead of closing";
    return out;
}

/** Decode a full response stream into frames; garbage fails. */
std::vector<net::Frame>
decodeStream(const net::Bytes &stream)
{
    std::vector<net::Frame> frames;
    std::size_t off = 0;
    while (off < stream.size()) {
        const net::DecodeResult r =
            net::tryDecode(stream.data() + off, stream.size() - off);
        EXPECT_EQ(r.status, net::DecodeStatus::Frame)
            << "undecodable response stream at offset " << off;
        if (r.status != net::DecodeStatus::Frame)
            break;
        frames.push_back(r.frame);
        off += r.consumed;
    }
    return frames;
}

/** A raw binary frame header with an arbitrary declared length. */
net::Bytes
rawHeader(net::FrameType type, std::uint32_t body_len)
{
    net::Bytes h;
    h.push_back(net::kMagic);
    h.push_back(static_cast<std::uint8_t>(type));
    for (int shift = 0; shift < 32; shift += 8)
        h.push_back(
            static_cast<std::uint8_t>((body_len >> shift) & 0xFF));
    return h;
}

void
expectExactResponse(const net::Frame &frame, const BundlePtr &bundle,
                    const Vector &x)
{
    ASSERT_EQ(frame.type, net::FrameType::Response);
    const Vector want = bundle->predict(x);
    ASSERT_EQ(frame.values.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j)
        EXPECT_EQ(frame.values[j], want[j]);
}

class ServeTortureTest : public ::testing::TestWithParam<EngineKind>
{
  protected:
    std::unique_ptr<ServerEngine> makeEngine(ServeOptions opts = {})
    {
        return makeServer(GetParam(), std::move(opts));
    }
};

} // namespace

/** One byte per write: incremental decode must reassemble the frame
 *  and answer it exactly, on both engines. */
TEST_P(ServeTortureTest, ByteDripFeedIsAnsweredExactly)
{
    const BundlePtr bundle = makeBundle();
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine();
        server->deploy(bundle);
        server->start();

        net::TcpStream stream =
            net::TcpStream::connect(kHost, server->port());
        const net::Bytes frame = net::encodeRequest(kX);
        for (const std::uint8_t byte : frame) {
            stream.writeAll(&byte, 1);
            sleepMs(2);
        }
        stream.shutdownWrite();
        const std::vector<net::Frame> frames =
            decodeStream(readToEof(stream));
        ASSERT_EQ(frames.size(), 1u);
        expectExactResponse(frames[0], bundle, kX);
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

/** The six-byte header itself split across segments, with a pause in
 *  the middle of the u32 length prefix. */
TEST_P(ServeTortureTest, SplitLengthPrefixIsReassembled)
{
    const BundlePtr bundle = makeBundle();
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine();
        server->deploy(bundle);
        server->start();

        net::TcpStream stream =
            net::TcpStream::connect(kHost, server->port());
        const net::Bytes frame = net::encodeRequest(kX);
        // magic+type+2 length bytes | pause | rest of length+body
        stream.writeAll(frame.data(), 4);
        sleepMs(50);
        stream.writeAll(frame.data() + 4, frame.size() - 4);
        stream.shutdownWrite();
        const std::vector<net::Frame> frames =
            decodeStream(readToEof(stream));
        ASSERT_EQ(frames.size(), 1u);
        expectExactResponse(frames[0], bundle, kX);
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

/** A declared body length past kMaxFrameBody is malformed on sight:
 *  typed protocol error, then close — no attempt to buffer it. */
TEST_P(ServeTortureTest, OversizedDeclaredLengthIsTypedErrorAndClose)
{
    const BundlePtr bundle = makeBundle();
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine();
        server->deploy(bundle);
        server->start();

        net::TcpStream stream =
            net::TcpStream::connect(kHost, server->port());
        const net::Bytes header = rawHeader(
            net::FrameType::Request,
            static_cast<std::uint32_t>(net::kMaxFrameBody) + 1);
        stream.writeAll(header.data(), header.size());
        const std::vector<net::Frame> frames =
            decodeStream(readToEof(stream));
        ASSERT_EQ(frames.size(), 1u);
        EXPECT_EQ(frames[0].type, net::FrameType::Error);
        EXPECT_EQ(frames[0].errorKind, "serve.protocol");
        EXPECT_GE(server->stats().errors, 1u);
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

/** A Request frame declaring a zero-length body cannot even hold its
 *  count field: typed protocol error, then close. */
TEST_P(ServeTortureTest, ZeroDeclaredLengthRequestIsTypedErrorAndClose)
{
    const BundlePtr bundle = makeBundle();
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine();
        server->deploy(bundle);
        server->start();

        net::TcpStream stream =
            net::TcpStream::connect(kHost, server->port());
        const net::Bytes header =
            rawHeader(net::FrameType::Request, 0);
        stream.writeAll(header.data(), header.size());
        const std::vector<net::Frame> frames =
            decodeStream(readToEof(stream));
        ASSERT_EQ(frames.size(), 1u);
        EXPECT_EQ(frames[0].type, net::FrameType::Error);
        EXPECT_EQ(frames[0].errorKind, "serve.protocol");
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

/** A slow loris parks half a frame and goes quiet: the idle timeout
 *  must reclaim the connection (silent drop — garbage peers do not
 *  get a goodbye) on both engines, without touching a second, active
 *  connection. */
TEST_P(ServeTortureTest, SlowLorisIsDroppedAtIdleTimeout)
{
    const BundlePtr bundle = makeBundle();
    ServeOptions opts;
    opts.idleTimeoutMs = 200;
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine(opts);
        server->deploy(bundle);
        server->start();

        net::TcpStream loris =
            net::TcpStream::connect(kHost, server->port());
        const net::Bytes frame = net::encodeRequest(kX);
        loris.writeAll(frame.data(), frame.size() / 2);

        // An active client keeps round-tripping through the same
        // window: activity must keep refreshing ITS deadline.
        net::ServeClient active =
            net::ServeClient::connect(kHost, server->port());
        const std::int64_t t0 = wcnn::core::telemetry::nowNs();
        net::Bytes leftovers;
        std::uint8_t buf[256];
        std::size_t n = 0;
        net::ReadStatus status = net::ReadStatus::Timeout;
        while (wcnn::core::telemetry::nowNs() - t0 <
               3000 * 1000000LL) {
            (void)active.predict(kX);
            status = loris.readSome(buf, sizeof(buf), n, 50);
            if (status == net::ReadStatus::Eof)
                break;
            if (status == net::ReadStatus::Data)
                leftovers.insert(leftovers.end(), buf, buf + n);
        }
        EXPECT_EQ(status, net::ReadStatus::Eof)
            << "slow loris still parked after 3 s";
        EXPECT_TRUE(leftovers.empty())
            << "idle drop is silent: no frame owed to a loris";
        (void)active.predict(kX); // survivor still served
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

/** A peer that pipelines requests and immediately half-closes still
 *  gets every answer: EOF ends reading, not the replies. */
TEST_P(ServeTortureTest, HalfCloseStillAnswersPipelinedFrames)
{
    const BundlePtr bundle = makeBundle();
    const int fds_before = countOpenFds();
    {
        auto server = makeEngine();
        server->deploy(bundle);
        server->start();

        net::TcpStream stream =
            net::TcpStream::connect(kHost, server->port());
        const Vector xs[] = {kX, {1.0, 2.0, 3.0}, {-0.5, 0.5, -0.5}};
        net::Bytes burst;
        for (const Vector &x : xs) {
            const net::Bytes frame = net::encodeRequest(x);
            burst.insert(burst.end(), frame.begin(), frame.end());
        }
        stream.writeAll(burst.data(), burst.size());
        stream.shutdownWrite();

        const std::vector<net::Frame> frames =
            decodeStream(readToEof(stream));
        ASSERT_EQ(frames.size(), 3u);
        for (std::size_t i = 0; i < 3; ++i)
            expectExactResponse(frames[i], bundle, xs[i]);
        server->stop();
    }
    EXPECT_EQ(countOpenFds(), fds_before) << "leaked a descriptor";
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ServeTortureTest,
    ::testing::Values(EngineKind::Threaded, EngineKind::Epoll),
    [](const ::testing::TestParamInfo<EngineKind> &info) {
        return std::string(wcnn::serve::engineName(info.param));
    });

/**
 * Client-side regression (engine-independent): a server dripping one
 * byte per 50 ms never finishes a frame, but under the old per-read
 * timeout each drip reset the clock and the client waited forever.
 * The deadline must cover the WHOLE frame (client.cc names this test
 * in its decode-loop comment).
 */
TEST(ServeClientTortureTest, ClientDeadlineCoversDrippedFrames)
{
    net::TcpListener listener(kHost, 0, 4);
    std::atomic<bool> stop{false};
    std::thread dripper([&] {
        net::TcpStream peer = listener.accept(2000);
        if (!peer.valid())
            return;
        // Swallow the ping, then answer with a pong header whose
        // body never completes, dripping garbage slowly.
        std::uint8_t buf[64];
        std::size_t n = 0;
        (void)peer.readSome(buf, sizeof(buf), n, 1000);
        try {
            const net::Bytes header =
                rawHeader(net::FrameType::Response, 18);
            peer.writeAll(header.data(), header.size());
            const std::uint8_t zero = 0;
            while (!stop.load()) {
                peer.writeAll(&zero, 1);
                sleepMs(50);
            }
        } catch (const ServeError &) {
            // The client gave up and closed: exactly the point.
        }
    });

    net::ServeClient client =
        net::ServeClient::connect(kHost, listener.port(), 250);
    const std::int64_t t0 = wcnn::core::telemetry::nowNs();
    EXPECT_THROW((void)client.ping(), ServeError);
    const std::int64_t elapsed_ms =
        (wcnn::core::telemetry::nowNs() - t0) / 1000000;
    // Well past the 250 ms deadline means the per-read reset is back.
    EXPECT_LT(elapsed_ms, 1500)
        << "client deadline did not bound the dripped frame";
    stop.store(true);
    client.close();
    dripper.join();
}
