/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

using wcnn::sim::Simulator;

TEST(SimulatorTest, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.eventsProcessed(), 0u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.run(2.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime)
{
    Simulator sim;
    double seen = -1.0;
    sim.schedule(4.5, [&] { seen = sim.now(); });
    sim.run(10.0);
    EXPECT_DOUBLE_EQ(seen, 4.5);
    // After draining, the clock lands on the horizon.
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, HorizonStopsExecution)
{
    Simulator sim;
    bool late_fired = false;
    sim.schedule(5.0, [&] { late_fired = true; });
    sim.run(4.0);
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    // A later run picks the event up.
    sim.run(6.0);
    EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, EventExactlyAtHorizonFires)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(5.0, [&] { fired = true; });
    sim.run(5.0);
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelSuppressesEvent)
{
    Simulator sim;
    bool fired = false;
    const auto id = sim.schedule(1.0, [&] { fired = true; });
    sim.cancel(id);
    sim.run(2.0);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(SimulatorTest, CancelUnknownIdIsNoOp)
{
    Simulator sim;
    sim.cancel(0);
    sim.cancel(12345);
    bool fired = false;
    sim.schedule(1.0, [&] { fired = true; });
    sim.run(2.0);
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents)
{
    Simulator sim;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5)
            sim.schedule(1.0, step);
    };
    sim.schedule(1.0, step);
    sim.run(100.0);
    EXPECT_EQ(chain, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    double seen = 0.0;
    sim.scheduleAt(7.25, [&] { seen = sim.now(); });
    sim.run(8.0);
    EXPECT_DOUBLE_EQ(seen, 7.25);
}

TEST(SimulatorTest, StopHaltsRun)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2.0, [&] { ++fired; });
    sim.run(10.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled)
{
    Simulator sim;
    sim.schedule(1.0, [] {});
    const auto id = sim.schedule(2.0, [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}
