/**
 * @file
 * Unit and property tests for train/validation splitting and k-fold
 * partitioning (paper section 3.3).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/split.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::data::KFold;

namespace {

Dataset
makeDataset(std::size_t n)
{
    Dataset ds({"x"}, {"y"});
    for (std::size_t i = 0; i < n; ++i)
        ds.add({static_cast<double>(i)}, {static_cast<double>(i)});
    return ds;
}

} // namespace

TEST(TrainValidationSplitTest, FractionsRespected)
{
    const Dataset ds = makeDataset(100);
    wcnn::numeric::Rng rng(1);
    const auto split = wcnn::data::trainValidationSplit(ds, 0.75, rng);
    EXPECT_EQ(split.train.size(), 75u);
    EXPECT_EQ(split.validation.size(), 25u);
}

TEST(TrainValidationSplitTest, PartitionIsDisjointAndComplete)
{
    const Dataset ds = makeDataset(40);
    wcnn::numeric::Rng rng(2);
    const auto split = wcnn::data::trainValidationSplit(ds, 0.5, rng);
    std::set<double> seen;
    for (const auto &s : split.train)
        seen.insert(s.x[0]);
    for (const auto &s : split.validation) {
        EXPECT_EQ(seen.count(s.x[0]), 0u);
        seen.insert(s.x[0]);
    }
    EXPECT_EQ(seen.size(), 40u);
}

TEST(TrainValidationSplitTest, ExtremeFractions)
{
    const Dataset ds = makeDataset(10);
    wcnn::numeric::Rng rng(3);
    const auto all_train = wcnn::data::trainValidationSplit(ds, 1.0, rng);
    EXPECT_EQ(all_train.train.size(), 10u);
    EXPECT_TRUE(all_train.validation.empty());
    const auto all_val = wcnn::data::trainValidationSplit(ds, 0.0, rng);
    EXPECT_TRUE(all_val.train.empty());
    EXPECT_EQ(all_val.validation.size(), 10u);
}

/** Parameterized over (n, k). */
class KFoldTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(KFoldTest, FoldsPartitionTheIndexSet)
{
    const auto [n, k] = GetParam();
    wcnn::numeric::Rng rng(7);
    KFold kfold(n, k, rng);
    ASSERT_EQ(kfold.folds(), k);

    std::set<std::size_t> all;
    for (std::size_t f = 0; f < k; ++f) {
        for (std::size_t idx : kfold.validationIndices(f)) {
            EXPECT_LT(idx, n);
            EXPECT_EQ(all.count(idx), 0u) << "index in two folds";
            all.insert(idx);
        }
    }
    EXPECT_EQ(all.size(), n);
}

TEST_P(KFoldTest, FoldSizesDifferByAtMostOne)
{
    const auto [n, k] = GetParam();
    wcnn::numeric::Rng rng(8);
    KFold kfold(n, k, rng);
    std::size_t lo = n, hi = 0;
    for (std::size_t f = 0; f < k; ++f) {
        lo = std::min(lo, kfold.validationIndices(f).size());
        hi = std::max(hi, kfold.validationIndices(f).size());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST_P(KFoldTest, TrainAndValidationAreComplementary)
{
    const auto [n, k] = GetParam();
    wcnn::numeric::Rng rng(9);
    KFold kfold(n, k, rng);
    for (std::size_t f = 0; f < k; ++f) {
        const auto train = kfold.trainIndices(f);
        const auto &val = kfold.validationIndices(f);
        EXPECT_EQ(train.size() + val.size(), n);
        std::set<std::size_t> train_set(train.begin(), train.end());
        for (std::size_t idx : val)
            EXPECT_EQ(train_set.count(idx), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KFoldTest,
    ::testing::Values(std::make_pair(10u, 5u), std::make_pair(53u, 5u),
                      std::make_pair(7u, 7u), std::make_pair(100u, 3u),
                      std::make_pair(2u, 2u)));

TEST(KFoldDatasetTest, SplitMaterializesDatasets)
{
    const Dataset ds = makeDataset(10);
    wcnn::numeric::Rng rng(10);
    KFold kfold(10, 5, rng);
    const auto split = kfold.split(ds, 2);
    EXPECT_EQ(split.train.size(), 8u);
    EXPECT_EQ(split.validation.size(), 2u);
}

TEST(KFoldDatasetTest, SameSeedSamePartition)
{
    wcnn::numeric::Rng rng1(11), rng2(11);
    KFold a(20, 4, rng1), b(20, 4, rng2);
    for (std::size_t f = 0; f < 4; ++f)
        EXPECT_EQ(a.validationIndices(f), b.validationIndices(f));
}

TEST(KFoldDatasetTest, DifferentSeedsUsuallyDiffer)
{
    wcnn::numeric::Rng rng1(1), rng2(2);
    KFold a(20, 4, rng1), b(20, 4, rng2);
    bool any_diff = false;
    for (std::size_t f = 0; f < 4; ++f)
        any_diff |= a.validationIndices(f) != b.validationIndices(f);
    EXPECT_TRUE(any_diff);
}
