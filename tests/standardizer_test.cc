/**
 * @file
 * Unit and property tests for z-score standardization (paper sec. 3.1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/standardizer.hh"
#include "numeric/rng.hh"
#include "numeric/stats.hh"

using wcnn::data::Standardizer;
using wcnn::numeric::Matrix;
using wcnn::numeric::Vector;

TEST(StandardizerTest, TransformedColumnsHaveZeroMeanUnitStd)
{
    wcnn::numeric::Rng rng(41);
    Matrix samples(50, 3);
    for (std::size_t i = 0; i < 50; ++i) {
        samples(i, 0) = rng.uniform(0, 20);     // thread counts
        samples(i, 1) = rng.uniform(480, 640);  // injection rate
        samples(i, 2) = rng.normal(1000, 300);  // big-magnitude feature
    }
    Standardizer std_;
    std_.fit(samples);
    const Matrix z = std_.transform(samples);
    for (std::size_t j = 0; j < 3; ++j) {
        const Vector col = z.col(j);
        EXPECT_NEAR(wcnn::numeric::mean(col), 0.0, 1e-10);
        EXPECT_NEAR(wcnn::numeric::stddev(col), 1.0, 1e-10);
    }
}

TEST(StandardizerTest, InverseRoundTrips)
{
    wcnn::numeric::Rng rng(42);
    Matrix samples(30, 2);
    for (std::size_t i = 0; i < 30; ++i) {
        samples(i, 0) = rng.uniform(-5, 5);
        samples(i, 1) = rng.uniform(100, 200);
    }
    Standardizer std_;
    std_.fit(samples);
    for (std::size_t i = 0; i < 30; ++i) {
        const Vector x = samples.row(i);
        const Vector back = std_.inverse(std_.transform(x));
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(back[j], x[j], 1e-10);
    }
}

TEST(StandardizerTest, MatrixAndVectorTransformsAgree)
{
    Matrix samples{{1, 10}, {2, 20}, {3, 30}};
    Standardizer std_;
    std_.fit(samples);
    const Matrix z = std_.transform(samples);
    for (std::size_t i = 0; i < 3; ++i) {
        const Vector zi = std_.transform(samples.row(i));
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(z(i, j), zi[j]);
    }
}

TEST(StandardizerTest, ConstantFeatureCentersWithoutScaling)
{
    Matrix samples{{5, 1}, {5, 2}, {5, 3}};
    Standardizer std_;
    std_.fit(samples);
    EXPECT_DOUBLE_EQ(std_.stddevs()[0], 1.0);
    const Vector z = std_.transform(Vector{5, 2});
    EXPECT_DOUBLE_EQ(z[0], 0.0);
    const Vector back = std_.inverse(z);
    EXPECT_DOUBLE_EQ(back[0], 5.0);
}

TEST(StandardizerTest, FittedFlag)
{
    Standardizer std_;
    EXPECT_FALSE(std_.fitted());
    Matrix samples{{1}, {2}};
    std_.fit(samples);
    EXPECT_TRUE(std_.fitted());
    EXPECT_EQ(std_.dim(), 1u);
}

TEST(StandardizerTest, IdentityFactory)
{
    const Standardizer id = Standardizer::identity(3);
    EXPECT_TRUE(id.fitted());
    const Vector x{1.5, -2.5, 7.0};
    EXPECT_EQ(id.transform(x), x);
    EXPECT_EQ(id.inverse(x), x);
}

TEST(StandardizerTest, MeansAndStddevsExposed)
{
    Matrix samples{{0}, {10}};
    Standardizer std_;
    std_.fit(samples);
    EXPECT_DOUBLE_EQ(std_.means()[0], 5.0);
    EXPECT_NEAR(std_.stddevs()[0], std::sqrt(50.0), 1e-12);
}
