/**
 * @file
 * Unit and property tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/rng.hh"
#include "numeric/stats.hh"

namespace ns = wcnn::numeric;

TEST(StatsTest, MeanKnownValues)
{
    EXPECT_DOUBLE_EQ(ns::mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(ns::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(ns::mean({-5}), -5.0);
}

TEST(StatsTest, StddevKnownValues)
{
    EXPECT_DOUBLE_EQ(ns::stddev({2, 4, 4, 4, 5, 5, 7, 9}),
                     std::sqrt(32.0 / 7.0));
    EXPECT_DOUBLE_EQ(ns::stddev({1}), 0.0);
    EXPECT_DOUBLE_EQ(ns::stddev({}), 0.0);
}

TEST(StatsTest, PopulationVariance)
{
    EXPECT_DOUBLE_EQ(ns::populationVariance({1, 3}), 1.0);
    EXPECT_DOUBLE_EQ(ns::populationVariance({}), 0.0);
}

TEST(StatsTest, HarmonicMeanKnownValues)
{
    EXPECT_DOUBLE_EQ(ns::harmonicMean({1, 1, 1}), 1.0);
    EXPECT_NEAR(ns::harmonicMean({1, 2, 4}), 3.0 / 1.75, 1e-12);
    EXPECT_DOUBLE_EQ(ns::harmonicMean({}), 0.0);
}

TEST(StatsTest, HarmonicMeanNeverExceedsArithmetic)
{
    ns::Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> xs(20);
        for (auto &x : xs)
            x = rng.uniform(0.01, 10.0);
        EXPECT_LE(ns::harmonicMean(xs), ns::mean(xs) + 1e-12);
    }
}

TEST(StatsTest, HarmonicMeanToleratesZeros)
{
    // A zero entry must not collapse the whole mean to zero.
    const double hm = ns::harmonicMean({0.0, 0.1, 0.1});
    EXPECT_GT(hm, 0.0);
    EXPECT_LT(hm, 0.1);
}

TEST(StatsTest, PercentileInterpolation)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(ns::percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(ns::percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(ns::percentile(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(ns::percentile({7}, 50), 7.0);
    EXPECT_DOUBLE_EQ(ns::percentile({}, 50), 0.0);
}

TEST(StatsTest, CorrelationPerfectLinear)
{
    EXPECT_NEAR(ns::correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(ns::correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(ns::correlation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(StatsTest, RSquaredPerfectAndZero)
{
    EXPECT_DOUBLE_EQ(ns::rSquared({1, 2, 3}, {1, 2, 3}), 1.0);
    // Predicting the mean everywhere gives R^2 = 0.
    EXPECT_NEAR(ns::rSquared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(RunningStatsTest, MatchesBatchStatistics)
{
    ns::Rng rng(32);
    std::vector<double> xs(1000);
    ns::RunningStats acc;
    for (auto &x : xs) {
        x = rng.normal(5.0, 2.0);
        acc.add(x);
    }
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), ns::mean(xs), 1e-9);
    EXPECT_NEAR(acc.stddev(), ns::stddev(xs), 1e-9);
    EXPECT_NEAR(acc.sum(), ns::mean(xs) * 1000, 1e-6);
}

TEST(RunningStatsTest, MinMaxTracking)
{
    ns::RunningStats acc;
    acc.add(3);
    acc.add(-1);
    acc.add(7);
    EXPECT_DOUBLE_EQ(acc.min(), -1);
    EXPECT_DOUBLE_EQ(acc.max(), 7);
}

TEST(RunningStatsTest, EmptyIsZero)
{
    ns::RunningStats acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream)
{
    ns::Rng rng(33);
    ns::RunningStats a, b, whole;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(0, 1);
        a.add(x);
        whole.add(x);
    }
    for (int i = 0; i < 300; ++i) {
        const double x = rng.normal(10, 1);
        b.add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    ns::RunningStats a, empty;
    a.add(1);
    a.add(2);
    ns::RunningStats copy = a;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), copy.mean(), 1e-12);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(RunningStatsTest, Reset)
{
    ns::RunningStats acc;
    acc.add(5);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

/** Property sweep: Welford variance is non-negative and scale-covariant. */
class RunningStatsPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RunningStatsPropertyTest, VarianceNonNegativeAndScales)
{
    ns::Rng rng(static_cast<std::uint64_t>(GetParam()));
    ns::RunningStats base, scaled;
    const double factor = 3.5;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.normal(0, 1);
        base.add(x);
        scaled.add(factor * x);
    }
    EXPECT_GE(base.variance(), 0.0);
    EXPECT_NEAR(scaled.variance(), factor * factor * base.variance(),
                1e-6 * scaled.variance() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Streams, RunningStatsPropertyTest,
                         ::testing::Range(1, 8));

TEST(P2QuantileTest, ExactForSmallSamples)
{
    ns::P2Quantile p50(0.5);
    p50.add(3);
    EXPECT_DOUBLE_EQ(p50.value(), 3.0);
    p50.add(1);
    p50.add(2);
    EXPECT_DOUBLE_EQ(p50.value(), 2.0);
}

TEST(P2QuantileTest, TracksUniformQuantiles)
{
    ns::Rng rng(51);
    ns::P2Quantile p90(0.9);
    for (int i = 0; i < 50000; ++i)
        p90.add(rng.uniform(0.0, 10.0));
    EXPECT_NEAR(p90.value(), 9.0, 0.1);
}

TEST(P2QuantileTest, TracksNormalMedian)
{
    ns::Rng rng(52);
    ns::P2Quantile p50(0.5);
    for (int i = 0; i < 50000; ++i)
        p50.add(rng.normal(7.0, 2.0));
    EXPECT_NEAR(p50.value(), 7.0, 0.1);
}

TEST(P2QuantileTest, MatchesExactPercentileOnHeavyTail)
{
    // Lognormal: exact p95 against the estimator.
    ns::Rng rng(53);
    std::vector<double> xs;
    ns::P2Quantile p95(0.95);
    for (int i = 0; i < 40000; ++i) {
        const double x = rng.lognormal(1.0, 1.0);
        xs.push_back(x);
        p95.add(x);
    }
    const double exact = ns::percentile(xs, 95.0);
    EXPECT_NEAR(p95.value(), exact, 0.1 * exact);
}

TEST(P2QuantileTest, EmptyIsZero)
{
    ns::P2Quantile p90(0.9);
    EXPECT_EQ(p90.count(), 0u);
    EXPECT_DOUBLE_EQ(p90.value(), 0.0);
}
