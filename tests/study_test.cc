/**
 * @file
 * End-to-end pipeline tests. The analytic source keeps most of them
 * fast; one compact simulator-backed study exercises the full path.
 */

#include <gtest/gtest.h>

#include "model/study.hh"

using wcnn::model::runStudy;
using wcnn::model::StudyOptions;
using wcnn::model::StudyResult;

namespace {

StudyOptions
analyticOptions()
{
    StudyOptions opts;
    opts.source = StudyOptions::Source::Analytic;
    opts.designSamples = 40;
    opts.sliceAnchorsPerAxis = 3;
    opts.tune = false;
    opts.nn.hiddenUnits = {10};
    opts.nn.train.maxEpochs = 1500;
    opts.seed = 123;
    return opts;
}

} // namespace

TEST(StudyTest, ProducesAllArtifacts)
{
    const StudyResult result = runStudy(analyticOptions());
    EXPECT_EQ(result.dataset.size(), 40u + 9u);
    EXPECT_EQ(result.dataset.inputDim(), 4u);
    EXPECT_EQ(result.dataset.outputDim(), 5u);
    EXPECT_EQ(result.cv.trials.size(), 5u);
    EXPECT_TRUE(result.finalModel.fitted());
}

TEST(StudyTest, AnchorsSitOnTheAnalysisSlice)
{
    const StudyResult result = runStudy(analyticOptions());
    std::size_t on_slice = 0;
    for (const auto &sample : result.dataset) {
        if (sample.x[0] == 560.0 && sample.x[2] == 16.0)
            ++on_slice;
    }
    EXPECT_GE(on_slice, 9u);
}

TEST(StudyTest, AnalyticStudyIsAccurate)
{
    // The analytic surface is deterministic and smooth; the NN should
    // validate well (the substrate noise is zero).
    const StudyResult result = runStudy(analyticOptions());
    EXPECT_GT(result.cv.overallAccuracy(), 0.85);
}

TEST(StudyTest, TuningPopulatesEvidence)
{
    StudyOptions opts = analyticOptions();
    opts.tune = true;
    opts.tuning.hiddenUnits = {6, 12};
    opts.tuning.targetLosses = {0.05, 0.02};
    const StudyResult result = runStudy(opts);
    EXPECT_EQ(result.tuning.entries.size(), 4u);
    EXPECT_EQ(result.tunedNn.hiddenUnits.size(), 1u);
    const bool matches =
        result.tunedNn.hiddenUnits[0] ==
        result.tuning.best().hiddenUnits;
    EXPECT_TRUE(matches);
}

TEST(StudyTest, DeterministicGivenSeed)
{
    const StudyResult a = runStudy(analyticOptions());
    const StudyResult b = runStudy(analyticOptions());
    ASSERT_EQ(a.dataset.size(), b.dataset.size());
    EXPECT_EQ(a.dataset[5].y, b.dataset[5].y);
    EXPECT_DOUBLE_EQ(a.cv.overallValidationError(),
                     b.cv.overallValidationError());
    const auto pa = a.finalModel.predict({560, 10, 16, 18});
    const auto pb = b.finalModel.predict({560, 10, 16, 18});
    EXPECT_DOUBLE_EQ(pa[0], pb[0]);
}

TEST(StudyTest, SimulatorBackedStudyRuns)
{
    // Compact end-to-end run through the DES source: small design,
    // one replicate, short windows (wired through params? windows are
    // per-config defaults). This is the full paper pipeline in
    // miniature.
    StudyOptions opts;
    opts.source = StudyOptions::Source::Simulator;
    opts.designSamples = 12;
    opts.replicates = 1;
    opts.sliceAnchorsPerAxis = 0;
    opts.tune = false;
    opts.nn.hiddenUnits = {8};
    opts.nn.train.maxEpochs = 800;
    opts.cv.folds = 3;
    opts.seed = 99;
    const StudyResult result = runStudy(opts);
    EXPECT_EQ(result.dataset.size(), 12u);
    EXPECT_EQ(result.cv.trials.size(), 3u);
    EXPECT_TRUE(result.finalModel.fitted());
    // Sanity: indicators are positive.
    for (const auto &sample : result.dataset)
        for (double v : sample.y)
            EXPECT_GT(v, 0.0);
}
