/**
 * @file
 * Tests for model-predicted response surfaces (Figs. 4/7/8 machinery).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "model/surface.hh"
#include "model/linear_model.hh"
#include "model/feature_models.hh"
#include "numeric/rng.hh"

using wcnn::data::Dataset;
using wcnn::model::SurfaceGrid;
using wcnn::model::SurfaceRequest;
using wcnn::model::sweepSurface;
using wcnn::numeric::Rng;

namespace {

/** y = a + 10*b + 100*c over a 3-input space. */
Dataset
planeDataset()
{
    Rng rng(1);
    Dataset ds({"a", "b", "c"}, {"y"});
    for (int i = 0; i < 40; ++i) {
        const double a = rng.uniform(0, 1);
        const double b = rng.uniform(0, 1);
        const double c = rng.uniform(0, 1);
        ds.add({a, b, c}, {a + 10 * b + 100 * c});
    }
    return ds;
}

SurfaceRequest
basicRequest()
{
    SurfaceRequest req;
    req.axisA = 0;
    req.axisB = 1;
    req.indicator = 0;
    req.fixed = {0.0, 0.0, 0.5};
    req.loA = 0.0;
    req.hiA = 1.0;
    req.loB = 0.0;
    req.hiB = 1.0;
    req.pointsA = 5;
    req.pointsB = 3;
    return req;
}

} // namespace

TEST(SurfaceTest, GridShapeAndCoordinates)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);

    ASSERT_EQ(grid.aValues.size(), 5u);
    ASSERT_EQ(grid.bValues.size(), 3u);
    EXPECT_EQ(grid.z.rows(), 5u);
    EXPECT_EQ(grid.z.cols(), 3u);
    EXPECT_DOUBLE_EQ(grid.aValues.front(), 0.0);
    EXPECT_DOUBLE_EQ(grid.aValues.back(), 1.0);
    EXPECT_DOUBLE_EQ(grid.bValues[1], 0.5);
    EXPECT_EQ(grid.axisAName, "a");
    EXPECT_EQ(grid.axisBName, "b");
    EXPECT_EQ(grid.indicatorName, "y");
}

TEST(SurfaceTest, SliceLabelMatchesPaperNotation)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);
    EXPECT_EQ(grid.sliceLabel, "(x, y, 0.5)");
}

TEST(SurfaceTest, ValuesFollowTheModel)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);
    // z(i, j) = a_i + 10 b_j + 100 * 0.5.
    for (std::size_t i = 0; i < grid.aValues.size(); ++i) {
        for (std::size_t j = 0; j < grid.bValues.size(); ++j) {
            const double expected =
                grid.aValues[i] + 10 * grid.bValues[j] + 50.0;
            EXPECT_NEAR(grid.z(i, j), expected, 1e-5);
        }
    }
}

TEST(SurfaceTest, MinMaxLocations)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);
    std::size_t ai, bj;
    const double lo = grid.zMin(&ai, &bj);
    EXPECT_EQ(ai, 0u);
    EXPECT_EQ(bj, 0u);
    EXPECT_NEAR(lo, 50.0, 1e-5);
    const double hi = grid.zMax(&ai, &bj);
    EXPECT_EQ(ai, 4u);
    EXPECT_EQ(bj, 2u);
    EXPECT_NEAR(hi, 61.0, 1e-5);
}

TEST(SurfaceTest, TextDumpHasHeaderAndRows)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);
    const std::string text = grid.toText();
    EXPECT_NE(text.find("a\\b"), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(SurfaceTest, SliceSamplesFilterByTolerance)
{
    Dataset ds({"a", "b", "c"}, {"y"});
    ds.add({0.1, 0.2, 0.50}, {1});  // on slice
    ds.add({0.3, 0.4, 0.52}, {2});  // near slice
    ds.add({0.5, 0.6, 0.90}, {3});  // far away
    const SurfaceRequest req = basicRequest();

    const auto exact = wcnn::model::sliceSamples(ds, req, 0.001);
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_DOUBLE_EQ(exact[0][0], 0.1);
    EXPECT_DOUBLE_EQ(exact[0][2], 1.0);

    const auto loose = wcnn::model::sliceSamples(ds, req, 0.05);
    EXPECT_EQ(loose.size(), 2u);
}

TEST(SurfaceTest, NonLinearModelProducesCurvedSurface)
{
    // Quadratic model on quadratic data: z varies non-linearly.
    Rng rng(2);
    Dataset ds({"a", "b"}, {"y"});
    for (int i = 0; i < 50; ++i) {
        const double a = rng.uniform(-1, 1);
        const double b = rng.uniform(-1, 1);
        ds.add({a, b}, {a * a + b * b});
    }
    wcnn::model::PolynomialModel mdl(2);
    mdl.fit(ds);
    SurfaceRequest req;
    req.axisA = 0;
    req.axisB = 1;
    req.indicator = 0;
    req.fixed = {0, 0};
    req.loA = req.loB = -1.0;
    req.hiA = req.hiB = 1.0;
    req.pointsA = req.pointsB = 5;
    const SurfaceGrid grid = sweepSurface(mdl, req, ds);
    // Bowl: center below corners.
    EXPECT_LT(grid.z(2, 2), grid.z(0, 0));
    EXPECT_LT(grid.z(2, 2), grid.z(4, 4));
    EXPECT_NEAR(grid.z(2, 2), 0.0, 0.05);
}

TEST(SurfaceTest, HeatmapRampAndLabels)
{
    const Dataset ds = planeDataset();
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    const SurfaceGrid grid = sweepSurface(mdl, basicRequest(), ds);
    const std::string art = grid.toHeatmap();
    // Brightest cell appears (max corner) and the legend names both
    // extremes.
    EXPECT_NE(art.find('@'), std::string::npos);
    EXPECT_NE(art.find('.'), std::string::npos);
    EXPECT_NE(art.find("y"), std::string::npos);
    EXPECT_NE(art.find("(rows, bottom-up)"), std::string::npos);
}

TEST(SurfaceTest, HeatmapFlatSurfaceDoesNotDivideByZero)
{
    Dataset ds({"a", "b"}, {"y"});
    for (int i = 0; i < 8; ++i)
        ds.add({i * 0.1, i * 0.05}, {3.0});
    wcnn::model::LinearModel mdl;
    mdl.fit(ds);
    SurfaceRequest req = basicRequest();
    req.fixed = {0.0, 0.0};
    req.pointsA = 3;
    req.pointsB = 3;
    // 2-input dataset: rebuild the request for 2 inputs.
    req.axisA = 0;
    req.axisB = 1;
    const SurfaceGrid grid = sweepSurface(mdl, req, ds);
    EXPECT_FALSE(grid.toHeatmap().empty());
}
