/**
 * @file
 * Compiled with -DWCNN_NO_TELEMETRY (see tests/CMakeLists.txt): every
 * telemetry macro must become an unevaluated no-op — the argument
 * expressions are type-checked inside sizeof but never executed, so a
 * no-telemetry build can never pay for, or be perturbed by,
 * instrumentation. Mirrors contracts_nocontracts_test.cc.
 *
 * Only this translation unit is built without telemetry; the linked
 * libraries keep theirs, so the function API (registry, collectEvents)
 * still works and proves the macros here recorded nothing.
 */

#ifndef WCNN_NO_TELEMETRY
#error "this test must be compiled with -DWCNN_NO_TELEMETRY"
#endif

#include <cstdint>

#include <gtest/gtest.h>

#include "core/telemetry.hh"

namespace {

namespace telemetry = wcnn::core::telemetry;

class NoTelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }
};

TEST_F(NoTelemetryTest, EnabledGateIsCompileTimeFalse)
{
    // Even with recording switched on at runtime, the compile-time
    // gate stays false so auxiliary work is never done.
    telemetry::setEnabled(true);
    static_assert(!WCNN_TELEMETRY_ENABLED(),
                  "WCNN_TELEMETRY_ENABLED() must be constant false "
                  "under WCNN_NO_TELEMETRY");
    EXPECT_FALSE(WCNN_TELEMETRY_ENABLED());
    // The function API is unaffected by the macro switch (ODR safety).
    EXPECT_TRUE(telemetry::enabled());
}

TEST_F(NoTelemetryTest, MacroArgumentsAreNotEvaluated)
{
    telemetry::setEnabled(true);
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return std::uint64_t{1};
    };
    WCNN_SPAN("no.span", probe());
    WCNN_EVENT("no.event", probe(), probe());
    WCNN_COUNTER_ADD("no.ctr", probe());
    WCNN_GAUGE_SET("no.gauge", probe());
    WCNN_HISTOGRAM_RECORD("no.hist", probe());
    EXPECT_EQ(evaluations, 0);
}

TEST_F(NoTelemetryTest, MacrosRecordNothingEvenWhenEnabled)
{
    telemetry::setEnabled(true);
    {
        WCNN_SPAN("no.span");
        WCNN_EVENT("no.event", 1.0);
        WCNN_COUNTER_ADD("no.ctr", 1);
        WCNN_GAUGE_SET("no.gauge", 2.0);
        WCNN_HISTOGRAM_RECORD("no.hist", 3);
    }
    EXPECT_TRUE(telemetry::collectEvents().empty());
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(NoTelemetryTest, SpanMacroDeclaresNoScopeObject)
{
    // WCNN_SPAN must not introduce a block-scoped RAII object in this
    // mode: it expands to a discarded expression, so two in one block
    // cannot collide and no destructor runs at scope exit.
    WCNN_SPAN("twice");
    WCNN_SPAN("twice");
    EXPECT_TRUE(telemetry::collectEvents().empty());
}

TEST_F(NoTelemetryTest, DirectApiStillWorks)
{
    // The compile-out switch removes instrumentation, not the library:
    // exporters and explicit handles must keep functioning so tools
    // built either way stay link- and behavior-compatible.
    telemetry::setEnabled(true);
    telemetry::counter("direct.ctr").add(4);
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 4u);
}

} // namespace
