/**
 * @file
 * Telemetry non-interference regression: recording must be a pure
 * observer. Training a fixed seeded topology with telemetry enabled
 * must yield bit-identical weights, biases, and loss history to the
 * same run with telemetry disabled (and, via the no-contracts preset
 * which also defines WCNN_NO_TELEMETRY, to the fully compiled-out
 * build — golden_table2_test pins that side). Cross-validation scores
 * and sweep surfaces get the same treatment.
 *
 * The wall-clock overhead bound itself is measured by bench_micro_nn
 * (--telemetry-overhead), not asserted here: a unit test timing a 5%
 * margin on a loaded 1-CPU CI box would be pure flake.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/telemetry.hh"
#include "model/cross_validation.hh"
#include "model/nn_model.hh"
#include "model/surface.hh"
#include "nn/activation.hh"
#include "nn/mlp.hh"
#include "nn/trainer.hh"
#include "numeric/matrix.hh"
#include "numeric/rng.hh"
#include "sim/sample_space.hh"

using wcnn::data::Dataset;
using wcnn::model::CvOptions;
using wcnn::model::CvResult;
using wcnn::model::NnModel;
using wcnn::model::NnModelOptions;
using wcnn::model::SurfaceRequest;
using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::nn::Trainer;
using wcnn::nn::TrainOptions;
using wcnn::nn::TrainResult;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;

namespace telemetry = wcnn::core::telemetry;

namespace {

void
expectSameMatrix(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << ", " << j << ")";
}

/** Deterministic synthetic regression problem (standardized-ish). */
void
makeTrainingData(Matrix *x, Matrix *y)
{
    const std::size_t n = 32;
    *x = Matrix(n, 3);
    *y = Matrix(n, 2);
    Rng rng(404);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform() * 2.0 - 1.0;
        const double b = rng.uniform() * 2.0 - 1.0;
        const double c = rng.uniform() * 2.0 - 1.0;
        (*x)(i, 0) = a;
        (*x)(i, 1) = b;
        (*x)(i, 2) = c;
        (*y)(i, 0) = 0.5 * a - 0.25 * b * c;
        (*y)(i, 1) = a * a - 0.5 * c;
    }
}

/** One full seeded training run; telemetry state set by the caller. */
TrainResult
trainOnce(Mlp *out_net)
{
    Matrix x, y;
    makeTrainingData(&x, &y);

    Rng init_rng(99);
    std::vector<LayerSpec> layers = {
        LayerSpec{8, Activation::logistic()},
        LayerSpec{y.cols(), Activation::identity()},
    };
    Mlp net(x.cols(), layers, InitRule::Xavier, init_rng);

    TrainOptions opts;
    opts.maxEpochs = 120;
    opts.targetLoss = 0.0; // run the full epoch budget
    Rng train_rng(100);
    const TrainResult result =
        Trainer(opts).train(net, x, y, train_rng);
    *out_net = std::move(net);
    return result;
}

class TelemetryOverheadTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }
};

TEST_F(TelemetryOverheadTest, TrainingIsBitIdenticalOnVsOff)
{
    telemetry::setEnabled(false);
    telemetry::reset();
    Mlp off_net;
    const TrainResult off = trainOnce(&off_net);

    telemetry::setEnabled(true);
    Mlp on_net;
    const TrainResult on = trainOnce(&on_net);
    telemetry::setEnabled(false);

    EXPECT_EQ(off.epochs, on.epochs);
    EXPECT_EQ(off.finalTrainLoss, on.finalTrainLoss);
    ASSERT_EQ(off.trainLossHistory.size(), on.trainLossHistory.size());
    for (std::size_t e = 0; e < off.trainLossHistory.size(); ++e)
        EXPECT_EQ(off.trainLossHistory[e], on.trainLossHistory[e])
            << "epoch " << e;

    ASSERT_EQ(off_net.depth(), on_net.depth());
    for (std::size_t l = 0; l < off_net.depth(); ++l) {
        expectSameMatrix(off_net.weights(l), on_net.weights(l));
        const auto &ob = off_net.biases(l);
        const auto &nb = on_net.biases(l);
        ASSERT_EQ(ob.size(), nb.size());
        for (std::size_t j = 0; j < ob.size(); ++j)
            EXPECT_EQ(ob[j], nb[j]) << "layer " << l << " bias " << j;
    }

#ifndef WCNN_NO_TELEMETRY
    // The enabled run must actually have observed the training loop —
    // otherwise this test proves nothing.
    telemetry::setEnabled(true); // collectEvents is state-independent,
    telemetry::setEnabled(false); // but make the intent explicit
    std::size_t epoch_events = 0;
    for (const auto &event : telemetry::collectEvents()) {
        if (std::string(event.name) == "train.epoch")
            ++epoch_events;
    }
    EXPECT_EQ(epoch_events, on.epochs);
#endif
}

TEST_F(TelemetryOverheadTest, CrossValidationScoresIdenticalOnVsOff)
{
    Rng rng(2026);
    const auto configs = wcnn::sim::latinHypercubeDesign(
        wcnn::sim::SampleSpace::paperLike(), 24, rng);
    const Dataset ds = wcnn::sim::collectAnalytic(
        configs, wcnn::sim::WorkloadParams::defaults());

    NnModelOptions nn;
    nn.hiddenUnits = {6};
    nn.train.maxEpochs = 250;
    nn.train.targetLoss = 0.05;
    CvOptions cv;
    cv.folds = 5;
    cv.seed = 7;
    cv.threads = 2;
    const auto run = [&]() {
        return wcnn::model::crossValidate(
            [&nn]() { return std::make_unique<NnModel>(nn); }, ds, cv);
    };

    telemetry::setEnabled(false);
    telemetry::reset();
    const CvResult off = run();
    telemetry::setEnabled(true);
    const CvResult on = run();
    telemetry::setEnabled(false);

    ASSERT_EQ(off.trials.size(), on.trials.size());
    for (std::size_t f = 0; f < off.trials.size(); ++f) {
        const auto &oe = off.trials[f].validation.harmonicError;
        const auto &ne = on.trials[f].validation.harmonicError;
        ASSERT_EQ(oe.size(), ne.size());
        for (std::size_t j = 0; j < oe.size(); ++j)
            EXPECT_EQ(oe[j], ne[j]) << "fold " << f << " col " << j;
    }
    EXPECT_EQ(off.overallValidationError(), on.overallValidationError());
}

TEST_F(TelemetryOverheadTest, SweepSurfaceIdenticalOnVsOff)
{
    Rng rng(2026);
    const auto configs = wcnn::sim::latinHypercubeDesign(
        wcnn::sim::SampleSpace::paperLike(), 24, rng);
    const Dataset ds = wcnn::sim::collectAnalytic(
        configs, wcnn::sim::WorkloadParams::defaults());

    NnModelOptions nn;
    nn.hiddenUnits = {6};
    nn.train.maxEpochs = 250;
    nn.train.targetLoss = 0.05;
    NnModel mdl(nn);
    mdl.fit(ds);

    SurfaceRequest req;
    req.axisA = 1;
    req.axisB = 3;
    req.indicator = 0;
    req.fixed = {560.0, 0.0, 16.0, 0.0};
    req.loA = 0.0;
    req.hiA = 20.0;
    req.loB = 14.0;
    req.hiB = 20.0;
    req.pointsA = 7;
    req.pointsB = 5;
    req.threads = 2;

    telemetry::setEnabled(false);
    telemetry::reset();
    const auto off = wcnn::model::sweepSurface(mdl, req, ds);
    telemetry::setEnabled(true);
    const auto on = wcnn::model::sweepSurface(mdl, req, ds);
    telemetry::setEnabled(false);

    expectSameMatrix(off.z, on.z);
    EXPECT_EQ(off.aValues, on.aValues);
    EXPECT_EQ(off.bValues, on.bValues);
}

} // namespace
