/**
 * @file
 * End-to-end telemetry schema test: run a tiny collect/CV/grid/sweep
 * pipeline with recording on, then parse the emitted JSONL and pin the
 * event schema — required fields, monotonic timestamps, balanced span
 * open/close per thread — and that the per-fold error events agree
 * bit-for-bit with crossValidate's returned scores (%.17g doubles must
 * round-trip exactly).
 *
 * Meaningless when the library is built with WCNN_NO_TELEMETRY (the
 * instrumentation macros are compiled out), so the suite reduces to a
 * skip marker there.
 */

#include <gtest/gtest.h>

#ifndef WCNN_NO_TELEMETRY

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/telemetry.hh"
#include "model/cross_validation.hh"
#include "model/grid_search.hh"
#include "model/nn_model.hh"
#include "model/surface.hh"
#include "numeric/rng.hh"
#include "numeric/stats.hh"
#include "sim/sample_space.hh"

using wcnn::data::Dataset;
using wcnn::model::CvOptions;
using wcnn::model::CvResult;
using wcnn::model::GridSearchOptions;
using wcnn::model::NnModel;
using wcnn::model::NnModelOptions;
using wcnn::model::SurfaceRequest;
using wcnn::numeric::Rng;

namespace telemetry = wcnn::core::telemetry;

namespace {

/** One parsed JSONL line. */
struct JsonlLine
{
    std::string type;
    std::string name;
    double tsNs = 0.0;
    double seq = 0.0;
    double tid = 0.0;
    double depth = 0.0;
    double value = 0.0;
    std::vector<double> args;
    std::string raw;

    bool
    isEvent() const
    {
        return type == "span_begin" || type == "span_end" ||
               type == "instant";
    }
};

/** Extract `"key":"..."` as a string; empty when absent. */
std::string
findString(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return {};
    const std::size_t start = pos + needle.size();
    return line.substr(start, line.find('"', start) - start);
}

/** Extract `"key":<number>`; false when absent. */
bool
findNumber(const std::string &line, const std::string &key, double *out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *text = line.c_str() + pos + needle.size();
    char *end = nullptr;
    *out = std::strtod(text, &end);
    return end != text;
}

/** Parse the `"args":[...]` array; null entries become NaN. */
std::vector<double>
parseArgs(const std::string &line)
{
    std::vector<double> out;
    const std::size_t pos = line.find("\"args\":[");
    if (pos == std::string::npos)
        return out;
    const char *cursor = line.c_str() + pos + 8;
    while (*cursor != '\0' && *cursor != ']') {
        if (*cursor == ',') {
            ++cursor;
            continue;
        }
        if (std::strncmp(cursor, "null", 4) == 0) {
            out.push_back(std::nan(""));
            cursor += 4;
            continue;
        }
        char *end = nullptr;
        out.push_back(std::strtod(cursor, &end));
        if (end == cursor)
            break;
        cursor = end;
    }
    return out;
}

std::vector<JsonlLine>
parseJsonl(const std::string &text)
{
    std::vector<JsonlLine> out;
    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        JsonlLine line;
        line.raw = raw;
        line.type = findString(raw, "type");
        line.name = findString(raw, "name");
        findNumber(raw, "ts_ns", &line.tsNs);
        findNumber(raw, "seq", &line.seq);
        findNumber(raw, "tid", &line.tid);
        findNumber(raw, "depth", &line.depth);
        findNumber(raw, "value", &line.value);
        line.args = parseArgs(raw);
        out.push_back(std::move(line));
    }
    return out;
}

Dataset
makeDataset(std::size_t n = 24)
{
    Rng rng(2026);
    const auto configs = wcnn::sim::latinHypercubeDesign(
        wcnn::sim::SampleSpace::paperLike(), n, rng);
    return wcnn::sim::collectAnalytic(
        configs, wcnn::sim::WorkloadParams::defaults());
}

NnModelOptions
fastNn()
{
    NnModelOptions opts;
    opts.hiddenUnits = {6};
    opts.train.maxEpochs = 250;
    opts.train.targetLoss = 0.05;
    return opts;
}

CvResult
runCv(const Dataset &ds, std::size_t threads)
{
    CvOptions cv;
    cv.folds = 5;
    cv.seed = 7;
    cv.threads = threads;
    const NnModelOptions nn = fastNn();
    return wcnn::model::crossValidate(
        [&nn]() { return std::make_unique<NnModel>(nn); }, ds, cv);
}

class TelemetryPipelineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
        telemetry::setEnabled(true);
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }

    std::vector<JsonlLine>
    dumpSession()
    {
        std::ostringstream os;
        telemetry::writeJsonl(os);
        return parseJsonl(os.str());
    }
};

TEST_F(TelemetryPipelineTest, JsonlSchemaHoldsForFullPipeline)
{
    const Dataset ds = makeDataset();
    const CvResult cv = runCv(ds, 2);

    GridSearchOptions grid_opts;
    grid_opts.hiddenUnits = {4, 6};
    grid_opts.targetLosses = {0.08};
    grid_opts.seed = 11;
    grid_opts.threads = 2;
    wcnn::model::gridSearch(fastNn(), ds, grid_opts);

    NnModel mdl(fastNn());
    mdl.fit(ds);
    SurfaceRequest req;
    req.axisA = 1;
    req.axisB = 3;
    req.indicator = 0;
    req.fixed = {560.0, 0.0, 16.0, 0.0};
    req.loA = 0.0;
    req.hiA = 20.0;
    req.loB = 14.0;
    req.hiB = 20.0;
    req.pointsA = 5;
    req.pointsB = 4;
    req.threads = 2;
    wcnn::model::sweepSurface(mdl, req, ds);

    const std::vector<JsonlLine> lines = dumpSession();
    ASSERT_FALSE(lines.empty());

    // Line 0 is the meta record.
    EXPECT_EQ(lines[0].type, "meta");
    double version = 0.0;
    EXPECT_TRUE(findNumber(lines[0].raw, "version", &version));
    EXPECT_EQ(version, 1.0);
    double dropped = -1.0;
    EXPECT_TRUE(findNumber(lines[0].raw, "dropped", &dropped));
    EXPECT_EQ(dropped, 0.0);

    // Every event line carries the full schema; timestamps are
    // monotone in file order and sequence numbers are unique.
    double last_ts = -1.0;
    std::set<double> seqs;
    std::size_t events = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const JsonlLine &line = lines[i];
        ASSERT_FALSE(line.type.empty()) << line.raw;
        if (!line.isEvent())
            continue;
        ++events;
        EXPECT_FALSE(line.name.empty()) << line.raw;
        EXPECT_NE(line.raw.find("\"ts_ns\":"), std::string::npos);
        EXPECT_NE(line.raw.find("\"seq\":"), std::string::npos);
        EXPECT_NE(line.raw.find("\"tid\":"), std::string::npos);
        EXPECT_NE(line.raw.find("\"depth\":"), std::string::npos);
        EXPECT_NE(line.raw.find("\"args\":["), std::string::npos);
        EXPECT_GE(line.tsNs, last_ts);
        last_ts = line.tsNs;
        EXPECT_TRUE(seqs.insert(line.seq).second)
            << "duplicate seq in " << line.raw;
    }
    double meta_events = 0.0;
    EXPECT_TRUE(findNumber(lines[0].raw, "events", &meta_events));
    EXPECT_EQ(meta_events, static_cast<double>(events));

    // Span open/close balance per thread. Pool thread states are
    // reused sequentially, so one tid can carry several workers'
    // non-overlapping streams; a stack per tid handles both.
    std::map<double, std::vector<const JsonlLine *>> stacks;
    for (const JsonlLine &line : lines) {
        if (line.type == "span_begin") {
            stacks[line.tid].push_back(&line);
        } else if (line.type == "span_end") {
            ASSERT_FALSE(stacks[line.tid].empty()) << line.raw;
            const JsonlLine *begin = stacks[line.tid].back();
            EXPECT_EQ(begin->name, line.name);
            EXPECT_EQ(begin->depth, line.depth);
            stacks[line.tid].pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;

    // Every pipeline stage shows up under its documented span name.
    std::set<std::string> span_names;
    for (const JsonlLine &line : lines) {
        if (line.type == "span_begin")
            span_names.insert(line.name);
    }
    for (const char *required :
         {"collect.dataset", "collect.config", "cv", "cv.fold", "train",
          "grid", "grid.candidate", "sweep", "sweep.row", "pool.batch"})
        EXPECT_TRUE(span_names.count(required)) << required;

    // The sweep counters count the full grid exactly.
    for (const JsonlLine &line : lines) {
        if (line.type != "counter")
            continue;
        if (line.name == "sweep.rows") {
            EXPECT_EQ(line.value, static_cast<double>(req.pointsA));
        } else if (line.name == "sweep.cells") {
            EXPECT_EQ(line.value,
                      static_cast<double>(req.pointsA * req.pointsB));
        }
    }

    // CV ran 5 folds; sanity-check against the returned result.
    std::size_t fold_spans = 0;
    for (const JsonlLine &line : lines) {
        if (line.type == "span_begin" && line.name == "cv.fold")
            ++fold_spans;
    }
    EXPECT_EQ(fold_spans, cv.trials.size());
}

TEST_F(TelemetryPipelineTest, FoldErrorEventsMatchReturnedScoresBitForBit)
{
    const Dataset ds = makeDataset();
    const CvResult cv = runCv(ds, 2);
    const std::vector<JsonlLine> lines = dumpSession();

    std::map<int, const JsonlLine *> fold_events;
    for (const JsonlLine &line : lines) {
        if (line.type == "instant" && line.name == "cv.fold.error") {
            ASSERT_GE(line.args.size(), 3u) << line.raw;
            fold_events[static_cast<int>(line.args[0])] = &line;
        }
    }
    ASSERT_EQ(fold_events.size(), cv.trials.size());
    for (std::size_t f = 0; f < cv.trials.size(); ++f) {
        const auto it = fold_events.find(static_cast<int>(f));
        ASSERT_NE(it, fold_events.end()) << "no event for fold " << f;
        // %.17g doubles round-trip exactly: the parsed value must be
        // bit-identical to the score recomputed from the result.
        EXPECT_EQ(it->second->args[1],
                  wcnn::numeric::mean(
                      cv.trials[f].validation.harmonicError))
            << "fold " << f << " validation error drifted";
        EXPECT_EQ(it->second->args[2],
                  wcnn::numeric::mean(
                      cv.trials[f].training.harmonicError))
            << "fold " << f << " training error drifted";
    }
}

TEST_F(TelemetryPipelineTest, TrainEventsTrackTrainerDecisions)
{
    const Dataset ds = makeDataset();
    // A very loose threshold in standardized-MSE units: reachable
    // within a few epochs, so the stop event must fire.
    NnModelOptions opts = fastNn();
    opts.train.maxEpochs = 2000;
    opts.train.targetLoss = 0.5;
    NnModel mdl(opts);
    mdl.fit(ds);
    const std::vector<JsonlLine> lines = dumpSession();

    std::size_t epochs = 0;
    std::size_t stops = 0;
    double last_epoch = -1.0;
    for (const JsonlLine &line : lines) {
        if (line.type != "instant")
            continue;
        if (line.name == "train.epoch") {
            ASSERT_EQ(line.args.size(), 4u) << line.raw;
            EXPECT_EQ(line.args[0], last_epoch + 1.0);
            last_epoch = line.args[0];
            EXPECT_TRUE(std::isfinite(line.args[1])); // loss
            EXPECT_GE(line.args[2], 0.0);             // gradient norm
            EXPECT_GT(line.args[3], 0.0);             // learning rate
            ++epochs;
        } else if (line.name == "train.stop.target") {
            ++stops;
        }
    }
    EXPECT_GT(epochs, 0u);
    EXPECT_LT(epochs, 2000u) << "loose target never reached";
    EXPECT_EQ(stops, 1u);
}

} // namespace

#else // WCNN_NO_TELEMETRY

TEST(TelemetryPipelineTest, SkippedWithoutTelemetry)
{
    GTEST_SKIP() << "library built with WCNN_NO_TELEMETRY";
}

#endif // WCNN_NO_TELEMETRY
