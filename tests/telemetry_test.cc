/**
 * @file
 * Contract suite for src/core/telemetry: metrics registry exactness,
 * span nesting well-formedness, snapshot-merge determinism, the
 * enabled() gate, and exporter schema basics. Thread-safety contracts
 * live in telemetry_threaded_test.cc; the WCNN_NO_TELEMETRY compile-out
 * proof lives in telemetry_notelemetry_test.cc.
 *
 * The registry is process-global, so every test starts from
 * setEnabled + reset and disables recording on exit.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/contracts.hh"
#include "core/telemetry.hh"

namespace {

namespace telemetry = wcnn::core::telemetry;
using telemetry::Event;
using telemetry::EventPhase;

/** Fresh enabled session per test; recording off afterwards. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
        telemetry::setEnabled(true);
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }
};

/**
 * Metric registrations last for the process lifetime (handles must
 * stay valid), so a suite sharing one process accumulates names:
 * assertions go through name lookup, never through vector sizes.
 */
template <class Value>
const Value *
findByName(const std::vector<Value> &values, const std::string &name)
{
    for (const Value &v : values) {
        if (v.name == name)
            return &v;
    }
    return nullptr;
}

/**
 * Walk one event stream and check span well-formedness: every SpanEnd
 * matches the innermost open SpanBegin of its thread by name and
 * depth, and no span stays open.
 */
void
expectBalancedSpans(const std::vector<Event> &events)
{
    std::map<int, std::vector<const Event *>> stacks;
    for (const Event &e : events) {
        if (e.phase == EventPhase::SpanBegin) {
            EXPECT_EQ(e.depth, static_cast<int>(stacks[e.tid].size()));
            stacks[e.tid].push_back(&e);
        } else if (e.phase == EventPhase::SpanEnd) {
            ASSERT_FALSE(stacks[e.tid].empty())
                << "SpanEnd '" << e.name << "' with no open span";
            const Event *begin = stacks[e.tid].back();
            EXPECT_STREQ(e.name, begin->name);
            EXPECT_EQ(e.depth, begin->depth);
            EXPECT_LE(begin->tsNs, e.tsNs);
            stacks[e.tid].pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST_F(TelemetryTest, CounterAccumulatesExactly)
{
    telemetry::Counter ctr = telemetry::counter("test.counter");
    ctr.add();
    ctr.add(41);
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::CounterValue *v =
        findByName(snap.counters, "test.counter");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value, 42u);
}

TEST_F(TelemetryTest, CounterHandlesAliasSameMetric)
{
    telemetry::Counter a = telemetry::counter("test.alias");
    telemetry::Counter b = telemetry::counter("test.alias");
    a.add(2);
    b.add(3);
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::CounterValue *v =
        findByName(snap.counters, "test.alias");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value, 5u);
}

TEST_F(TelemetryTest, GaugeKeepsLastValueAndCountsSets)
{
    telemetry::Gauge g = telemetry::gauge("test.gauge");
    const telemetry::MetricsSnapshot before = telemetry::snapshotMetrics();
    const telemetry::GaugeValue *v0 =
        findByName(before.gauges, "test.gauge");
    ASSERT_NE(v0, nullptr);
    EXPECT_EQ(v0->sets, 0u);

    g.set(1.5);
    g.set(-2.25);
    const telemetry::MetricsSnapshot after = telemetry::snapshotMetrics();
    const telemetry::GaugeValue *v1 =
        findByName(after.gauges, "test.gauge");
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->value, -2.25);
    EXPECT_EQ(v1->sets, 2u);
}

TEST_F(TelemetryTest, HistogramBucketBoundaries)
{
    EXPECT_EQ(telemetry::histogramBucket(0), 0u);
    EXPECT_EQ(telemetry::histogramBucket(1), 1u);
    EXPECT_EQ(telemetry::histogramBucket(2), 2u);
    EXPECT_EQ(telemetry::histogramBucket(3), 2u);
    EXPECT_EQ(telemetry::histogramBucket(4), 3u);
    EXPECT_EQ(telemetry::histogramBucket(7), 3u);
    EXPECT_EQ(telemetry::histogramBucket(8), 4u);
    EXPECT_EQ(telemetry::histogramBucket((1ull << 20) - 1), 20u);
    EXPECT_EQ(telemetry::histogramBucket(1ull << 20), 21u);
    EXPECT_EQ(
        telemetry::histogramBucket(std::numeric_limits<std::uint64_t>::max()),
        64u);
    static_assert(telemetry::kHistogramBuckets == 65,
                  "bucket 64 must exist for the u64 maximum");
}

TEST_F(TelemetryTest, HistogramCountsSumsAndBuckets)
{
    telemetry::Histogram h = telemetry::histogram("test.hist");
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(1024);
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::HistogramValue *found =
        findByName(snap.histograms, "test.hist");
    ASSERT_NE(found, nullptr);
    const telemetry::HistogramValue &v = *found;
    EXPECT_EQ(v.count, 5u);
    EXPECT_EQ(v.sum, 1030u);
    EXPECT_EQ(v.buckets[0], 1u); // 0
    EXPECT_EQ(v.buckets[1], 1u); // 1
    EXPECT_EQ(v.buckets[2], 2u); // 2, 3
    EXPECT_EQ(v.buckets[11], 1u); // 1024
    EXPECT_DOUBLE_EQ(v.mean(), 1030.0 / 5.0);
}

TEST_F(TelemetryTest, SnapshotIsNameSortedRegardlessOfRegistrationOrder)
{
    telemetry::counter("z.last").add(1);
    telemetry::counter("a.first").add(1);
    telemetry::counter("m.middle").add(1);
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    ASSERT_GE(snap.counters.size(), 3u);
    EXPECT_TRUE(std::is_sorted(
        snap.counters.begin(), snap.counters.end(),
        [](const telemetry::CounterValue &a,
           const telemetry::CounterValue &b) { return a.name < b.name; }));
    EXPECT_NE(findByName(snap.counters, "a.first"), nullptr);
    EXPECT_NE(findByName(snap.counters, "m.middle"), nullptr);
    EXPECT_NE(findByName(snap.counters, "z.last"), nullptr);
}

#ifndef WCNN_NO_CONTRACTS
TEST_F(TelemetryTest, KindMismatchIsAContractViolation)
{
    telemetry::counter("test.kind_clash");
    EXPECT_THROW(telemetry::gauge("test.kind_clash"),
                 wcnn::ContractViolation);
    EXPECT_THROW(telemetry::histogram("test.kind_clash"),
                 wcnn::ContractViolation);
}
#endif

TEST_F(TelemetryTest, ResetZeroesValuesAndDropsEvents)
{
    telemetry::counter("test.reset.ctr").add(9);
    telemetry::histogram("test.reset.hist").record(5);
    telemetry::emitInstant("test.reset.event", 1.0);
    telemetry::reset();

    EXPECT_TRUE(telemetry::collectEvents().empty());
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    for (const auto &c : snap.counters)
        EXPECT_EQ(c.value, 0u) << c.name;
    for (const auto &h : snap.histograms)
        EXPECT_EQ(h.count, 0u) << h.name;
    for (const auto &g : snap.gauges)
        EXPECT_EQ(g.sets, 0u) << g.name;
}

TEST_F(TelemetryTest, EventsCarryArgsAndArrive)
{
    telemetry::emitInstant("test.event", 1.0, 2.5, -3.0);
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.event");
    EXPECT_EQ(events[0].phase, EventPhase::Instant);
    ASSERT_EQ(events[0].nargs, 3);
    EXPECT_EQ(events[0].args[0], 1.0);
    EXPECT_EQ(events[0].args[1], 2.5);
    EXPECT_EQ(events[0].args[2], -3.0);
}

TEST_F(TelemetryTest, SpansNestAndBalance)
{
    {
        telemetry::SpanScope outer("outer", 1.0);
        {
            telemetry::SpanScope inner("inner");
            telemetry::emitInstant("leaf", 7.0);
        }
        telemetry::SpanScope sibling("sibling");
    }
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 7u);
    expectBalancedSpans(events);

    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_EQ(events[0].phase, EventPhase::SpanBegin);
    EXPECT_EQ(events[0].depth, 0);
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_STREQ(events[2].name, "leaf");
    EXPECT_EQ(events[2].depth, 2);
    EXPECT_STREQ(events[3].name, "inner");
    EXPECT_EQ(events[3].phase, EventPhase::SpanEnd);
    EXPECT_STREQ(events[6].name, "outer");
    EXPECT_EQ(events[6].phase, EventPhase::SpanEnd);
}

TEST_F(TelemetryTest, CollectedStreamIsTimeAndSequenceOrdered)
{
    for (int i = 0; i < 100; ++i)
        telemetry::emitInstant("tick", static_cast<double>(i));
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 100u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].tsNs, events[i].tsNs);
        EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
    EXPECT_GE(events.front().tsNs, 0);
}

TEST_F(TelemetryTest, NothingRecordsWhileDisabled)
{
    telemetry::setEnabled(false);
    {
        WCNN_SPAN("disabled.span");
        WCNN_EVENT("disabled.event", 1.0);
        WCNN_COUNTER_ADD("disabled.ctr", 1);
        WCNN_GAUGE_SET("disabled.gauge", 1.0);
        WCNN_HISTOGRAM_RECORD("disabled.hist", 1);
    }
    EXPECT_TRUE(telemetry::collectEvents().empty());
    // The macros never even registered their metrics.
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    EXPECT_EQ(findByName(snap.counters, "disabled.ctr"), nullptr);
    EXPECT_EQ(findByName(snap.gauges, "disabled.gauge"), nullptr);
    EXPECT_EQ(findByName(snap.histograms, "disabled.hist"), nullptr);
}

TEST_F(TelemetryTest, SpanOpenedWhileDisabledStaysInert)
{
    telemetry::setEnabled(false);
    {
        telemetry::SpanScope span("flip.span");
        // Recording turns on mid-span: the close must not emit an
        // unmatched SpanEnd.
        telemetry::setEnabled(true);
        telemetry::emitInstant("flip.event");
    }
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "flip.event");
    expectBalancedSpans(events);
}

#ifndef WCNN_NO_TELEMETRY
TEST_F(TelemetryTest, MacrosEvaluateArgsOnlyWhenEnabled)
{
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return 1.0;
    };
    telemetry::setEnabled(false);
    WCNN_EVENT("probe.event", probe());
    WCNN_GAUGE_SET("probe.gauge", probe());
    EXPECT_EQ(evaluations, 0);
    EXPECT_FALSE(WCNN_TELEMETRY_ENABLED());

    telemetry::setEnabled(true);
    WCNN_EVENT("probe.event", probe());
    EXPECT_EQ(evaluations, 1);
    EXPECT_TRUE(WCNN_TELEMETRY_ENABLED());
}

TEST_F(TelemetryTest, MacroSpanAndMetricsRecord)
{
    {
        WCNN_SPAN("macro.span", 3.0);
        WCNN_COUNTER_ADD("macro.ctr", 2);
        WCNN_HISTOGRAM_RECORD("macro.hist", 16);
        WCNN_GAUGE_SET("macro.gauge", 0.5);
    }
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 2u);
    expectBalancedSpans(events);
    EXPECT_STREQ(events[0].name, "macro.span");
    ASSERT_EQ(events[0].nargs, 1);
    EXPECT_EQ(events[0].args[0], 3.0);

    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::CounterValue *ctr =
        findByName(snap.counters, "macro.ctr");
    ASSERT_NE(ctr, nullptr);
    EXPECT_EQ(ctr->value, 2u);
    const telemetry::HistogramValue *hist =
        findByName(snap.histograms, "macro.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->buckets[5], 1u); // 16 -> [16,32)
    const telemetry::GaugeValue *gauge =
        findByName(snap.gauges, "macro.gauge");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value, 0.5);
}
#endif // WCNN_NO_TELEMETRY

TEST_F(TelemetryTest, JsonlSchemaRoundTrips)
{
    {
        telemetry::SpanScope span("jsonl.span", 2.0);
        telemetry::emitInstant("jsonl.event", 0.1);
    }
    telemetry::counter("jsonl.ctr").add(3);
    std::ostringstream os;
    telemetry::writeJsonl(os);
    const std::string text = os.str();

    std::istringstream is(text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    // Meta first, events in order next; metric lines (one per metric
    // ever registered in this process) follow.
    ASSERT_GE(lines.size(), 5u);
    EXPECT_NE(lines[0].find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"events\":3"), std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"span_begin\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"name\":\"jsonl.span\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"args\":[2]"), std::string::npos);
    EXPECT_NE(lines[2].find("\"type\":\"instant\""), std::string::npos);
    EXPECT_NE(lines[3].find("\"type\":\"span_end\""), std::string::npos);
    bool sawCounter = false;
    for (const std::string &l : lines) {
        EXPECT_EQ(l.front(), '{');
        EXPECT_EQ(l.back(), '}');
        if (l.find("\"type\":\"counter\"") != std::string::npos &&
            l.find("\"name\":\"jsonl.ctr\"") != std::string::npos) {
            sawCounter = true;
            EXPECT_NE(l.find("\"value\":3"), std::string::npos);
        }
    }
    EXPECT_TRUE(sawCounter);
}

TEST_F(TelemetryTest, ChromeTraceIsWellFormed)
{
    {
        telemetry::SpanScope span("chrome.span");
        telemetry::emitInstant("chrome.event");
    }
    std::ostringstream os;
    telemetry::writeChromeTrace(os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"wcnn\""), std::string::npos);
}

TEST_F(TelemetryTest, SummaryTableAggregatesSpans)
{
    for (int i = 0; i < 3; ++i)
        telemetry::SpanScope span("summary.span");
    telemetry::counter("summary.ctr").add(7);
    const std::string table = telemetry::summaryTable();
    EXPECT_NE(table.find("summary.span"), std::string::npos);
    EXPECT_NE(table.find("summary.ctr"), std::string::npos);
    EXPECT_NE(table.find("3"), std::string::npos);
}

TEST_F(TelemetryTest, TimedSecondsReturnsDurationAndEmitsSpan)
{
    const double seconds = telemetry::timedSeconds("timed.stage", []() {
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    });
    EXPECT_GE(seconds, 0.0);
    const std::vector<Event> events = telemetry::collectEvents();
#ifndef WCNN_NO_TELEMETRY
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "timed.stage");
    expectBalancedSpans(events);
#else
    EXPECT_TRUE(events.empty());
#endif

    // Works (and still times) when recording is disabled.
    telemetry::setEnabled(false);
    EXPECT_GE(telemetry::timedSeconds("timed.stage", []() {}), 0.0);
}

TEST_F(TelemetryTest, RecorderFromArgsStripsFlags)
{
    const std::string prefix =
        ::testing::TempDir() + "/wcnn_telemetry_recorder";
    std::string a0 = "prog", a1 = "--telemetry", a2 = prefix,
                a3 = "--keep", a4 = "--telemetry-summary";
    char *argv[] = {a0.data(), a1.data(), a2.data(), a3.data(),
                    a4.data(), nullptr};
    int argc = 5;
    ::testing::internal::CaptureStdout();
    {
        telemetry::Recorder rec =
            telemetry::Recorder::fromArgs(argc, argv);
        EXPECT_TRUE(rec.active());
        ASSERT_EQ(argc, 2);
        EXPECT_STREQ(argv[0], "prog");
        EXPECT_STREQ(argv[1], "--keep");
        telemetry::counter("recorder.ctr").add(1);
    }
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("telemetry summary"), std::string::npos);
    EXPECT_NE(out.find("recorder.ctr"), std::string::npos);

    std::ifstream jsonl(prefix + ".jsonl");
    EXPECT_TRUE(jsonl.good());
    std::ifstream trace(prefix + ".trace.json");
    EXPECT_TRUE(trace.good());

    // Recording is off again after the recorder is destroyed.
    EXPECT_FALSE(telemetry::enabled());
}

TEST_F(TelemetryTest, RecorderWithoutFlagsIsInactive)
{
    std::string a0 = "prog", a1 = "--threads", a2 = "4";
    char *argv[] = {a0.data(), a1.data(), a2.data(), nullptr};
    int argc = 3;
    telemetry::setEnabled(false);
    telemetry::Recorder rec = telemetry::Recorder::fromArgs(argc, argv);
    EXPECT_FALSE(rec.active());
    EXPECT_EQ(argc, 3);
    EXPECT_FALSE(telemetry::enabled());
}

TEST_F(TelemetryTest, NowNsIsMonotone)
{
    const std::int64_t a = telemetry::nowNs();
    const std::int64_t b = telemetry::nowNs();
    EXPECT_LE(a, b);
}

} // namespace
