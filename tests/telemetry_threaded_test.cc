/**
 * @file
 * Concurrency contracts for src/core/telemetry, exercised through the
 * direct object API so the suite is preset-independent (the macros'
 * compile-out proof lives in telemetry_notelemetry_test.cc). Run under
 * the TSan preset these tests double as a data-race check on the
 * sharded hot path, the event buffers, and snapshot-while-recording.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/telemetry.hh"

namespace {

namespace telemetry = wcnn::core::telemetry;
using telemetry::Event;
using telemetry::EventPhase;

constexpr int kThreads = 8;
constexpr int kIterations = 10000;

/**
 * Metric registrations last for the process lifetime, so lookups go by
 * name instead of indexing the snapshot vectors.
 */
template <class Value>
const Value *
findByName(const std::vector<Value> &values, const std::string &name)
{
    for (const Value &v : values) {
        if (v.name == name)
            return &v;
    }
    return nullptr;
}

class TelemetryThreadedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
        telemetry::setEnabled(true);
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }
};

void
runThreads(int n, const std::function<void(int)> &body)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(body, t);
    for (std::thread &thread : threads)
        thread.join();
}

TEST_F(TelemetryThreadedTest, CounterIsExactUnderConcurrentAdds)
{
    telemetry::Counter ctr = telemetry::counter("threaded.ctr");
    runThreads(kThreads, [&ctr](int) {
        for (int i = 0; i < kIterations; ++i)
            ctr.add();
    });
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::CounterValue *v =
        findByName(snap.counters, "threaded.ctr");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value, static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST_F(TelemetryThreadedTest, HistogramIsExactUnderConcurrentRecords)
{
    telemetry::Histogram hist = telemetry::histogram("threaded.hist");
    // Each thread records 0..999 once: every aggregate is predictable.
    runThreads(kThreads, [&hist](int) {
        for (std::uint64_t v = 0; v < 1000; ++v)
            hist.record(v);
    });
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::HistogramValue *found =
        findByName(snap.histograms, "threaded.hist");
    ASSERT_NE(found, nullptr);
    const telemetry::HistogramValue &v = *found;
    EXPECT_EQ(v.count, static_cast<std::uint64_t>(kThreads) * 1000);
    EXPECT_EQ(v.sum, static_cast<std::uint64_t>(kThreads) * 499500);
    // Bucket b >= 1 holds [2^(b-1), 2^b); values < 1000 fill buckets
    // 0..10 (bucket 10 holds 512..999 = 488 values).
    EXPECT_EQ(v.buckets[0], static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(v.buckets[1], static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(v.buckets[10],
              static_cast<std::uint64_t>(kThreads) * (1000 - 512));
    std::uint64_t total = 0;
    for (std::uint64_t b : v.buckets)
        total += b;
    EXPECT_EQ(total, v.count);
}

TEST_F(TelemetryThreadedTest, SnapshotWhileRecordingIsSafeAndBounded)
{
    telemetry::Counter ctr = telemetry::counter("threaded.live");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&ctr, &stop]() {
            while (!stop.load(std::memory_order_relaxed))
                ctr.add();
        });
    }
    // Interleaved snapshots must be monotone (counters only grow) and
    // race-free (TSan is the judge of the latter). No early returns
    // here: the writers must always be joined.
    std::uint64_t last = 0;
    bool missing = false;
    bool shrank = false;
    for (int i = 0; i < 50 && !missing; ++i) {
        const telemetry::MetricsSnapshot snap =
            telemetry::snapshotMetrics();
        const telemetry::CounterValue *v =
            findByName(snap.counters, "threaded.live");
        if (v == nullptr) {
            missing = true;
            break;
        }
        shrank = shrank || v->value < last;
        last = v->value;
    }
    stop.store(true);
    for (std::thread &w : writers)
        w.join();
    EXPECT_FALSE(missing);
    EXPECT_FALSE(shrank);
}

TEST_F(TelemetryThreadedTest, EventsFromAllThreadsAreCollectedAndOrdered)
{
    runThreads(kThreads, [](int t) {
        telemetry::SpanScope span("threaded.span",
                                  static_cast<double>(t));
        for (int i = 0; i < 100; ++i)
            telemetry::emitInstant("threaded.tick",
                                   static_cast<double>(i));
    });
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 102);

    // Global order: non-decreasing timestamps, unique sequence numbers.
    std::set<std::uint64_t> seqs;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0) {
            EXPECT_LE(events[i - 1].tsNs, events[i].tsNs);
        }
        EXPECT_TRUE(seqs.insert(events[i].seq).second)
            << "duplicate seq " << events[i].seq;
    }

    // Per-tid order: emission order survives the merge. Thread states
    // are pooled, so one tid may carry several workers' (sequential,
    // never interleaved) span groups — each group must be the exact
    // begin / 100 ticks / end pattern its worker emitted.
    std::map<int, std::vector<const Event *>> byTid;
    for (const Event &e : events)
        byTid[e.tid].push_back(&e);
    int groups = 0;
    for (const auto &[tid, stream] : byTid) {
        ASSERT_EQ(stream.size() % 102, 0u) << "tid " << tid;
        for (std::size_t i = 1; i < stream.size(); ++i)
            EXPECT_LT(stream[i - 1]->seq, stream[i]->seq);
        for (std::size_t base = 0; base < stream.size(); base += 102) {
            ++groups;
            ASSERT_EQ(stream[base]->phase, EventPhase::SpanBegin);
            ASSERT_EQ(stream[base + 101]->phase, EventPhase::SpanEnd);
            for (std::size_t k = 0; k < 100; ++k) {
                const Event *tick = stream[base + 1 + k];
                ASSERT_EQ(tick->phase, EventPhase::Instant);
                EXPECT_EQ(tick->depth, 1);
                EXPECT_EQ(tick->args[0], static_cast<double>(k));
            }
        }
    }
    EXPECT_EQ(groups, kThreads);
}

TEST_F(TelemetryThreadedTest, ExitedThreadEventsSurviveCollection)
{
    {
        std::thread worker([]() {
            telemetry::SpanScope span("retired.span");
            telemetry::emitInstant("retired.event", 11.0);
        });
        worker.join();
    }
    // The worker is gone; its events must have been retired, not lost.
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_STREQ(events[0].name, "retired.span");
    EXPECT_STREQ(events[1].name, "retired.event");
    EXPECT_EQ(events[1].args[0], 11.0);
}

TEST_F(TelemetryThreadedTest, CounterSurvivesThreadChurn)
{
    telemetry::Counter ctr = telemetry::counter("churn.ctr");
    // Sequential short-lived threads: shards are parked and reused,
    // never dropped, so the total stays exact.
    for (int round = 0; round < 20; ++round) {
        std::thread worker([&ctr]() { ctr.add(5); });
        worker.join();
    }
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const telemetry::CounterValue *v =
        findByName(snap.counters, "churn.ctr");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->value, 100u);
}

TEST_F(TelemetryThreadedTest, ConcurrentRegistrationYieldsOneMetric)
{
    runThreads(kThreads, [](int) {
        telemetry::counter("registration.race").add(1);
    });
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    int matches = 0;
    for (const telemetry::CounterValue &c : snap.counters) {
        if (c.name == "registration.race") {
            ++matches;
            EXPECT_EQ(c.value, static_cast<std::uint64_t>(kThreads));
        }
    }
    EXPECT_EQ(matches, 1);
}

TEST_F(TelemetryThreadedTest, TidsAreSmallAndStablePerThread)
{
    runThreads(kThreads, [](int) {
        telemetry::emitInstant("tid.probe");
        telemetry::emitInstant("tid.probe");
    });
    const std::vector<Event> events = telemetry::collectEvents();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 2);
    std::map<int, int> perTid;
    for (const Event &e : events) {
        // Pooled ids stay in [0, live thread high-water mark].
        EXPECT_GE(e.tid, 0);
        EXPECT_LE(e.tid, kThreads);
        ++perTid[e.tid];
    }
    for (const auto &[tid, count] : perTid)
        EXPECT_EQ(count % 2, 0) << "tid " << tid;
}

} // namespace
