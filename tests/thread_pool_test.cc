/**
 * @file
 * Unit tests for the two worker pools: the app-server execute queue
 * (sim::ThreadPool, simulated time) and its generalization into real
 * OS threads (core::ThreadPool / core::parallelFor), whose determinism
 * and first-failure contracts the parallel model paths rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/contracts.hh"
#include "core/parallel.hh"
#include "sim/thread_pool.hh"

using wcnn::sim::Simulator;
using wcnn::sim::ThreadPool;

TEST(ThreadPoolTest, ZeroConfiguredFloorsToOneWorker)
{
    Simulator sim;
    ThreadPool pool(sim, "default", 0, 10);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, ImmediateDispatchWhenIdle)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 2, 10);
    bool started = false;
    pool.submit([&](std::function<void()> done) {
        started = true;
        done();
    });
    EXPECT_TRUE(started);
    EXPECT_EQ(pool.completed(), 1u);
    EXPECT_EQ(pool.busy(), 0u);
}

TEST(ThreadPoolTest, ThreadHeldUntilCompletionThunk)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 10);
    std::function<void()> finish;
    pool.submit([&](std::function<void()> done) {
        finish = std::move(done);
    });
    EXPECT_EQ(pool.busy(), 1u);
    bool second_started = false;
    pool.submit([&](std::function<void()> done) {
        second_started = true;
        done();
    });
    EXPECT_FALSE(second_started);
    EXPECT_EQ(pool.queued(), 1u);
    finish(); // releases the worker; queued item dispatches
    EXPECT_TRUE(second_started);
    EXPECT_EQ(pool.completed(), 2u);
}

TEST(ThreadPoolTest, BacklogCapRejects)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 2);
    std::vector<std::function<void()>> finishers;
    // Occupy the worker and fill the backlog.
    for (int i = 0; i < 3; ++i) {
        const bool ok = pool.submit([&](std::function<void()> done) {
            finishers.push_back(std::move(done));
        });
        EXPECT_TRUE(ok);
    }
    EXPECT_EQ(pool.queued(), 2u);
    EXPECT_FALSE(pool.submit([](std::function<void()>) {}));
    EXPECT_EQ(pool.dropped(), 1u);
}

TEST(ThreadPoolTest, QueueDelayMeasured)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 10);
    // First item holds the thread for 2 seconds of simulated time.
    pool.submit([&](std::function<void()> done) {
        sim.schedule(2.0, done);
    });
    bool ran = false;
    pool.submit([&](std::function<void()> done) {
        ran = true;
        done();
    });
    sim.run(10.0);
    EXPECT_TRUE(ran);
    // One dispatch waited 0s, the other 2s.
    EXPECT_EQ(pool.queueDelay().count(), 2u);
    EXPECT_NEAR(pool.queueDelay().max(), 2.0, 1e-12);
}

TEST(ThreadPoolTest, ParallelWorkersRunConcurrently)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 3, 10);
    int active_peak = 0, active = 0;
    for (int i = 0; i < 3; ++i) {
        pool.submit([&](std::function<void()> done) {
            ++active;
            active_peak = std::max(active_peak, active);
            sim.schedule(1.0, [&active, done = std::move(done)] {
                --active;
                done();
            });
        });
    }
    EXPECT_EQ(pool.busy(), 3u);
    sim.run(10.0);
    EXPECT_EQ(active_peak, 3);
    EXPECT_EQ(pool.completed(), 3u);
}

TEST(ThreadPoolTest, NameAccessor)
{
    Simulator sim;
    ThreadPool pool(sim, "mfg", 4, 10);
    EXPECT_EQ(pool.name(), "mfg");
    EXPECT_EQ(pool.threads(), 4u);
}

// ---- core::ThreadPool: the real-OS-thread generalization. ----

namespace {

/** Thread counts the contracts are exercised at. */
constexpr std::size_t kCoreThreadCounts[] = {1, 2, 8};

} // namespace

TEST(CoreThreadPoolTest, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(wcnn::core::hardwareThreads(), 1u);
}

TEST(CoreThreadPoolTest, ThreadsAccessor)
{
    wcnn::core::ThreadPool three(3);
    EXPECT_EQ(three.threads(), 3u);
    wcnn::core::ThreadPool automatic(0);
    EXPECT_EQ(automatic.threads(), wcnn::core::hardwareThreads());
}

TEST(CoreThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    for (std::size_t threads : kCoreThreadCounts) {
        wcnn::core::ThreadPool pool(threads);
        const std::size_t n = 100;
        std::vector<int> hits(n, 0);
        std::atomic<int> total{0};
        pool.forEach(n, [&](std::size_t i) {
            ++hits[i]; // own slot only: no synchronization needed
            total.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(total.load(), static_cast<int>(n));
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "task " << i;
    }
}

TEST(CoreThreadPoolTest, ResultsIndependentOfThreadCountAndOrder)
{
    // Index-slot writes make the outcome a pure function of n, however
    // the scheduler interleaves the claims.
    const std::size_t n = 257;
    const auto run = [n](std::size_t threads) {
        std::vector<double> out(n);
        wcnn::core::parallelFor(n, threads, [&](std::size_t i) {
            out[i] = static_cast<double>(i * i) * 0.25;
        });
        return out;
    };
    const std::vector<double> serial = run(1);
    for (std::size_t threads : kCoreThreadCounts)
        EXPECT_EQ(run(threads), serial);
}

TEST(CoreThreadPoolTest, LowestIndexExceptionWinsAtEveryThreadCount)
{
    // Several tasks fail; the rethrown exception must be the lowest
    // failing index no matter how many runners raced for tasks.
    for (std::size_t threads : kCoreThreadCounts) {
        std::string caught;
        try {
            wcnn::core::parallelFor(64, threads, [](std::size_t i) {
                if (i >= 7 && i % 3 == 1)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        EXPECT_EQ(caught, "task 7") << "threads = " << threads;
    }
}

TEST(CoreThreadPoolTest, AllTasksStillRunWhenOneThrows)
{
    // First-failure semantics drain the whole batch before rethrowing,
    // so the exception choice cannot depend on scheduling.
    for (std::size_t threads : kCoreThreadCounts) {
        const std::size_t n = 32;
        std::vector<int> hits(n, 0);
        EXPECT_THROW(
            wcnn::core::parallelFor(n, threads,
                                    [&](std::size_t i) {
                                        ++hits[i];
                                        if (i == 3)
                                            throw std::runtime_error(
                                                "boom");
                                    }),
            std::runtime_error);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "task " << i;
    }
}

#ifndef WCNN_NO_CONTRACTS
TEST(CoreThreadPoolTest, ContractViolationPropagates)
{
    // A contract tripping inside a worker must surface to the caller
    // as the same exception type it throws serially.
    for (std::size_t threads : kCoreThreadCounts) {
        EXPECT_THROW(wcnn::core::parallelFor(
                         8, threads,
                         [](std::size_t i) {
                             WCNN_REQUIRE(i != 5,
                                          "task 5 violates its "
                                          "contract");
                         }),
                     wcnn::ContractViolation);
    }
}
#endif

TEST(CoreThreadPoolTest, PoolReusableAcrossBatchesAndAfterFailure)
{
    wcnn::core::ThreadPool pool(4);
    std::vector<int> first(10, 0);
    pool.forEach(10, [&](std::size_t i) { first[i] = 1; });
    EXPECT_THROW(pool.forEach(10,
                              [](std::size_t i) {
                                  if (i == 2)
                                      throw std::runtime_error("x");
                              }),
                 std::runtime_error);
    // The failed batch must not poison the next one.
    std::vector<int> second(10, 0);
    pool.forEach(10, [&](std::size_t i) { second[i] = 2; });
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(first[i], 1);
        EXPECT_EQ(second[i], 2);
    }
}

TEST(CoreThreadPoolTest, ZeroAndSingleTaskBatches)
{
    wcnn::core::ThreadPool pool(4);
    int runs = 0;
    pool.forEach(0, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.forEach(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
    wcnn::core::parallelFor(0, 0, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST(CoreThreadPoolTest, MoreThreadsThanTasks)
{
    std::vector<int> hits(3, 0);
    wcnn::core::parallelFor(3, 16,
                            [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}
