/**
 * @file
 * Unit tests for the app-server execute queue (thread pool).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/thread_pool.hh"

using wcnn::sim::Simulator;
using wcnn::sim::ThreadPool;

TEST(ThreadPoolTest, ZeroConfiguredFloorsToOneWorker)
{
    Simulator sim;
    ThreadPool pool(sim, "default", 0, 10);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, ImmediateDispatchWhenIdle)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 2, 10);
    bool started = false;
    pool.submit([&](std::function<void()> done) {
        started = true;
        done();
    });
    EXPECT_TRUE(started);
    EXPECT_EQ(pool.completed(), 1u);
    EXPECT_EQ(pool.busy(), 0u);
}

TEST(ThreadPoolTest, ThreadHeldUntilCompletionThunk)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 10);
    std::function<void()> finish;
    pool.submit([&](std::function<void()> done) {
        finish = std::move(done);
    });
    EXPECT_EQ(pool.busy(), 1u);
    bool second_started = false;
    pool.submit([&](std::function<void()> done) {
        second_started = true;
        done();
    });
    EXPECT_FALSE(second_started);
    EXPECT_EQ(pool.queued(), 1u);
    finish(); // releases the worker; queued item dispatches
    EXPECT_TRUE(second_started);
    EXPECT_EQ(pool.completed(), 2u);
}

TEST(ThreadPoolTest, BacklogCapRejects)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 2);
    std::vector<std::function<void()>> finishers;
    // Occupy the worker and fill the backlog.
    for (int i = 0; i < 3; ++i) {
        const bool ok = pool.submit([&](std::function<void()> done) {
            finishers.push_back(std::move(done));
        });
        EXPECT_TRUE(ok);
    }
    EXPECT_EQ(pool.queued(), 2u);
    EXPECT_FALSE(pool.submit([](std::function<void()>) {}));
    EXPECT_EQ(pool.dropped(), 1u);
}

TEST(ThreadPoolTest, QueueDelayMeasured)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 1, 10);
    // First item holds the thread for 2 seconds of simulated time.
    pool.submit([&](std::function<void()> done) {
        sim.schedule(2.0, done);
    });
    bool ran = false;
    pool.submit([&](std::function<void()> done) {
        ran = true;
        done();
    });
    sim.run(10.0);
    EXPECT_TRUE(ran);
    // One dispatch waited 0s, the other 2s.
    EXPECT_EQ(pool.queueDelay().count(), 2u);
    EXPECT_NEAR(pool.queueDelay().max(), 2.0, 1e-12);
}

TEST(ThreadPoolTest, ParallelWorkersRunConcurrently)
{
    Simulator sim;
    ThreadPool pool(sim, "web", 3, 10);
    int active_peak = 0, active = 0;
    for (int i = 0; i < 3; ++i) {
        pool.submit([&](std::function<void()> done) {
            ++active;
            active_peak = std::max(active_peak, active);
            sim.schedule(1.0, [&active, done = std::move(done)] {
                --active;
                done();
            });
        });
    }
    EXPECT_EQ(pool.busy(), 3u);
    sim.run(10.0);
    EXPECT_EQ(active_peak, 3);
    EXPECT_EQ(pool.completed(), 3u);
}

TEST(ThreadPoolTest, NameAccessor)
{
    Simulator sim;
    ThreadPool pool(sim, "mfg", 4, 10);
    EXPECT_EQ(pool.name(), "mfg");
    EXPECT_EQ(pool.threads(), 4u);
}
