/**
 * @file
 * Integration tests for the full 3-tier simulation facade: determinism,
 * conservation, and the qualitative trends the paper's analysis rests
 * on. Short windows keep the suite fast; trend tests average seeds.
 */

#include <gtest/gtest.h>

#include "sim/three_tier.hh"

using namespace wcnn::sim;

namespace {

ThreeTierConfig
quickConfig()
{
    ThreeTierConfig cfg;
    cfg.warmup = 10.0;
    cfg.measure = 40.0;
    return cfg;
}

PerfSample
averaged(ThreeTierConfig cfg, int seeds,
         const WorkloadParams &params = WorkloadParams::defaults())
{
    PerfSample acc;
    for (int s = 1; s <= seeds; ++s) {
        cfg.seed = static_cast<std::uint64_t>(s);
        const PerfSample r = simulateThreeTier(cfg, params);
        acc.manufacturingRt += r.manufacturingRt;
        acc.dealerPurchaseRt += r.dealerPurchaseRt;
        acc.dealerManageRt += r.dealerManageRt;
        acc.dealerBrowseRt += r.dealerBrowseRt;
        acc.throughput += r.throughput;
    }
    const double n = seeds;
    acc.manufacturingRt /= n;
    acc.dealerPurchaseRt /= n;
    acc.dealerManageRt /= n;
    acc.dealerBrowseRt /= n;
    acc.throughput /= n;
    return acc;
}

} // namespace

TEST(ThreeTierTest, ConfigVectorAndNames)
{
    ThreeTierConfig cfg;
    cfg.injectionRate = 500;
    cfg.defaultQueue = 1;
    cfg.mfgQueue = 2;
    cfg.webQueue = 3;
    EXPECT_EQ(cfg.toVector(),
              (std::vector<double>{500, 1, 2, 3}));
    const auto names = ThreeTierConfig::parameterNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "injection_rate");
    EXPECT_EQ(names[3], "web_queue");
}

TEST(ThreeTierTest, SameSeedIsBitIdentical)
{
    ThreeTierConfig cfg = quickConfig();
    cfg.seed = 99;
    const PerfSample a = simulateThreeTier(cfg);
    const PerfSample b = simulateThreeTier(cfg);
    EXPECT_DOUBLE_EQ(a.manufacturingRt, b.manufacturingRt);
    EXPECT_DOUBLE_EQ(a.dealerPurchaseRt, b.dealerPurchaseRt);
    EXPECT_DOUBLE_EQ(a.dealerManageRt, b.dealerManageRt);
    EXPECT_DOUBLE_EQ(a.dealerBrowseRt, b.dealerBrowseRt);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(ThreeTierTest, DifferentSeedsDiffer)
{
    ThreeTierConfig cfg = quickConfig();
    cfg.seed = 1;
    const PerfSample a = simulateThreeTier(cfg);
    cfg.seed = 2;
    const PerfSample b = simulateThreeTier(cfg);
    EXPECT_NE(a.throughput, b.throughput);
}

TEST(ThreeTierTest, DiagnosticsAreConsistent)
{
    ThreeTierConfig cfg = quickConfig();
    RunDiagnostics diag;
    const PerfSample s = simulateThreeTier(
        cfg, WorkloadParams::defaults(), &diag);
    (void)s;
    // Injection rate 560 over 50 s: roughly 28k requests.
    EXPECT_GT(diag.injected, 25000u);
    EXPECT_LT(diag.injected, 31000u);
    EXPECT_GT(diag.eventsProcessed, diag.injected);
    ASSERT_EQ(diag.completions.size(), numTxnClasses);
    std::size_t completed = 0;
    for (std::size_t c : diag.completions)
        completed += c;
    // Completions within the measurement window cannot exceed
    // injections, and a healthy default config completes most of them.
    EXPECT_LT(completed, diag.injected);
    EXPECT_GT(completed, diag.injected / 2);
    EXPECT_GT(diag.cpuDemand, 0.0);
}

TEST(ThreeTierTest, ResponseTimesIncludeNetworkFloor)
{
    const PerfSample s = averaged(quickConfig(), 2);
    const double floor = WorkloadParams::defaults().networkLatency;
    EXPECT_GE(s.manufacturingRt, floor);
    EXPECT_GE(s.dealerPurchaseRt, floor);
    EXPECT_GE(s.dealerBrowseRt, floor);
}

TEST(ThreeTierTest, StarvedDefaultQueueHurtsPurchaseNotBrowse)
{
    ThreeTierConfig starved = quickConfig();
    starved.defaultQueue = 0;
    ThreeTierConfig healthy = quickConfig();
    healthy.defaultQueue = 10;

    const PerfSample s = averaged(starved, 3);
    const PerfSample h = averaged(healthy, 3);
    // Purchase/manage ride the default queue; browse does not.
    EXPECT_GT(s.dealerPurchaseRt, 3.0 * h.dealerPurchaseRt);
    EXPECT_GT(s.dealerManageRt, 3.0 * h.dealerManageRt);
    EXPECT_LT(s.dealerBrowseRt, 2.0 * h.dealerBrowseRt);
    // And effective throughput collapses accordingly.
    EXPECT_LT(s.throughput, 0.8 * h.throughput);
}

TEST(ThreeTierTest, ManufacturingFlatAlongDefaultQueue)
{
    // Paper Fig. 4 (parallel slopes): the default queue barely moves
    // the manufacturing response time.
    ThreeTierConfig lo = quickConfig();
    lo.defaultQueue = 4;
    ThreeTierConfig hi = quickConfig();
    hi.defaultQueue = 20;
    const PerfSample a = averaged(lo, 4);
    const PerfSample b = averaged(hi, 4);
    EXPECT_NEAR(a.manufacturingRt, b.manufacturingRt,
                0.25 * a.manufacturingRt);
}

TEST(ThreeTierTest, ManufacturingRisesAlongWebQueue)
{
    // Paper Fig. 4: the web queue *does* move the manufacturing
    // response time (GC/CPU coupling). The manufacturing pool sits at
    // a saturation knee, so this trend needs longer windows, several
    // seeds and a small noise allowance.
    ThreeTierConfig lo = quickConfig();
    lo.webQueue = 14;
    lo.measure = 100.0;
    ThreeTierConfig hi = quickConfig();
    hi.webQueue = 20;
    hi.measure = 100.0;
    const PerfSample a = averaged(lo, 6);
    const PerfSample b = averaged(hi, 6);
    EXPECT_GT(b.manufacturingRt, a.manufacturingRt - 0.05);
}

TEST(ThreeTierTest, WiderWebPoolImprovesDealerResponse)
{
    ThreeTierConfig lo = quickConfig();
    lo.webQueue = 14;
    ThreeTierConfig hi = quickConfig();
    hi.webQueue = 20;
    const PerfSample a = averaged(lo, 3);
    const PerfSample b = averaged(hi, 3);
    EXPECT_LT(b.dealerBrowseRt, a.dealerBrowseRt);
    EXPECT_GE(b.throughput, a.throughput);
}

TEST(ThreeTierTest, HigherInjectionRaisesLoad)
{
    ThreeTierConfig lo = quickConfig();
    lo.injectionRate = 500;
    ThreeTierConfig hi = quickConfig();
    hi.injectionRate = 620;
    const PerfSample a = averaged(lo, 3);
    const PerfSample b = averaged(hi, 3);
    // More offered load cannot reduce response times.
    EXPECT_GE(b.manufacturingRt, 0.9 * a.manufacturingRt);
    EXPECT_GT(b.dealerBrowseRt + b.dealerPurchaseRt,
              0.9 * (a.dealerBrowseRt + a.dealerPurchaseRt));
}

TEST(ThreeTierTest, FractionalThreadCountsRound)
{
    ThreeTierConfig a = quickConfig();
    a.webQueue = 17.6;
    a.seed = 5;
    ThreeTierConfig b = quickConfig();
    b.webQueue = 18.0;
    b.seed = 5;
    const PerfSample ra = simulateThreeTier(a);
    const PerfSample rb = simulateThreeTier(b);
    EXPECT_DOUBLE_EQ(ra.throughput, rb.throughput);
}

TEST(ThreeTierTest, GcDisabledRunsFaster)
{
    WorkloadParams no_gc = WorkloadParams::defaults();
    no_gc.gcTxnInterval = 0;
    const PerfSample with_gc = averaged(quickConfig(), 3);
    const PerfSample without =
        averaged(quickConfig(), 3, no_gc);
    EXPECT_LT(without.manufacturingRt, with_gc.manufacturingRt);
}
