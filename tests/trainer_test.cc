/**
 * @file
 * Tests for gradient-descent back-propagation training: convergence on
 * classic tasks, the paper's loose-threshold stop rule, and
 * validation-based early stopping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/trainer.hh"
#include "numeric/rng.hh"

using wcnn::nn::Activation;
using wcnn::nn::InitRule;
using wcnn::nn::LayerSpec;
using wcnn::nn::Mlp;
using wcnn::nn::TrainOptions;
using wcnn::nn::Trainer;
using wcnn::numeric::Matrix;
using wcnn::numeric::Rng;
using wcnn::numeric::Vector;

TEST(TrainerTest, LearnsXor)
{
    // The canonical non-linearly-separable task: a linear model cannot
    // do better than MSE 0.25.
    Rng rng(1);
    Mlp net(2,
            {LayerSpec{6, Activation::tanh()},
             LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    Matrix y{{0}, {1}, {1}, {0}};

    TrainOptions opts;
    opts.learningRate = 0.1;
    opts.momentum = 0.9;
    opts.maxEpochs = 5000;
    opts.targetLoss = 1e-3;
    Trainer trainer(opts);
    Rng shuffle(2);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_LE(result.finalTrainLoss, 1e-3);
    EXPECT_TRUE(result.hitTargetLoss);
    EXPECT_NEAR(net.forward(Vector{0, 1})[0], 1.0, 0.15);
    EXPECT_NEAR(net.forward(Vector{1, 1})[0], 0.0, 0.15);
}

TEST(TrainerTest, FitsLinearFunctionClosely)
{
    Rng rng(3);
    Mlp net(2, {LayerSpec{1, Activation::identity()}},
            InitRule::SmallUniform, rng);
    // y = 2a - b + 0.5 over a small grid.
    Matrix x(9, 2), y(9, 1);
    std::size_t row = 0;
    for (double a = -1; a <= 1; a += 1) {
        for (double b = -1; b <= 1; b += 1) {
            x(row, 0) = a;
            x(row, 1) = b;
            y(row, 0) = 2 * a - b + 0.5;
            ++row;
        }
    }
    TrainOptions opts;
    opts.learningRate = 0.1;
    opts.maxEpochs = 4000;
    opts.targetLoss = 1e-8;
    Trainer trainer(opts);
    Rng shuffle(4);
    trainer.train(net, x, y, shuffle);
    EXPECT_NEAR(net.weights(0)(0, 0), 2.0, 0.01);
    EXPECT_NEAR(net.weights(0)(0, 1), -1.0, 0.01);
    EXPECT_NEAR(net.biases(0)[0], 0.5, 0.01);
}

TEST(TrainerTest, ApproximatesSmoothNonLinearFunction)
{
    // Universal-approximation smoke test (paper ref [7]): fit
    // sin(pi x) on [-1, 1].
    Rng rng(5);
    Mlp net(1,
            {LayerSpec{12, Activation::tanh()},
             LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    const std::size_t n = 40;
    Matrix x(n, 1), y(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double xi =
            -1.0 + 2.0 * static_cast<double>(i) / (n - 1);
        x(i, 0) = xi;
        y(i, 0) = std::sin(M_PI * xi);
    }
    TrainOptions opts;
    opts.learningRate = 0.05;
    opts.momentum = 0.9;
    opts.maxEpochs = 6000;
    opts.targetLoss = 5e-4;
    Trainer trainer(opts);
    Rng shuffle(6);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_LT(result.finalTrainLoss, 5e-3);
    EXPECT_NEAR(net.forward({0.5})[0], 1.0, 0.2);
    EXPECT_NEAR(net.forward({-0.5})[0], -1.0, 0.2);
}

TEST(TrainerTest, TargetLossStopsEarly)
{
    Rng rng(7);
    Mlp net(1, {LayerSpec{1, Activation::identity()}},
            InitRule::SmallUniform, rng);
    Matrix x{{0}, {1}}, y{{0}, {1}};
    TrainOptions opts;
    opts.learningRate = 0.5;
    opts.maxEpochs = 10000;
    opts.targetLoss = 0.05; // loose on purpose (paper section 3.3)
    Trainer trainer(opts);
    Rng shuffle(8);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_TRUE(result.hitTargetLoss);
    EXPECT_LT(result.epochs, 10000u);
    EXPECT_LE(result.finalTrainLoss, 0.05);
}

TEST(TrainerTest, MaxEpochsBound)
{
    Rng rng(9);
    Mlp net(1, {LayerSpec{2, Activation::tanh()},
                LayerSpec{1, Activation::identity()}},
            InitRule::SmallUniform, rng);
    Matrix x{{0}, {1}}, y{{0}, {1}};
    TrainOptions opts;
    opts.maxEpochs = 17;
    opts.targetLoss = 0.0; // disabled
    Trainer trainer(opts);
    Rng shuffle(10);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_EQ(result.epochs, 17u);
    EXPECT_FALSE(result.hitTargetLoss);
}

TEST(TrainerTest, HistoryRecordedAndDecreasingOverall)
{
    Rng rng(11);
    Mlp net(1, {LayerSpec{4, Activation::tanh()},
                LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    Matrix x{{-1}, {0}, {1}}, y{{1}, {0}, {1}};
    TrainOptions opts;
    opts.maxEpochs = 500;
    opts.targetLoss = 0.0;
    opts.recordHistory = true;
    Trainer trainer(opts);
    Rng shuffle(12);
    const auto result = trainer.train(net, x, y, shuffle);
    ASSERT_EQ(result.trainLossHistory.size(), 500u);
    EXPECT_LT(result.trainLossHistory.back(),
              result.trainLossHistory.front());
}

TEST(TrainerTest, ValidationEarlyStoppingRestoresBestWeights)
{
    // Tiny training set + large capacity forces overfitting; early
    // stopping must cut training short and keep the best-validation
    // network.
    Rng rng(13);
    Mlp net(1,
            {LayerSpec{20, Activation::tanh()},
             LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    Rng noise(14);
    const std::size_t n = 8;
    Matrix x(n, 1), y(n, 1), vx(50, 1), vy(50, 1);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = noise.uniform(-1, 1);
        y(i, 0) = x(i, 0) + noise.normal(0, 0.4); // noisy line
    }
    for (std::size_t i = 0; i < 50; ++i) {
        vx(i, 0) = noise.uniform(-1, 1);
        vy(i, 0) = vx(i, 0);
    }
    TrainOptions opts;
    opts.learningRate = 0.05;
    opts.momentum = 0.9;
    opts.maxEpochs = 4000;
    opts.targetLoss = 0.0;
    opts.patience = 50;
    Trainer trainer(opts);
    Rng shuffle(15);
    const auto result = trainer.train(net, x, y, shuffle, &vx, &vy);
    EXPECT_TRUE(result.earlyStopped);
    EXPECT_LT(result.epochs, 4000u);
    // Restored network's validation loss equals the recorded best.
    const double val_loss = Trainer::evaluateLoss(net, vx, vy);
    EXPECT_NEAR(val_loss, result.bestValidationLoss, 1e-9);
}

TEST(TrainerTest, MiniBatchTrainingConverges)
{
    Rng rng(16);
    Mlp net(1, {LayerSpec{1, Activation::identity()}},
            InitRule::SmallUniform, rng);
    const std::size_t n = 64;
    Matrix x(n, 1), y(n, 1);
    Rng data(17);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = data.uniform(-1, 1);
        y(i, 0) = 3 * x(i, 0) - 1;
    }
    TrainOptions opts;
    opts.learningRate = 0.05;
    opts.momentum = 0.5;
    opts.batchSize = 8;
    opts.maxEpochs = 500;
    opts.targetLoss = 1e-8;
    Trainer trainer(opts);
    Rng shuffle(18);
    trainer.train(net, x, y, shuffle);
    EXPECT_NEAR(net.weights(0)(0, 0), 3.0, 0.02);
    EXPECT_NEAR(net.biases(0)[0], -1.0, 0.02);
}

TEST(TrainerTest, DeterministicGivenSeeds)
{
    const auto run = [](std::uint64_t seed) {
        Rng rng(seed);
        Mlp net(2,
                {LayerSpec{5, Activation::logistic(1.0)},
                 LayerSpec{1, Activation::identity()}},
                InitRule::SmallUniform, rng);
        Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
        Matrix y{{0}, {1}, {1}, {0}};
        TrainOptions opts;
        opts.maxEpochs = 200;
        opts.targetLoss = 0.0;
        Trainer trainer(opts);
        Rng shuffle(seed + 1);
        trainer.train(net, x, y, shuffle);
        return net.forward(Vector{0.3, 0.8})[0];
    };
    EXPECT_DOUBLE_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(TrainerTest, RmsPropConvergesOnXor)
{
    Rng rng(21);
    Mlp net(2,
            {LayerSpec{6, Activation::tanh()},
             LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    Matrix y{{0}, {1}, {1}, {0}};
    TrainOptions opts;
    opts.rmsprop = true;
    opts.learningRate = 0.01;
    opts.maxEpochs = 4000;
    opts.targetLoss = 1e-3;
    Trainer trainer(opts);
    Rng shuffle(22);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_LE(result.finalTrainLoss, 1e-3);
    EXPECT_NEAR(net.forward(Vector{1, 0})[0], 1.0, 0.15);
}

TEST(TrainerTest, RmsPropAndSgdDiffer)
{
    const auto run = [](bool rmsprop) {
        Rng rng(23);
        Mlp net(1, {LayerSpec{3, Activation::tanh()},
                    LayerSpec{1, Activation::identity()}},
                InitRule::Xavier, rng);
        Matrix x{{-1}, {0}, {1}}, y{{1}, {0}, {1}};
        TrainOptions opts;
        opts.rmsprop = rmsprop;
        opts.maxEpochs = 50;
        opts.targetLoss = 0.0;
        Trainer trainer(opts);
        Rng shuffle(24);
        trainer.train(net, x, y, shuffle);
        return net.forward({0.5})[0];
    };
    EXPECT_NE(run(true), run(false));
}

TEST(TrainerTest, EmptyTrainingSetIsNoOp)
{
    Rng rng(19);
    Mlp net(1, {LayerSpec{1, Activation::identity()}},
            InitRule::SmallUniform, rng);
    Matrix x(0, 1), y(0, 1);
    Trainer trainer(TrainOptions{});
    Rng shuffle(20);
    const auto result = trainer.train(net, x, y, shuffle);
    EXPECT_EQ(result.epochs, 0u);
}

TEST(TrainerTest, DivergenceThrowsWithResumableState)
{
    // A hostile learning rate drives the epoch loss non-finite within
    // an epoch or two; train() must report it as the typed, resumable
    // TrainDivergence rather than return poisoned weights.
    Rng rng(25);
    Mlp net(1,
            {LayerSpec{4, Activation::tanh()},
             LayerSpec{1, Activation::identity()}},
            InitRule::Xavier, rng);
    Matrix x(6, 1), y(6, 1);
    for (std::size_t i = 0; i < 6; ++i) {
        x(i, 0) = static_cast<double>(i);
        y(i, 0) = 50.0 * static_cast<double>(i);
    }
    TrainOptions opts;
    opts.learningRate = 1e12;
    opts.momentum = 0.0;
    opts.maxEpochs = 20;
    opts.targetLoss = 0.0;
    Trainer trainer(opts);
    Rng shuffle(26);
    try {
        trainer.train(net, x, y, shuffle);
        FAIL() << "hostile learning rate did not diverge";
    } catch (const wcnn::nn::TrainDivergence &e) {
        EXPECT_EQ(e.kind(), "train");
        EXPECT_FALSE(std::isfinite(e.loss()));
        EXPECT_LT(e.epoch(), 20u);
        EXPECT_EQ(e.partialResult().epochs, e.epoch());
        // The carried snapshot predates the blow-up: training can
        // resume from it with a saner rate.
        Mlp resumed = e.lastGood();
        for (double v : resumed.forward({0.5}))
            EXPECT_TRUE(std::isfinite(v));
        TrainOptions retry = opts;
        retry.learningRate = 1e-3;
        retry.maxEpochs = 5;
        Rng shuffle2(27);
        const auto result =
            Trainer(retry).train(resumed, x, y, shuffle2);
        EXPECT_EQ(result.epochs, 5u);
        EXPECT_TRUE(std::isfinite(result.finalTrainLoss));
    }
}
