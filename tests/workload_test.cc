/**
 * @file
 * Sanity tests for the calibrated workload demand model.
 */

#include <gtest/gtest.h>

#include "sim/workload.hh"

using namespace wcnn::sim;

TEST(WorkloadTest, DefaultsAreWellFormed)
{
    const WorkloadParams p = WorkloadParams::defaults();
    EXPECT_EQ(p.cores, 16u); // Table 1: 4 x 2 cores x HT
    EXPECT_GT(p.dbConnections, 0u);
    EXPECT_GT(p.backlogCap, 0u);
    EXPECT_GT(p.defaultBacklogCap, 0u);
    EXPECT_GE(p.serviceCov, 0.0);
    EXPECT_GE(p.networkLatency, 0.0);
}

TEST(WorkloadTest, MixSumsToOne)
{
    const WorkloadParams p = WorkloadParams::defaults();
    double total = 0.0;
    for (TxnClass cls : allTxnClasses)
        total += p.profile(cls).mix;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(WorkloadTest, DemandsArePositiveWhereUsed)
{
    const WorkloadParams p = WorkloadParams::defaults();
    for (TxnClass cls : allTxnClasses) {
        const TxnProfile &prof = p.profile(cls);
        EXPECT_GT(prof.cpuPre, 0.0) << txnClassName(cls);
        EXPECT_GT(prof.cpuPost, 0.0) << txnClassName(cls);
        EXPECT_GT(prof.dbDemand, 0.0) << txnClassName(cls);
        EXPECT_GT(prof.rtLimit, 0.0) << txnClassName(cls);
        if (prof.hasAuxHop) {
            EXPECT_GT(prof.auxCpu, 0.0) << txnClassName(cls);
            EXPECT_GT(prof.auxDb, 0.0) << txnClassName(cls);
        }
    }
}

TEST(WorkloadTest, OnlyDealerWriteClassesDispatchWorkItems)
{
    const WorkloadParams p = WorkloadParams::defaults();
    EXPECT_FALSE(p.profile(TxnClass::Manufacturing).hasAuxHop);
    EXPECT_TRUE(p.profile(TxnClass::DealerPurchase).hasAuxHop);
    EXPECT_TRUE(p.profile(TxnClass::DealerManage).hasAuxHop);
    EXPECT_FALSE(p.profile(TxnClass::DealerBrowse).hasAuxHop);
}

TEST(WorkloadTest, OfferedCpuLoadIsFeasibleAtPaperOperatingPoint)
{
    // At injection 560/s the raw CPU demand must fit comfortably
    // under 16 cores, or the whole slice would be CPU-saturated and
    // the thread-pool knees invisible.
    const WorkloadParams p = WorkloadParams::defaults();
    double rate_per_class = 560.0 / 4.0;
    double cpu = 0.0;
    for (TxnClass cls : allTxnClasses) {
        const TxnProfile &prof = p.profile(cls);
        cpu += rate_per_class * (prof.cpuPre + prof.cpuPost);
        if (prof.hasAuxHop)
            cpu += rate_per_class * prof.auxCpu;
    }
    EXPECT_LT(cpu, 0.8 * static_cast<double>(p.cores));
    EXPECT_GT(cpu, 0.1 * static_cast<double>(p.cores));
}

TEST(WorkloadTest, TxnClassNamesAreDistinct)
{
    std::set<std::string> names;
    for (TxnClass cls : allTxnClasses)
        names.insert(txnClassName(cls));
    EXPECT_EQ(names.size(), numTxnClasses);
}
