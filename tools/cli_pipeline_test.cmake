# End-to-end CLI smoke: collect (analytic) -> fit -> predict ->
# surface -> recommend, in a scratch directory.
set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_pipeline_work)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})

function(run)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${work}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
    endif()
endfunction()

run(${WCNN} collect --out s.csv --samples 40 --analytic --seed 3)
run(${WCNN} fit --data s.csv --out m.nn --units 10 --cv --tag smoke)
run(${WCNN} predict --model m.nn --config 560,10,16,18)
run(${WCNN} surface --model m.nn --indicator 1)
run(${WCNN} recommend --model m.nn --data s.csv --top 3)

# Streaming predict: two config lines in, two CSV prediction lines out.
file(WRITE ${work}/configs.txt "560,10,16,18\n560,4,16,14\n")
execute_process(COMMAND ${WCNN} predict --model m.nn --stdin
                INPUT_FILE ${work}/configs.txt
                WORKING_DIRECTORY ${work}
                RESULT_VARIABLE rc OUTPUT_VARIABLE stream_out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "predict --stdin failed (${rc}): ${err}")
endif()
string(REGEX MATCHALL "\n" stream_newlines "${stream_out}")
list(LENGTH stream_newlines stream_lines)
if(NOT stream_lines EQUAL 2)
    message(FATAL_ERROR
            "predict --stdin: expected 2 lines, got ${stream_lines}:\n"
            "${stream_out}")
endif()

# Serving smoke: a bundle-loading server answers and drains cleanly.
run(${WCNN} bench-serve --model m.nn --clients 2 --requests 20
    --pipeline 4 --max-batch 16)
message(STATUS "cli pipeline OK")
