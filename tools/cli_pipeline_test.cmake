# End-to-end CLI smoke: collect (analytic) -> fit -> predict ->
# surface -> recommend, in a scratch directory.
set(work ${CMAKE_CURRENT_BINARY_DIR}/cli_pipeline_work)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})

function(run)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${work}
                    RESULT_VARIABLE rc OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
    endif()
endfunction()

run(${WCNN} collect --out s.csv --samples 40 --analytic --seed 3)
run(${WCNN} fit --data s.csv --out m.nn --units 10 --cv)
run(${WCNN} predict --model m.nn --config 560,10,16,18)
run(${WCNN} surface --model m.nn --indicator 1)
run(${WCNN} recommend --model m.nn --data s.csv --top 3)
message(STATUS "cli pipeline OK")
