# CTest driver for the repo-specific lint (tools/wcnn_lint.py).
# Invoked as:
#   cmake -DLINT_SCRIPT=<path> -P lint_test.cmake
# Fails the test when the lint reports violations. Skips (with a clear
# message) when no Python interpreter is available rather than hiding
# the gate behind a silent pass.

find_program(WCNN_PYTHON NAMES python3 python)
if(NOT WCNN_PYTHON)
    message(FATAL_ERROR "wcnn_lint: no python3 interpreter found on PATH")
endif()

execute_process(
    COMMAND ${WCNN_PYTHON} ${LINT_SCRIPT}
    RESULT_VARIABLE lint_result
    OUTPUT_VARIABLE lint_output
    ERROR_VARIABLE lint_errors
)
message(STATUS "${lint_output}")
if(NOT lint_result EQUAL 0)
    message(FATAL_ERROR "wcnn_lint failed:\n${lint_output}${lint_errors}")
endif()
