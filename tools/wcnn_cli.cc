/**
 * @file
 * wcnn — command-line front end to the workload-characterization
 * library. Subcommands cover the full paper pipeline on files, so the
 * method can be scripted without writing C++:
 *
 *   wcnn simulate  --web 18 --default 10           one simulator run
 *   wcnn collect   --samples 64 --out s.csv        build a sample set
 *   wcnn fit       --data s.csv --out m.bundle --cv   train + Table 2
 *   wcnn predict   --model m.bundle --config 560,10,16,18
 *   wcnn predict   --model m.bundle --stdin        stream CSV configs
 *   wcnn surface   --model m.bundle --indicator 1  slice + taxonomy
 *   wcnn recommend --model m.bundle --data s.csv   top configurations
 *   wcnn serve     --model m.bundle --port 7071    inference server
 *   wcnn bench-serve --model m.bundle              serving benchmark
 *
 * fit writes a ModelBundle artifact (network + standardizers +
 * schema); predict/surface/recommend/serve all load through the same
 * bundle path, so legacy `wcnn-nn-model` / bare `wcnn-mlp` files keep
 * working with a deprecation warning on stderr.
 *
 * Every subcommand prints --help with its flags.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hh"
#include "core/failpoint.hh"
#include "core/telemetry.hh"
#include "data/csv.hh"
#include "lifecycle/controller.hh"
#include "lifecycle/host.hh"
#include "lifecycle/journal.hh"
#include "lifecycle/replay.hh"
#include "model/classify.hh"
#include "model/cross_validation.hh"
#include "model/nn_model.hh"
#include "model/recommender.hh"
#include "model/surface.hh"
#include "model/study.hh"
#include "numeric/kernels/policy.hh"
#include "numeric/rng.hh"
#include "scenario/library.hh"
#include "serve/bundle.hh"
#include "serve/engine.hh"
#include "serve/loadgen.hh"
#include "sim/sample_space.hh"

namespace {

using namespace wcnn;

/** Minimal --key value / --flag parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                std::fprintf(stderr, "unexpected argument: %s\n",
                             key.c_str());
                std::exit(2);
            }
            key = key.substr(2);
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values[key] = argv[++i];
            } else {
                values[key] = "";
            }
        }
    }

    bool has(const std::string &key) const
    {
        return values.count(key) > 0;
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        const auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    double
    num(const std::string &key, double fallback) const
    {
        const auto it = values.find(key);
        return it == values.end() ? fallback
                                  : std::stod(it->second);
    }

  private:
    std::map<std::string, std::string> values;
};

/** Parse "a,b,c,d" into a vector. */
numeric::Vector
parseCsvNumbers(const std::string &text)
{
    numeric::Vector out;
    std::istringstream is(text);
    std::string field;
    while (std::getline(is, field, ','))
        out.push_back(std::stod(field));
    return out;
}

/** --scenario accepts a library name or a path to a .wcnn file. */
scenario::ResolvedScenario
loadScenarioArg(const std::string &arg)
{
    const bool is_path = arg.find('/') != std::string::npos ||
                         (arg.size() > 5 &&
                          arg.compare(arg.size() - 5, 5, ".wcnn") == 0);
    return is_path ? scenario::loadFile(arg) : scenario::loadNamed(arg);
}

sim::ThreeTierConfig
configFromArgs(const Args &args, const sim::ThreeTierConfig &base)
{
    sim::ThreeTierConfig cfg = base;
    cfg.injectionRate = args.num("inj", cfg.injectionRate);
    cfg.defaultQueue = args.num("default", cfg.defaultQueue);
    cfg.mfgQueue = args.num("mfg", cfg.mfgQueue);
    cfg.webQueue = args.num("web", cfg.webQueue);
    cfg.seed = static_cast<std::uint64_t>(args.num("seed", 1));
    cfg.warmup = args.num("warmup", cfg.warmup);
    cfg.measure = args.num("measure", cfg.measure);
    if (args.has("closed")) {
        cfg.loadModel = sim::LoadModel::Closed;
        cfg.population = static_cast<std::size_t>(args.num(
            "population", static_cast<double>(cfg.population)));
        cfg.thinkTime = args.num("think", cfg.thinkTime);
    }
    return cfg;
}

int
cmdSimulate(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn simulate [--scenario NAME|FILE.wcnn] [--inj R] "
                  "[--default N] [--mfg N]\n"
                  "              [--web N] [--seed S] [--warmup S] "
                  "[--measure S]\n"
                  "              [--closed --population N --think S]\n"
                  "\n"
                  "--scenario starts from a scenario's operating point "
                  "(arrival process,\n"
                  "pools, demands); the other flags override on top.");
        return 0;
    }
    sim::ThreeTierConfig base;
    sim::WorkloadParams params = sim::WorkloadParams::defaults();
    if (args.has("scenario")) {
        const scenario::ResolvedScenario rs =
            loadScenarioArg(args.str("scenario", ""));
        base = rs.base;
        params = rs.params;
    }
    const sim::ThreeTierConfig cfg = configFromArgs(args, base);
    sim::RunDiagnostics diag;
    const sim::PerfSample sample =
        sim::simulateThreeTier(cfg, params, &diag);
    const auto names = sim::PerfSample::indicatorNames();
    const auto values = sample.toVector();
    for (std::size_t j = 0; j < names.size(); ++j)
        std::printf("%-22s %.4f\n", names[j].c_str(), values[j]);
    std::printf("%-22s %llu\n", "requests",
                static_cast<unsigned long long>(diag.injected));
    std::printf("%-22s %zu\n", "events",
                diag.eventsProcessed);
    return 0;
}

int
cmdCollect(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn collect --out FILE.csv [--samples N] "
                  "[--design lhs|random|grid|factorial]\n"
                  "             [--scenario NAME|FILE.wcnn] "
                  "[--replicates N] [--seed S] [--analytic]\n"
                  "             [--retries N] [--quarantine]\n"
                  "\n"
                  "  --scenario      design over the scenario's space "
                  "and run its workload\n"
                  "  --retries N     attempts per replicate for "
                  "transient sim faults (default 1)\n"
                  "  --quarantine    drop configurations whose "
                  "retries are exhausted instead of aborting");
        return 0;
    }
    const std::string out = args.str("out", "");
    if (out.empty()) {
        std::fputs("collect: --out FILE.csv is required\n", stderr);
        return 2;
    }
    const std::size_t n =
        static_cast<std::size_t>(args.num("samples", 64));
    const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
    const std::string design = args.str("design", "lhs");

    sim::SampleSpace space = sim::SampleSpace::paperLike();
    sim::WorkloadParams params = sim::WorkloadParams::defaults();
    std::unique_ptr<scenario::ResolvedScenario> rs;
    if (args.has("scenario")) {
        rs = std::make_unique<scenario::ResolvedScenario>(
            loadScenarioArg(args.str("scenario", "")));
        space = rs->space;
        params = rs->params;
    }
    numeric::Rng rng(seed);
    std::vector<sim::ThreeTierConfig> configs;
    if (design == "lhs") {
        configs = sim::latinHypercubeDesign(space, n, rng);
    } else if (design == "random") {
        configs = sim::randomDesign(space, n, rng);
    } else if (design == "grid") {
        const auto per_axis = static_cast<std::size_t>(std::max(
            2.0, std::floor(std::pow(static_cast<double>(n), 0.25))));
        configs = sim::gridDesign(
            space, std::array<std::size_t, 4>{per_axis, per_axis,
                                              per_axis, per_axis});
    } else if (design == "factorial") {
        configs = sim::factorialDesign(space, n > 16 ? n - 16 : 1);
    } else {
        std::fprintf(stderr, "collect: unknown design '%s'\n",
                     design.c_str());
        return 2;
    }

    if (rs)
        scenario::applyBase(*rs, configs);

    data::Dataset ds;
    if (args.has("analytic")) {
        ds = sim::collectAnalytic(configs, params);
    } else {
        const auto replicates =
            static_cast<std::size_t>(args.num("replicates", 3));
        std::printf("simulating %zu configurations x %zu "
                    "replicates...\n",
                    configs.size(), replicates);
        sim::CollectOptions collect;
        collect.maxAttempts =
            static_cast<std::size_t>(args.num("retries", 1));
        collect.quarantine = args.has("quarantine");
        sim::CollectReport report;
        ds = sim::collectSimulated(configs, params, seed, replicates,
                                   collect, &report);
        if (report.retries() > 0 || report.dropped() > 0) {
            std::printf("collection: %zu retried attempts, %zu "
                        "configurations dropped\n",
                        report.retries(), report.dropped());
        }
    }
    data::saveCsv(ds, out);
    std::printf("wrote %zu samples to %s\n", ds.size(), out.c_str());
    return 0;
}

int
cmdFit(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn fit --data FILE.csv --out MODEL.bundle "
                  "[--units N] [--threshold T] [--cv] [--seed S] "
                  "[--tag LABEL]\n"
                  "wcnn fit --scenario NAME|FILE.wcnn --out "
                  "MODEL.bundle [--samples N]\n"
                  "         [--replicates N] [--threads N] [--tune] "
                  "[--units N] [--threshold T]\n"
                  "\n"
                  "With --scenario the full study pipeline runs "
                  "(collect under the scenario,\n"
                  "cross-validate, fit) instead of loading a CSV.");
        return 0;
    }
    const std::string data_path = args.str("data", "");
    const std::string out = args.str("out", "");
    if (out.empty() ||
        (data_path.empty() && !args.has("scenario"))) {
        std::fputs("fit: --out and (--data | --scenario) are "
                   "required\n",
                   stderr);
        return 2;
    }

    if (data_path.empty()) {
        const scenario::ResolvedScenario rs =
            loadScenarioArg(args.str("scenario", ""));
        model::StudyOptions study = scenario::studyOptionsFor(rs);
        study.designSamples =
            static_cast<std::size_t>(args.num("samples", 64));
        study.replicates =
            static_cast<std::size_t>(args.num("replicates", 3));
        study.seed = static_cast<std::uint64_t>(args.num("seed", 2006));
        study.threads =
            static_cast<std::size_t>(args.num("threads", 1));
        study.tune = args.has("tune");
        study.nn.hiddenUnits = {
            static_cast<std::size_t>(args.num("units", 16))};
        study.nn.train.targetLoss = args.num("threshold", 0.02);
        std::printf("fit: running study for scenario '%s' (%zu "
                    "samples x %zu replicates)\n",
                    rs.name.c_str(), study.designSamples,
                    study.replicates);
        const model::StudyResult result = model::runStudy(study);
        std::fputs(model::formatTable(result.cv).c_str(), stdout);
        std::printf("overall accuracy: %.1f %%\n",
                    100.0 * result.cv.overallAccuracy());
        const serve::ModelBundle bundle = serve::ModelBundle::fromModel(
            result.finalModel, result.dataset.inputs(),
            result.dataset.outputs(), args.str("tag", rs.name));
        bundle.save(out);
        std::printf("trained %s on %zu samples -> %s\n",
                    result.finalModel.network().describe().c_str(),
                    result.dataset.size(), out.c_str());
        return 0;
    }
    const data::Dataset ds = data::loadCsv(data_path);
    model::NnModelOptions opts;
    opts.hiddenUnits = {
        static_cast<std::size_t>(args.num("units", 16))};
    opts.train.targetLoss = args.num("threshold", 0.02);
    opts.seed = static_cast<std::uint64_t>(args.num("seed", 42));

    if (args.has("cv")) {
        model::CvOptions cv;
        cv.keepPredictions = false;
        const auto result = model::crossValidate(
            [&opts] { return std::make_unique<model::NnModel>(opts); },
            ds, cv);
        std::fputs(model::formatTable(result).c_str(), stdout);
        std::printf("overall accuracy: %.1f %%\n",
                    100.0 * result.overallAccuracy());
    }

    model::NnModel mdl(opts);
    mdl.fit(ds);
    // The artifact is a ModelBundle: weights + standardizer moments +
    // column schema, so every consumer standardizes identically.
    const serve::ModelBundle bundle = serve::ModelBundle::fromModel(
        mdl, ds.inputs(), ds.outputs(), args.str("tag", "untagged"));
    bundle.save(out);
    std::printf("trained %s on %zu samples -> %s\n",
                mdl.network().describe().c_str(), ds.size(),
                out.c_str());
    return 0;
}

/** Load any model artifact, surfacing the deprecation note. */
serve::ModelBundle
loadBundle(const char *cmd, const std::string &path)
{
    serve::ModelBundle bundle = serve::ModelBundle::load(path);
    if (!bundle.loadNote().empty())
        std::fprintf(stderr, "%s: %s\n", cmd,
                     bundle.loadNote().c_str());
    return bundle;
}

int
cmdPredict(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn predict --model MODEL.bundle "
                  "(--config inj,default,mfg,web | --stdin)\n"
                  "\n"
                  "  --stdin    read one CSV configuration per line "
                  "and write one CSV\n"
                  "             prediction line per input line");
        return 0;
    }
    const std::string model_path = args.str("model", "");
    const std::string config = args.str("config", "");
    if (model_path.empty() || (config.empty() && !args.has("stdin"))) {
        std::fputs(
            "predict: --model and (--config | --stdin) are required\n",
            stderr);
        return 2;
    }
    const serve::ModelBundle mdl = loadBundle("predict", model_path);

    if (args.has("stdin")) {
        // Streaming mode: the same load path the server uses, without
        // holding a process per prediction. Output precision is
        // round-trip so piping into a file loses nothing.
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(std::cin, line)) {
            ++line_no;
            if (line.empty())
                continue;
            const numeric::Vector x = parseCsvNumbers(line);
            if (x.size() != mdl.inputDim()) {
                std::fprintf(stderr,
                             "predict: line %zu has %zu fields, "
                             "model expects %zu\n",
                             line_no, x.size(), mdl.inputDim());
                return 1;
            }
            const numeric::Vector y = mdl.predict(x);
            for (std::size_t j = 0; j < y.size(); ++j)
                std::printf(j + 1 < y.size() ? "%.17g," : "%.17g\n",
                            y[j]);
        }
        return 0;
    }

    const numeric::Vector x = parseCsvNumbers(config);
    if (x.size() != mdl.inputDim()) {
        std::fprintf(stderr,
                     "predict: --config needs %zu numbers\n",
                     mdl.inputDim());
        return 2;
    }
    const numeric::Vector y = mdl.predict(x);
    const auto &names = mdl.outputNames();
    for (std::size_t j = 0; j < y.size(); ++j) {
        std::printf("%-22s %.4f\n",
                    j < names.size() ? names[j].c_str() : "y",
                    y[j]);
    }
    return 0;
}

int
cmdSurface(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn surface --model MODEL.bundle [--indicator K] "
                  "[--inj R] [--mfg N]");
        return 0;
    }
    const std::string model_path = args.str("model", "");
    if (model_path.empty()) {
        std::fputs("surface: --model is required\n", stderr);
        return 2;
    }
    const serve::ModelBundle mdl = loadBundle("surface", model_path);

    model::SurfaceRequest req;
    req.axisA = 1;
    req.axisB = 3;
    req.indicator =
        static_cast<std::size_t>(args.num("indicator", 1));
    req.fixed = {args.num("inj", 560.0), 0.0, args.num("mfg", 16.0),
                 0.0};
    req.loA = 0.0;
    req.hiA = 20.0;
    req.loB = 14.0;
    req.hiB = 20.0;
    req.pointsA = 11;
    req.pointsB = 7;

    data::Dataset schema(mdl.inputNames(), mdl.outputNames());
    const auto grid = model::sweepSurface(mdl, req, schema);
    std::printf("%s  [%s]\n", grid.sliceLabel.c_str(),
                grid.indicatorName.c_str());
    std::fputs(grid.toText().c_str(), stdout);
    std::fputs(grid.toHeatmap().c_str(), stdout);
    std::printf("classification: %s\n",
                model::classifySurface(grid).describe().c_str());
    return 0;
}

int
cmdRecommend(const Args &args)
{
    if (args.has("help")) {
        std::puts("wcnn recommend --model MODEL.bundle --data FILE.csv "
                  "[--top K] [--inj R]\n"
                  "               [--scenario NAME|FILE.wcnn]\n"
                  "\n"
                  "--scenario searches the scenario's configuration "
                  "space (axis ranges from\n"
                  "its sample space) instead of the paper's default "
                  "grid; --inj still pins\n"
                  "the injection rate (default: the scenario's "
                  "midpoint).");
        return 0;
    }
    const std::string model_path = args.str("model", "");
    const std::string data_path = args.str("data", "");
    if (model_path.empty() || data_path.empty()) {
        std::fputs("recommend: --model and --data are required\n",
                   stderr);
        return 2;
    }
    const serve::ModelBundle mdl = loadBundle("recommend", model_path);
    const data::Dataset ds = data::loadCsv(data_path);
    const auto k = static_cast<std::size_t>(args.num("top", 5));

    // Default axes: the paper's exploration grid. With --scenario the
    // axes come from that scenario's sample space instead, one grid
    // point per integer step of the queue axes.
    std::vector<model::SearchAxis> axes;
    if (args.has("scenario")) {
        const scenario::ResolvedScenario rs =
            loadScenarioArg(args.str("scenario", ""));
        const sim::SampleSpace &space = rs.space;
        const double inj = args.num(
            "inj",
            0.5 * (space.injectionRate.lo + space.injectionRate.hi));
        const auto queue_axis = [](const sim::ParameterRange &range) {
            const auto points = static_cast<std::size_t>(
                range.hi - range.lo + 1.0);
            return model::SearchAxis{range.lo, range.hi,
                                     points > 1 ? points : 1};
        };
        axes = {model::SearchAxis{inj, inj, 1},
                queue_axis(space.defaultQueue),
                queue_axis(space.mfgQueue), queue_axis(space.webQueue)};
    } else {
        const double inj = args.num("inj", 560.0);
        axes = {model::SearchAxis{inj, inj, 1},
                model::SearchAxis{0, 20, 21},
                model::SearchAxis{12, 24, 13},
                model::SearchAxis{14, 20, 7}};
    }
    model::Recommender rec(mdl, axes);
    const auto top =
        rec.recommend(model::ScoringFunction::forWorkload(ds), k);
    std::printf("%4s %28s %12s %12s\n", "#",
                "(inj, default, mfg, web)", "tput", "score");
    for (std::size_t i = 0; i < top.size(); ++i) {
        const auto &r = top[i];
        std::printf("%4zu      (%.0f, %2.0f, %2.0f, %2.0f)%17.1f "
                    "%12.3f\n",
                    i + 1, r.config[0], r.config[1], r.config[2],
                    r.config[3], r.predicted[4], r.score);
    }
    return 0;
}

serve::ServeOptions
serveOptionsFromArgs(const Args &args)
{
    serve::ServeOptions opts;
    opts.host = args.str("host", opts.host);
    opts.port = static_cast<std::uint16_t>(args.num("port", 0));
    opts.maxConnections = static_cast<std::size_t>(
        args.num("max-conn", static_cast<double>(opts.maxConnections)));
    opts.idleTimeoutMs = static_cast<int>(
        args.num("idle-ms", opts.idleTimeoutMs));
    opts.batch.maxBatch = static_cast<std::size_t>(args.num(
        "max-batch", static_cast<double>(opts.batch.maxBatch)));
    opts.batch.maxDelayUs = static_cast<std::int64_t>(args.num(
        "max-delay-us", static_cast<double>(opts.batch.maxDelayUs)));
    opts.batch.threads = static_cast<std::size_t>(args.num(
        "threads", static_cast<double>(opts.batch.threads)));
    opts.cache.capacity = static_cast<std::size_t>(args.num(
        "cache", static_cast<double>(opts.cache.capacity)));
    opts.shards = static_cast<std::size_t>(
        args.num("shards", static_cast<double>(opts.shards)));
    opts.acceptors = static_cast<std::size_t>(
        args.num("acceptors", static_cast<double>(opts.acceptors)));
    return opts;
}

/** Lifecycle knobs shared by `serve --lifecycle` and
 *  `lifecycle replay`; every knob has the library default. */
lifecycle::LifecycleOptions
lifecycleOptionsFromArgs(const Args &args)
{
    lifecycle::LifecycleOptions opts;
    opts.drift.window = static_cast<std::size_t>(args.num(
        "drift-window", static_cast<double>(opts.drift.window)));
    opts.drift.threshold =
        args.num("drift-threshold", opts.drift.threshold);
    opts.drift.patience = static_cast<std::size_t>(args.num(
        "drift-patience", static_cast<double>(opts.drift.patience)));
    opts.retrain.seed = static_cast<std::uint64_t>(
        args.num("seed", static_cast<double>(opts.retrain.seed)));
    opts.retrain.model.train.maxEpochs =
        static_cast<std::size_t>(args.num(
            "epochs",
            static_cast<double>(opts.retrain.model.train.maxEpochs)));
    opts.retrainWindow = static_cast<std::size_t>(args.num(
        "retrain-window", static_cast<double>(opts.retrainWindow)));
    opts.shadowWindow = static_cast<std::size_t>(args.num(
        "shadow-window", static_cast<double>(opts.shadowWindow)));
    opts.historyLimit = static_cast<std::size_t>(args.num(
        "history", static_cast<double>(opts.historyLimit)));
    opts.threads = static_cast<std::size_t>(args.num(
        "lifecycle-threads", static_cast<double>(opts.threads)));
    return opts;
}

int
cmdServe(const Args &args)
{
    if (args.has("help")) {
        std::puts(
            "wcnn serve --model MODEL.bundle [--port P] [--host H]\n"
            "           [--engine threaded|epoll] [--shards N] "
            "[--acceptors N]\n"
            "           [--max-batch N] [--max-delay-us U] "
            "[--threads N]\n"
            "           [--cache N] [--max-conn N] [--idle-ms MS]\n"
            "           [--duration SECONDS]\n"
            "           [--lifecycle] [--journal FILE] "
            "[lifecycle knobs]\n"
            "\n"
            "Serves predictions over TCP (binary frames or JSON "
            "lines on one port).\n"
            "--engine picks the front end: the threaded reference "
            "server or the\n"
            "epoll reactor with per-core shards (identical wire "
            "behaviour; see\n"
            "tests/serve_equivalence_test.cc). --acceptors > 1 runs "
            "that many\n"
            "SO_REUSEPORT accept loops (epoll engine only).\n"
            "--lifecycle attaches the model-lifecycle controller to "
            "the observation\n"
            "stream: drift detection, shadow retraining and gated "
            "promotion driven\n"
            "by client `observe` frames. --journal appends every "
            "observation to FILE\n"
            "for offline `wcnn lifecycle replay`. Knobs: "
            "--drift-window, \n"
            "--drift-threshold, --drift-patience, --retrain-window, "
            "--shadow-window,\n"
            "--history, --seed, --epochs, --lifecycle-threads.\n"
            "Runs until stdin closes, or for --duration seconds; in "
            "foreground mode\n"
            "a line reading `rollback` re-promotes the previous "
            "bundle.");
        return 0;
    }
    const std::string model_path = args.str("model", "");
    if (model_path.empty()) {
        std::fputs("serve: --model is required\n", stderr);
        return 2;
    }
    auto bundle = std::make_shared<serve::ModelBundle>(
        loadBundle("serve", model_path));

    const serve::EngineKind engine =
        serve::parseEngineKind(args.str("engine", "threaded"));
    const std::unique_ptr<serve::ServerEngine> server_ptr =
        serve::makeServer(engine, serveOptionsFromArgs(args));
    serve::ServerEngine &server = *server_ptr;
    server.deploy(bundle);

    // --lifecycle: hang the controller off the observation sink so
    // every `observe` frame feeds drift detection / shadow retraining.
    // The journal writer (if any) sees each record first, so an
    // offline `lifecycle replay` of the journal reproduces tonight's
    // decisions bit-for-bit.
    std::unique_ptr<lifecycle::EngineHost> host;
    std::unique_ptr<lifecycle::LifecycleController> controller;
    std::unique_ptr<lifecycle::JournalWriter> journal;
    if (args.has("lifecycle")) {
        host = std::make_unique<lifecycle::EngineHost>(server);
        controller = std::make_unique<lifecycle::LifecycleController>(
            *host, lifecycleOptionsFromArgs(args));
        const std::string journal_path = args.str("journal", "");
        if (!journal_path.empty())
            journal = std::make_unique<lifecycle::JournalWriter>(
                journal_path, bundle->inputDim(), bundle->outputDim());
        lifecycle::LifecycleController &ctl = *controller;
        lifecycle::JournalWriter *jw = journal.get();
        server.setObservationSink(
            [&ctl, jw](const numeric::Vector &x,
                       const numeric::Vector &predicted,
                       const numeric::Vector &observed) {
                lifecycle::ObservationRecord rec{0, x, predicted,
                                                 observed};
                if (jw != nullptr)
                    jw->append(rec);
                ctl.record(rec);
            });
    }

    server.start();
    std::printf("serving %s on %s:%u (engine %s, max-batch %zu, "
                "cache %zu)\n",
                bundle->describe().c_str(),
                server.options().host.c_str(), server.port(),
                serve::engineName(engine),
                server.options().batch.maxBatch,
                server.options().cache.capacity);
    std::fflush(stdout);

    const double duration = args.num("duration", 0.0);
    if (duration > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(duration));
    } else {
        // Foreground mode: drain stdin; EOF (or a closed pipe) is the
        // shutdown signal, so `echo | wcnn serve ...` exits cleanly.
        // With --lifecycle, a line reading "rollback" restores the
        // previously displaced bundle.
        std::string line;
        while (std::getline(std::cin, line)) {
            if (controller != nullptr && line == "rollback") {
                if (controller->rollback())
                    std::printf("rollback: restored bundle, now v%llu\n",
                                static_cast<unsigned long long>(
                                    server.version()));
                else
                    std::puts("rollback: history is empty");
                std::fflush(stdout);
            }
        }
    }
    server.stop();

    const auto stats = server.stats();
    const auto batch = server.batcherStats();
    const auto cache = server.cacheStats();
    std::printf("served %llu requests (%llu errors) over %llu "
                "connections; %llu batches, max batch %zu rows; "
                "cache hit ratio %.3f\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.errors),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(batch.batches),
                batch.maxBatchRows, cache.hitRatio());
    if (controller != nullptr) {
        const lifecycle::LifecycleStats ls = controller->stats();
        std::printf("lifecycle: %llu records, %llu drifts, %llu "
                    "retrains, %llu promotions, %llu rejections, "
                    "%llu rollbacks (digest %s, v%llu)\n",
                    static_cast<unsigned long long>(ls.records),
                    static_cast<unsigned long long>(ls.drifts),
                    static_cast<unsigned long long>(ls.retrains),
                    static_cast<unsigned long long>(ls.promotions),
                    static_cast<unsigned long long>(ls.rejections),
                    static_cast<unsigned long long>(ls.rollbacks),
                    controller->digest().c_str(),
                    static_cast<unsigned long long>(server.version()));
    }
    return 0;
}

int
cmdBenchServe(const Args &args)
{
    if (args.has("help")) {
        std::puts(
            "wcnn bench-serve --model MODEL.bundle [--clients N] "
            "[--requests N]\n"
            "                 [--pipeline N] [--max-batch N] "
            "[--cache N] [--key-pool N]\n"
            "                 [--engine threaded|epoll]\n"
            "\n"
            "Measures TCP serving throughput: per-request baseline "
            "vs micro-batched,\n"
            "and (with --cache) a cache-warm pass.");
        return 0;
    }
    const std::string model_path = args.str("model", "");
    if (model_path.empty()) {
        std::fputs("bench-serve: --model is required\n", stderr);
        return 2;
    }
    auto bundle = std::make_shared<serve::ModelBundle>(
        loadBundle("bench-serve", model_path));

    serve::LoadgenOptions load;
    load.clients = static_cast<std::size_t>(args.num("clients", 8));
    load.requestsPerClient =
        static_cast<std::size_t>(args.num("requests", 200));
    load.pipeline = static_cast<std::size_t>(args.num("pipeline", 16));
    load.seed = static_cast<std::uint64_t>(args.num("seed", 42));

    const auto max_batch =
        static_cast<std::size_t>(args.num("max-batch", 64));
    const auto cache_capacity =
        static_cast<std::size_t>(args.num("cache", 0));

    const serve::EngineKind engine =
        serve::parseEngineKind(args.str("engine", "threaded"));
    const auto run = [&](const char *label, std::size_t batch_rows,
                         bool coalesce, std::size_t cache_cap,
                         std::size_t key_pool) {
        serve::ServeOptions opts;
        opts.maxConnections = load.clients + 4;
        opts.batch.maxBatch = batch_rows;
        opts.coalesceFrames = coalesce;
        opts.cache.capacity = cache_cap;
        const std::unique_ptr<serve::ServerEngine> server_ptr =
            serve::makeServer(engine, std::move(opts));
        serve::ServerEngine &server = *server_ptr;
        server.deploy(bundle);
        server.start();
        serve::LoadgenOptions shaped = load;
        shaped.keyPoolSize = key_pool;
        const serve::LoadgenReport report = serve::runTcpLoad(
            "127.0.0.1", server.port(), bundle->inputDim(), shaped);
        server.stop();
        std::printf("%-14s %9.0f req/s   p50 %8.1f us   p99 %8.1f us"
                    "   errors %zu\n",
                    label, report.throughputRps, report.p50Us,
                    report.p99Us, report.errors);
        std::fflush(stdout);
        return report;
    };

    std::printf("bench-serve: engine %s, %zu clients x %zu requests, "
                "pipeline %zu\n",
                serve::engineName(engine), load.clients,
                load.requestsPerClient, load.pipeline);
    const auto baseline = run("per-request", 1, false, 0, 0);
    const auto batched = run("micro-batched", max_batch, true, 0, 0);
    if (baseline.throughputRps > 0.0)
        std::printf("micro-batching speedup: %.2fx\n",
                    batched.throughputRps / baseline.throughputRps);
    if (cache_capacity > 0) {
        const auto key_pool = static_cast<std::size_t>(
            args.num("key-pool", 64));
        const auto cached = run("cached", max_batch, true,
                                cache_capacity, key_pool);
        if (batched.throughputRps > 0.0)
            std::printf("cache speedup over micro-batched: %.2fx\n",
                        cached.throughputRps / batched.throughputRps);
    }
    return 0;
}

int
cmdScenario(const Args &args)
{
    if (args.has("help")) {
        std::puts(
            "wcnn scenario --list\n"
            "wcnn scenario --show NAME|FILE.wcnn\n"
            "wcnn scenario --check NAME|FILE.wcnn\n"
            "\n"
            "  --list    every shipped scenario with its arrival "
            "family and description\n"
            "  --show    canonical form plus the resolved operating "
            "point\n"
            "  --check   parse + resolve, reporting typed diagnostics "
            "(exit 1 on fault)");
        std::printf("\nScenario files live in %s; WCNN_SCENARIO_DIR "
                    "overrides.\n",
                    scenario::libraryDir().c_str());
        return 0;
    }
    if (args.has("list")) {
        for (const std::string &name : scenario::libraryNames()) {
            const scenario::ResolvedScenario rs =
                scenario::loadNamed(name);
            std::printf("%-24s %-8s %s\n", name.c_str(),
                        sim::arrivalKindName(rs.base.arrival.kind),
                        rs.description.c_str());
        }
        return 0;
    }
    if (args.has("show")) {
        const std::string arg = args.str("show", "");
        const bool is_path =
            arg.find('/') != std::string::npos ||
            (arg.size() > 5 &&
             arg.compare(arg.size() - 5, 5, ".wcnn") == 0);
        const std::string path =
            is_path ? arg
                    : scenario::libraryDir() + "/" + arg + ".wcnn";
        const scenario::ResolvedScenario rs = scenario::loadFile(path);
        std::fputs(scenario::canonicalForm(path).c_str(), stdout);
        std::printf("\n# resolved: arrivals %s, load %s, pools "
                    "(mfg %.0f, web %.0f, default %.0f), "
                    "injection %.1f, windows %g+%gs\n",
                    sim::arrivalKindName(rs.base.arrival.kind),
                    rs.base.loadModel == sim::LoadModel::Open
                        ? "open"
                        : "closed",
                    rs.base.mfgQueue, rs.base.webQueue,
                    rs.base.defaultQueue, rs.base.injectionRate,
                    rs.base.warmup, rs.base.measure);
        return 0;
    }
    if (args.has("check")) {
        const std::string arg = args.str("check", "");
        try {
            const scenario::ResolvedScenario rs = loadScenarioArg(arg);
            std::printf("%s: ok (scenario \"%s\")\n", arg.c_str(),
                        rs.name.c_str());
            return 0;
        } catch (const wcnn::Error &e) {
            // what() already leads with the kind ("scenario.parse:
            // line L, column C: ...").
            std::fprintf(stderr, "%s: %s\n", arg.c_str(), e.what());
            return 1;
        }
    }
    std::fputs("scenario: one of --list, --show, --check is "
               "required (see --help)\n",
               stderr);
    return 2;
}

int
cmdLifecycle(const std::string &sub, const Args &args)
{
    if (args.has("help") || sub.empty()) {
        std::puts(
            "wcnn lifecycle replay --journal FILE --model "
            "MODEL.bundle\n"
            "                      [--drift-window N] "
            "[--drift-threshold T]\n"
            "                      [--drift-patience N] "
            "[--retrain-window N]\n"
            "                      [--shadow-window N] [--history N] "
            "[--seed S]\n"
            "                      [--epochs N] [--lifecycle-threads "
            "N] [--out BUNDLE]\n"
            "\n"
            "Re-runs the drift -> retrain -> shadow -> promote loop "
            "over a journaled\n"
            "observation stream (see `wcnn serve --lifecycle "
            "--journal`). Decisions\n"
            "are a pure function of the records and the seed, so the "
            "replay\n"
            "reproduces a live run bit-identically at any thread "
            "count; the printed\n"
            "decision digest is the value CI pins. --out saves the "
            "bundle left\n"
            "serving after the last record.");
        return sub.empty() && !args.has("help") ? 2 : 0;
    }
    if (sub != "replay") {
        std::fprintf(stderr,
                     "lifecycle: unknown subcommand '%s' (expected "
                     "'replay')\n",
                     sub.c_str());
        return 2;
    }
    const std::string journal_path = args.str("journal", "");
    const std::string model_path = args.str("model", "");
    if (journal_path.empty() || model_path.empty()) {
        std::fputs("lifecycle replay: --journal and --model are "
                   "required\n",
                   stderr);
        return 2;
    }
    const lifecycle::Journal journal =
        lifecycle::readJournal(journal_path);
    auto bundle = std::make_shared<serve::ModelBundle>(
        loadBundle("lifecycle", model_path));
    const lifecycle::ReplayResult result = lifecycle::replayJournal(
        journal, bundle, lifecycleOptionsFromArgs(args));

    for (const lifecycle::Decision &d : result.decisions)
        std::printf("decision: %s",
                    lifecycle::formatDecision(d).c_str());
    std::printf("records: %zu\n", result.records);
    std::printf("decisions: %zu\n", result.decisions.size());
    std::printf("digest: %s\n", result.digest.c_str());
    std::printf("version: %llu\n",
                static_cast<unsigned long long>(result.finalVersion));
    std::printf("bundle-digest: %s\n",
                result.finalBundleDigest.c_str());
    const lifecycle::LifecycleStats &ls = result.stats;
    std::printf("stats: drifts=%llu retrains=%llu promotions=%llu "
                "rejections=%llu\n",
                static_cast<unsigned long long>(ls.drifts),
                static_cast<unsigned long long>(ls.retrains),
                static_cast<unsigned long long>(ls.promotions),
                static_cast<unsigned long long>(ls.rejections));

    const std::string out_path = args.str("out", "");
    if (!out_path.empty() && result.finalBundle != nullptr) {
        result.finalBundle->save(out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}

int
usage()
{
    std::puts(
        "wcnn — workload characterization with neural networks\n"
        "\n"
        "usage: wcnn <command> [--help] [flags]\n"
        "\n"
        "commands:\n"
        "  simulate    run the 3-tier workload simulator once\n"
        "  collect     build a (configuration -> indicators) sample "
        "set\n"
        "  scenario    list/show/check declarative workload "
        "scenarios\n"
        "  fit         train the non-linear model on a sample CSV\n"
        "  predict     evaluate a trained model at a configuration\n"
        "  surface     sweep and classify a (default, web) slice\n"
        "  recommend   rank configurations by a scoring function\n"
        "  serve       run the TCP inference server on a bundle\n"
        "  bench-serve measure serving throughput and latency\n"
        "  lifecycle   replay a journaled observation stream "
        "offline\n"
        "\n"
        "global flags:\n"
        "  --kernels reference|fast   numeric kernel policy (also\n"
        "                             WCNN_KERNELS); default reference");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // `wcnn <cmd> ... --telemetry run` traces any subcommand.
    auto recorder =
        wcnn::core::telemetry::Recorder::fromArgs(argc, argv);
    // `wcnn <cmd> ... --failpoints "site=nth:2"` injects faults into
    // any subcommand (chaos drills; also via WCNN_FAILPOINTS).
    try {
        wcnn::core::failpoint::installFromArgs(argc, argv);
        // `wcnn <cmd> ... --kernels fast` (or WCNN_KERNELS) selects
        // the numeric kernel policy for any subcommand.
        wcnn::numeric::kernels::installFromArgs(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wcnn: %s\n", e.what());
        return 2;
    }
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "lifecycle") {
        // Subverb form: `wcnn lifecycle replay --flags` — consume the
        // positional subverb before the flag parser sees it.
        const std::string sub =
            (argc > 2 && argv[2][0] != '-') ? argv[2] : "";
        const Args sub_args(argc, argv, sub.empty() ? 2 : 3);
        try {
            return cmdLifecycle(sub, sub_args);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "wcnn lifecycle: %s\n", e.what());
            return 1;
        }
    }
    const Args args(argc, argv, 2);
    try {
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "collect")
            return cmdCollect(args);
        if (cmd == "scenario")
            return cmdScenario(args);
        if (cmd == "fit")
            return cmdFit(args);
        if (cmd == "predict")
            return cmdPredict(args);
        if (cmd == "surface")
            return cmdSurface(args);
        if (cmd == "recommend")
            return cmdRecommend(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "bench-serve")
            return cmdBenchServe(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wcnn %s: %s\n", cmd.c_str(), e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage();
}
