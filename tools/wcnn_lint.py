#!/usr/bin/env python3
"""Repo-specific lint rules no generic tool knows about.

Run from anywhere: paths are resolved relative to the repository root
(the parent of this script's directory). Exits non-zero with one line
per violation, so it can run as a ctest (see tools/lint_test.cmake).

Rules:
  R1  No rand()/srand()/std::random_device outside src/numeric/rng.*.
      The reproduction is deterministic by construction; every draw must
      flow through the seeded wcnn::numeric::Rng. This extends to
      parallel code (src/core/parallel.hh): a task running on a worker
      thread must obtain any task-local generator via
      Rng::stream(config_seed, task_index) — a pure function of the
      config seed and the task index — never from wall clock, thread
      id, or a generator shared across tasks, so results stay
      bit-identical at every thread count.
  R2  No naked assert( in src/ — contracts go through the WCNN_* macros
      in src/core/contracts.hh so failures carry context and are
      testable. static_assert is fine.
  R3  No float type or f-suffixed literals in the standardizer/metrics
      paths (src/data/standardizer.*, src/data/metrics.*,
      src/numeric/stats.*). The paper's error statistics are defined on
      doubles; a stray float silently halves the precision of Table 2.
  R4  Every .cc/.cpp under src/, tests/, bench/, tools/, and examples/
      must be listed in its directory's CMakeLists.txt — an unlisted file compiles in
      nobody's build and rots.
  R5  No raw std::chrono::steady_clock/system_clock/
      high_resolution_clock ::now() outside src/core/telemetry. The
      telemetry layer is the one sanctioned clock: time a stage with
      WCNN_SPAN, or with telemetry::nowNs()/timedSeconds() when a
      number is needed in-process. Ad-hoc stopwatches fragment the
      trace and invite nondeterminism in places rule R1 protects.
  R6  No catch (...) that swallows the exception. A catch-all body must
      either rethrow (throw; / std::rethrow_exception) or capture via
      std::current_exception() for deferred propagation — or convert
      the failure into a wcnn::Error / recorded status. Silently eaten
      failures defeat the typed error taxonomy (src/core/error.hh) and
      hide chaos-injected faults from the quarantine bookkeeping.
  R7  No POSIX socket headers or socket syscalls outside
      src/serve/net/ — and no epoll/eventfd either. All transport goes
      through TcpStream/TcpListener (and ServeClient above them), all
      event multiplexing through the Reactor: one place owns fd
      lifetimes, EINTR/EOF handling, and timeouts, and the serve
      failpoint sites actually cover every byte on the wire. A stray
      recv() or epoll_wait() elsewhere is invisible to the chaos
      harness.
  R8  Hand-rolled compute kernels live in src/numeric/kernels/ only.
      Outside that directory, no SIMD intrinsics (<immintrin.h> and
      friends, _mm*/__m128-style identifiers), no `#pragma omp`, and —
      within src/ — no raw contraction loops (an `x(i,k) * y(k,j)`
      element product with a shared middle index). Matrix products go
      through numeric::Matrix / kernels::gemm so the kernel-policy
      dispatch, the equivalence harness, and the ULP budget actually
      govern every hot loop; a stray hand matmul elsewhere is admitted
      by nothing.
  R9  Scenario files are parsed only via scenario::parse /
      scenario::loadFile. Outside src/scenario/, no include of the
      private lexer header and no code that opens a .wcnn path
      directly (ifstream/fopen/open on a "*.wcnn" literal). The
      parser is the layer's totality guarantee — any byte stream
      yields a Document or a typed ScenarioError — and the fuzz
      corpus only covers text that flows through it; a side-channel
      reader would dodge the diagnostics, the failpoints, and the
      canonical printer.
  R10 The lifecycle subsystem reads no clock. Under src/lifecycle/ no
      value-returning time source is allowed — telemetry::nowNs() /
      timedSeconds(), any ::now(), sleep_for/sleep_until — because
      drift, retrain, shadow and promotion decisions are defined as
      pure functions of (record stream, seed): a replayed journal must
      reproduce the live run bit for bit on any host, at any speed.
      WCNN_SPAN is exempt: its timing flows to the telemetry trace
      only, never into a decision. The subsystem is also an
      encapsulation boundary: `#include "lifecycle/..."` is allowed
      only inside src/lifecycle/ itself and in the driver layers
      (tools/, tests/, bench/) — core libraries must not grow a
      dependency on the control loop above them.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Lines matching these are exempt from the content rules.
COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")

RAND_RE = re.compile(r"\b(?:std::)?(?:rand|srand)\s*\(|std::random_device")
ASSERT_RE = re.compile(r"(?<![_a-zA-Z])assert\s*\(")
FLOAT_RE = re.compile(r"(?<![_a-zA-Z])float(?![_a-zA-Z])"
                      r"|\b\d+\.\d*f\b|\b\d+\.?\d*[eE][-+]?\d+f\b")

CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\s*\(")

CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
RETHROW_RE = re.compile(
    r"\bthrow\b|std::current_exception|std::rethrow_exception"
    r"|\bwcnn::Error\b")

SOCKET_HEADER_RE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|netinet/[\w./]+|arpa/inet\.h"
    r"|netdb\.h|sys/un\.h|sys/epoll\.h|sys/eventfd\.h)>")
# Bare POSIX socket / event-multiplexing calls. The lookbehind drops
# member calls (x.accept(, p->listen() and qualified names;
# bind/connect are deliberately not listed (std::bind,
# TcpStream::connect). epoll/eventfd ride along: event readiness is
# the Reactor's job, and the Reactor lives in src/serve/net/.
SOCKET_CALL_RE = re.compile(
    r"(?<![\w:.>])(?:socket|accept4?|listen|recv|recvfrom|send|sendto"
    r"|setsockopt|getsockname|inet_pton|inet_ntop"
    r"|epoll_create1?|epoll_ctl|epoll_wait|eventfd)\s*\(")

INTRINSIC_RE = re.compile(
    r"#\s*include\s*<(?:[a-z]+mmintrin|immintrin|avx\w*intrin)\.h>"
    r"|\b_mm(?:256|512)?_\w+|\b__m(?:64|128|256|512)[di]?\b")
PRAGMA_OMP_RE = re.compile(r"#\s*pragma\s+omp\b")
# An element product whose left factor's column index is the right
# factor's row index — the signature of a hand-rolled contraction,
# e.g. `a(i, k) * b(k, j)`. Row-dot products like `l(i, k) * l(j, k)`
# share their SECOND index and deliberately do not match.
CONTRACTION_RE = re.compile(
    r"\w+\(\s*\w+\s*,\s*(\w+)\s*\)\s*\*\s*\w+\(\s*\1\s*,")

FLOAT_SENSITIVE = [
    "src/data/standardizer.hh",
    "src/data/standardizer.cc",
    "src/data/metrics.hh",
    "src/data/metrics.cc",
    "src/numeric/stats.hh",
    "src/numeric/stats.cc",
]


def iter_sources(subdirs: list[str]) -> list[Path]:
    out: list[Path] = []
    for sub in subdirs:
        root = REPO / sub
        if root.is_dir():
            for pat in ("*.cc", "*.cpp", "*.hh"):
                out.extend(sorted(root.rglob(pat)))
    return out


def code_lines(path: Path):
    """Yield (lineno, line) skipping obvious comment lines."""
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if COMMENT_RE.match(line):
            continue
        yield lineno, line


def check_rng_containment(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/numeric/rng."):
            continue
        for lineno, line in code_lines(path):
            if RAND_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R1 nondeterministic randomness "
                    f"({line.strip()[:60]}); use numeric::Rng")


def check_no_naked_assert(errors: list[str]) -> None:
    for path in iter_sources(["src"]):
        rel = path.relative_to(REPO).as_posix()
        for lineno, line in code_lines(path):
            stripped = line.replace("static_assert", "")
            if ASSERT_RE.search(stripped):
                errors.append(
                    f"{rel}:{lineno}: R2 naked assert(); use the WCNN_* "
                    f"contract macros from core/contracts.hh")


def check_no_float_in_metrics(errors: list[str]) -> None:
    for rel in FLOAT_SENSITIVE:
        path = REPO / rel
        if not path.exists():
            continue
        for lineno, line in code_lines(path):
            if FLOAT_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R3 float in a double-precision "
                    f"metrics path ({line.strip()[:60]})")


def check_cc_listed_in_cmake(errors: list[str]) -> None:
    for sub in ["src", "tests", "bench", "tools", "examples"]:
        root = REPO / sub
        if not root.is_dir():
            continue
        for cc in sorted(list(root.rglob("*.cc")) + list(root.rglob("*.cpp"))):
            # Nearest enclosing CMakeLists.txt owns the file (e.g.
            # src/serve/net/socket.cc is listed as net/socket.cc in
            # src/serve/CMakeLists.txt).
            cml = None
            for parent in cc.parents:
                cand = parent / "CMakeLists.txt"
                if cand.exists():
                    cml = cand
                    break
                if parent == REPO:
                    break
            if cml is None:
                errors.append(
                    f"{cc.relative_to(REPO).as_posix()}: R4 no "
                    f"enclosing CMakeLists.txt")
                continue
            text = cml.read_text()
            # Accept either the file name or its stem as a whole word
            # (helpers like wcnn_bench(name) append the .cc themselves).
            listed = cc.name in text or re.search(
                rf"(?<![\w]){re.escape(cc.stem)}(?![\w])", text)
            if not listed:
                errors.append(
                    f"{cc.relative_to(REPO).as_posix()}: R4 not listed "
                    f"in {cml.relative_to(REPO).as_posix()}")


def check_clock_containment(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/core/telemetry."):
            continue
        for lineno, line in code_lines(path):
            if CLOCK_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R5 raw chrono clock "
                    f"({line.strip()[:60]}); use WCNN_SPAN or "
                    f"core::telemetry::nowNs()/timedSeconds()")


def check_no_swallowing_catch_all(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        text = path.read_text()
        lines = text.splitlines()
        for match in CATCH_ALL_RE.finditer(text):
            lineno = text.count("\n", 0, match.start()) + 1
            if COMMENT_RE.match(lines[lineno - 1]):
                continue
            # Walk the catch block: from its opening brace to the
            # matching close. Good-enough brace matching — braces in
            # string literals are rare enough in this tree to ignore.
            open_brace = text.find("{", match.end())
            if open_brace == -1:
                continue
            depth = 0
            end = open_brace
            for i in range(open_brace, len(text)):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            body = text[open_brace:end + 1]
            if not RETHROW_RE.search(body):
                errors.append(
                    f"{rel}:{lineno}: R6 catch (...) swallows the "
                    f"exception; rethrow, capture via "
                    f"std::current_exception, or convert to wcnn::Error")


def check_socket_containment(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/serve/net/"):
            continue
        for lineno, line in code_lines(path):
            if SOCKET_HEADER_RE.search(line) or SOCKET_CALL_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R7 raw socket code outside "
                    f"src/serve/net/ ({line.strip()[:60]}); go through "
                    f"serve::net::TcpStream/TcpListener/ServeClient")


def check_kernel_containment(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/numeric/kernels/"):
            continue
        in_src = rel.startswith("src/")
        for lineno, line in code_lines(path):
            if INTRINSIC_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R8 SIMD intrinsics outside "
                    f"src/numeric/kernels/ ({line.strip()[:60]})")
            elif PRAGMA_OMP_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R8 #pragma omp outside "
                    f"src/numeric/kernels/ ({line.strip()[:60]})")
            elif in_src and CONTRACTION_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R8 raw contraction loop "
                    f"({line.strip()[:60]}); route through "
                    f"numeric::Matrix / kernels::gemm")


LEXER_INCLUDE_RE = re.compile(r'#\s*include\s*"scenario/lexer\.hh"')
# A stream/FILE opened on a .wcnn literal outside the scenario layer.
WCNN_OPEN_RE = re.compile(
    r'(?:ifstream|fstream|fopen|::open)\s*\([^)]*\.wcnn')


def check_scenario_containment(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/scenario/"):
            continue
        for lineno, line in code_lines(path):
            if LEXER_INCLUDE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R9 private scenario lexer header "
                    f"included outside src/scenario/; use "
                    f"scenario::parse")
            elif WCNN_OPEN_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R9 .wcnn file opened directly "
                    f"({line.strip()[:60]}); go through "
                    f"scenario::loadFile/loadNamed")


LIFECYCLE_CLOCK_RE = re.compile(
    r"\bnowNs\s*\(|\btimedSeconds\s*\(|::\s*now\s*\("
    r"|\bsleep_for\b|\bsleep_until\b")
LIFECYCLE_INCLUDE_RE = re.compile(r'#\s*include\s*"lifecycle/')
# Directories whose code may depend on the lifecycle subsystem.
LIFECYCLE_DRIVERS = ("src/lifecycle/", "tools/", "tests/", "bench/")


def check_lifecycle_determinism(errors: list[str]) -> None:
    for path in iter_sources(["src", "tests", "bench", "tools", "examples"]):
        rel = path.relative_to(REPO).as_posix()
        in_lifecycle = rel.startswith("src/lifecycle/")
        may_include = rel.startswith(LIFECYCLE_DRIVERS)
        for lineno, line in code_lines(path):
            if in_lifecycle and LIFECYCLE_CLOCK_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R10 wall-clock read in the "
                    f"lifecycle subsystem ({line.strip()[:60]}); "
                    f"decisions are functions of the record stream "
                    f"only")
            if not may_include and LIFECYCLE_INCLUDE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: R10 lifecycle header included "
                    f"outside src/lifecycle/ and the driver layers "
                    f"(tools/, tests/, bench/)")


def main() -> int:
    errors: list[str] = []
    check_rng_containment(errors)
    check_no_naked_assert(errors)
    check_no_float_in_metrics(errors)
    check_cc_listed_in_cmake(errors)
    check_clock_containment(errors)
    check_no_swallowing_catch_all(errors)
    check_socket_containment(errors)
    check_kernel_containment(errors)
    check_scenario_containment(errors)
    check_lifecycle_determinism(errors)
    for e in errors:
        print(e)
    if errors:
        print(f"wcnn_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("wcnn_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
